"""Table I — backbone complexity: stride plans, d_a / d_p, parameters, MACs.

Regenerates the four columns of Table I from the model registry and compares
the parameter / MAC counts against the values printed in the paper.
"""

import pytest

from repro.models import table1_rows
from repro.report import format_table, relative_error

# Full-scale benchmark reproduction: minutes of training; excluded from
# the default (fast) suite by the `slow` marker — run with `pytest -m slow`.
pytestmark = pytest.mark.slow


def compute_table1():
    return table1_rows()


def test_table1_backbone_complexity(benchmark):
    rows = benchmark.pedantic(compute_table1, rounds=1, iterations=1)

    table = format_table(
        ["Backbone", "d_a", "d_p", "Params [M]", "paper", "MACs [M]", "paper"],
        [[row["name"], row["d_a"], row["d_p"],
          round(row["params_m"], 2), row["paper_params_m"],
          round(row["macs_m"], 1), row["paper_macs_m"]] for row in rows],
        title="\nTable I — proposed backbones (measured vs paper)")
    print(table)

    for row in rows:
        assert abs(relative_error(row["params_m"], row["paper_params_m"])) < 0.05
        assert abs(relative_error(row["macs_m"], row["paper_macs_m"])) < 0.05

    # Ordering of computational cost across the four backbones.
    macs = [row["macs_m"] for row in rows]
    assert macs == sorted(macs)
