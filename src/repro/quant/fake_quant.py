"""Fake (simulated) quantization primitives with straight-through gradients.

``quantize_dequantize`` maps float values onto a signed integer grid and back;
the :class:`FakeQuant` autograd function lets gradients pass through the
rounding (straight-through estimator, clipped at the threshold), which is what
quantization-aware refinement needs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..nn.tensor import Function, Tensor


def integer_bounds(bits: int, symmetric: bool = True) -> Tuple[int, int]:
    """Representable integer range of a signed ``bits``-bit quantizer."""
    if bits < 2:
        raise ValueError("weight/activation quantization needs at least 2 bits")
    if symmetric:
        limit = 2 ** (bits - 1) - 1
        return -limit, limit
    return -(2 ** (bits - 1)), 2 ** (bits - 1) - 1


def scale_from_threshold(threshold: float, bits: int) -> float:
    """Quantization step size for a symmetric quantizer with ``threshold``."""
    _low, high = integer_bounds(bits)
    return max(threshold, 1e-12) / high


def quantize(values: np.ndarray, scale: float, bits: int) -> np.ndarray:
    """Quantize to the integer grid (returns integer-valued float array)."""
    low, high = integer_bounds(bits)
    return np.clip(np.round(values / scale), low, high)


def dequantize(values: np.ndarray, scale: float) -> np.ndarray:
    return values * scale


def quantize_dequantize(values: np.ndarray, threshold: float, bits: int) -> np.ndarray:
    """Round-trip through the quantization grid defined by ``threshold``."""
    scale = scale_from_threshold(threshold, bits)
    return dequantize(quantize(values, scale, bits), scale).astype(np.float32)


class FakeQuant(Function):
    """Fake quantization with a straight-through estimator.

    Forward quantizes/dequantizes; backward passes the gradient unchanged for
    values inside ``[-threshold, threshold]`` and zeroes it outside (the
    clipped-STE used by TQT-style quantization-aware training).
    """

    def forward(self, values, threshold, bits):
        scale = scale_from_threshold(threshold, bits)
        low, high = integer_bounds(bits)
        quantized = np.clip(np.round(values / scale), low, high) * scale
        self.save_for_backward(np.abs(values) <= threshold)
        return quantized.astype(values.dtype)

    def backward(self, grad):
        (mask,) = self.saved
        return (grad * mask,)


def fake_quantize(tensor: Tensor, threshold: float, bits: int) -> Tensor:
    """Differentiable fake quantization of a tensor."""
    return FakeQuant.apply(tensor, float(threshold), int(bits))


def quantization_error(values: np.ndarray, threshold: float, bits: int) -> float:
    """Mean squared error introduced by quantizing ``values`` at ``threshold``."""
    reconstructed = quantize_dequantize(values, threshold, bits)
    return float(np.mean((values - reconstructed) ** 2))
