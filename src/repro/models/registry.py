"""Named backbone configurations and the Table I accounting.

Two families of configurations exist:

* ``paper`` profile — the exact architectures of Table I (used for analytic
  parameter / MAC accounting and for the hardware experiments).
* ``laptop`` profile — width/feature-reduced versions of the same topologies
  that can be trained end-to-end in pure NumPy within seconds, used by the
  accuracy experiments (Table II / III) on the synthetic dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .graph import GraphSummary, LayerSpec, linear_spec
from .heads import FullyConnectedClassifier, FullyConnectedReductor
from .mobilenetv2 import MobileNetV2Backbone
from .resnet import ResNet12Backbone, ResNet20Backbone


@dataclass
class BackboneConfig:
    """Description of one backbone configuration.

    Attributes:
        name: registry key.
        family: "mobilenetv2", "resnet12" or "resnet20".
        profile: "paper" or "laptop".
        feature_dim: ``d_a`` — dimensionality of the backbone embedding.
        prototype_dim: ``d_p`` — dimensionality of the FCR output.
        input_size: spatial input resolution the config is defined for.
        builder: callable creating the backbone module.
        description: human-readable summary.
        paper_params_m: parameter count reported in Table I (millions), if any.
        paper_macs_m: MAC count reported in Table I (millions), if any.
    """

    name: str
    family: str
    profile: str
    feature_dim: int
    prototype_dim: int
    input_size: int
    builder: Callable[..., object]
    description: str = ""
    paper_params_m: Optional[float] = None
    paper_macs_m: Optional[float] = None
    builder_kwargs: Dict = field(default_factory=dict)

    def build(self, seed: int = 0):
        """Instantiate the backbone module."""
        return self.builder(seed=seed, **self.builder_kwargs)

    def build_fcr(self, seed: int = 0) -> FullyConnectedReductor:
        return FullyConnectedReductor(self.feature_dim, self.prototype_dim, seed=seed)

    def build_fcc(self, num_classes: int, seed: int = 0) -> FullyConnectedClassifier:
        return FullyConnectedClassifier(self.prototype_dim, num_classes, seed=seed)

    # -- accounting ---------------------------------------------------------
    def layer_specs(self, include_fcr: bool = True) -> List[LayerSpec]:
        """Layer graph for one inference pass at the configured resolution."""
        backbone = self.build()
        specs = backbone.layer_specs((self.input_size, self.input_size))
        if include_fcr:
            specs = specs + [linear_spec("fcr", self.feature_dim, self.prototype_dim)]
        return specs

    def summary(self, include_fcr: bool = True) -> GraphSummary:
        return GraphSummary(self.layer_specs(include_fcr=include_fcr))

    def total_params(self, include_fcr: bool = True) -> int:
        return self.summary(include_fcr).total_params

    def total_macs(self, include_fcr: bool = True) -> int:
        return self.summary(include_fcr).total_macs


_REGISTRY: Dict[str, BackboneConfig] = {}


def register(config: BackboneConfig) -> BackboneConfig:
    if config.name in _REGISTRY:
        raise ValueError(f"backbone config {config.name!r} already registered")
    _REGISTRY[config.name] = config
    return config


def get_config(name: str) -> BackboneConfig:
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(f"unknown backbone config {name!r}; "
                       f"known: {sorted(_REGISTRY)}") from exc


def list_configs(profile: Optional[str] = None) -> List[str]:
    names = sorted(_REGISTRY)
    if profile is None:
        return names
    return [name for name in names if _REGISTRY[name].profile == profile]


def build_backbone(name: str, seed: int = 0):
    return get_config(name).build(seed=seed)


# ---------------------------------------------------------------------------
# Paper-profile configurations (Table I)
# ---------------------------------------------------------------------------
register(BackboneConfig(
    name="mobilenetv2",
    family="mobilenetv2",
    profile="paper",
    feature_dim=1280,
    prototype_dim=256,
    input_size=32,
    builder=MobileNetV2Backbone,
    builder_kwargs={"stride_plan": "x1"},
    description="MobileNetV2 with CIFAR strides 1,2,2,2,1,2,1 (Table I col 1)",
    paper_params_m=2.5,
    paper_macs_m=25.9,
))

register(BackboneConfig(
    name="mobilenetv2_x2",
    family="mobilenetv2",
    profile="paper",
    feature_dim=1280,
    prototype_dim=256,
    input_size=32,
    builder=MobileNetV2Backbone,
    builder_kwargs={"stride_plan": "x2"},
    description="MobileNetV2 x2: strides 1,2,2,2,1,1,1 (Table I col 2)",
    paper_params_m=2.5,
    paper_macs_m=45.4,
))

register(BackboneConfig(
    name="mobilenetv2_x4",
    family="mobilenetv2",
    profile="paper",
    feature_dim=1280,
    prototype_dim=256,
    input_size=32,
    builder=MobileNetV2Backbone,
    builder_kwargs={"stride_plan": "x4"},
    description="MobileNetV2 x4: strides 1,2,2,1,1,1,1 (Table I col 3)",
    paper_params_m=2.5,
    paper_macs_m=149.2,
))

register(BackboneConfig(
    name="resnet12",
    family="resnet12",
    profile="paper",
    feature_dim=640,
    prototype_dim=512,
    input_size=32,
    builder=ResNet12Backbone,
    description="ResNet-12 with widths 64/160/320/640 (Table I col 4)",
    paper_params_m=12.9,
    paper_macs_m=525.3,
))

register(BackboneConfig(
    name="resnet20",
    family="resnet20",
    profile="paper",
    feature_dim=64,
    prototype_dim=64,
    input_size=32,
    builder=ResNet20Backbone,
    description="CIFAR ResNet-20 (baseline backbone used by MetaFSCIL / LIMIT)",
))

# ---------------------------------------------------------------------------
# Laptop-profile configurations (reduced width, same topology and code path)
# ---------------------------------------------------------------------------
_TINY_STAGES = (
    (1, 8, 1),
    (4, 12, 1),
    (4, 16, 2),
    (4, 24, 2),
    (4, 32, 1),
    (4, 40, 1),
    (4, 64, 1),
)

register(BackboneConfig(
    name="mobilenetv2_tiny",
    family="mobilenetv2",
    profile="laptop",
    feature_dim=128,
    prototype_dim=64,
    input_size=16,
    builder=MobileNetV2Backbone,
    builder_kwargs={
        "stride_plan": (1, 2, 2, 2, 1, 2, 1),
        "stem_channels": 8,
        "feature_dim": 128,
        "stage_settings": _TINY_STAGES,
    },
    description="Width-reduced MobileNetV2 (x1 stride plan) for CPU training",
))

register(BackboneConfig(
    name="mobilenetv2_x4_tiny",
    family="mobilenetv2",
    profile="laptop",
    feature_dim=128,
    prototype_dim=64,
    input_size=16,
    builder=MobileNetV2Backbone,
    builder_kwargs={
        "stride_plan": (1, 2, 2, 1, 1, 1, 1),
        "stem_channels": 8,
        "feature_dim": 128,
        "stage_settings": _TINY_STAGES,
    },
    description="Width-reduced MobileNetV2 with the x4 stride plan",
))

register(BackboneConfig(
    name="resnet12_tiny",
    family="resnet12",
    profile="laptop",
    feature_dim=64,
    prototype_dim=48,
    input_size=16,
    builder=ResNet12Backbone,
    builder_kwargs={"channels": (16, 24, 48, 64)},
    description="Width-reduced ResNet-12 for CPU training",
))

register(BackboneConfig(
    name="resnet20_tiny",
    family="resnet20",
    profile="laptop",
    feature_dim=32,
    prototype_dim=32,
    input_size=16,
    builder=ResNet20Backbone,
    builder_kwargs={"widths": (8, 16, 32), "blocks_per_stage": 2},
    description="Width-reduced ResNet-20 for CPU training",
))


def table1_rows(include_fcr: bool = True) -> List[Dict[str, object]]:
    """Compute the Table I quantities for the four paper-profile backbones."""
    rows = []
    for name in ("mobilenetv2", "mobilenetv2_x2", "mobilenetv2_x4", "resnet12"):
        config = get_config(name)
        summary = config.summary(include_fcr=include_fcr)
        rows.append({
            "name": name,
            "stride_plan": getattr(config.build(), "stride_plan", None),
            "d_a": config.feature_dim,
            "d_p": config.prototype_dim,
            "params_m": summary.total_params / 1e6,
            "macs_m": summary.total_macs / 1e6,
            "paper_params_m": config.paper_params_m,
            "paper_macs_m": config.paper_macs_m,
        })
    return rows
