"""Scenario harness: seeded loadgen, chaos primitives, and the serving
bugs the matrix flushed out.

Three layers of coverage:

1. **Loadgen determinism** — the same seed must reproduce an identical op
   schedule bit-for-bit (the whole point of trace-driven scenarios is that
   ``--seed N`` replays a failure exactly).
2. **Chaos primitives** — the frame-corruption injector is bounded and
   surgical, and the controller's faults are acked through the real FIFO.
3. **Regressions** — targeted pins for the bugs the scenarios originally
   flushed out: compounding scatter timeouts, broadcast racing worker
   death, the sticky SLO gate (EMA never decayed + approximate admission),
   trace loss on close, and the shape-poisoned batcher — plus the
   per-scenario latency-floor gate and the full scenario matrix itself
   (recovery scenarios included) as a pytest-visible gate.
"""

import time

import numpy as np
import pytest

from repro.obs.trace import JsonlSpanExporter, read_jsonl_spans
from repro.report import append_keyed_bench_record, load_keyed_bench
from repro.scenarios import (
    ARRIVALS,
    ChaosController,
    ChaosInjector,
    SCENARIOS,
    generate_workload,
    run_scenario,
)
from repro.scenarios.loadgen import OP_KINDS
from repro.scenarios.runner import (
    LATENCY_FLOOR_MIN_HISTORY,
    ScenarioFailure,
    apply_latency_floor,
    build_model,
    latency_floor_ms,
)
from repro.serve import Server, ServerOverloaded, snapshot_prototypes
from repro.serve.stats import ServeStats


# ---------------------------------------------------------------------------
# Loadgen: determinism and op-mix shape
# ---------------------------------------------------------------------------
class TestLoadgen:
    def test_same_seed_reproduces_identical_schedule(self):
        kwargs = dict(num_ops=64, arrival="bursty", rate_hz=200.0,
                      sync_fraction=0.2, malformed_fraction=0.1,
                      oversized_fraction=0.05, learn_bursts=2)
        first = generate_workload("determinism", 7, **kwargs)
        second = generate_workload("determinism", 7, **kwargs)
        assert first.ops == second.ops          # frozen Ops compare by value
        assert first.summary() == second.summary()

    def test_different_seeds_differ(self):
        first = generate_workload("seeds", 0, num_ops=40, arrival="poisson")
        second = generate_workload("seeds", 1, num_ops=40, arrival="poisson")
        assert first.ops != second.ops

    def test_op_mix_ordering_and_learn_splice(self):
        workload = generate_workload(
            "mix", 3, num_ops=60, arrival="diurnal", rate_hz=300.0,
            sync_fraction=0.25, malformed_fraction=0.1, learn_bursts=3,
            first_learn_class=11)
        times = [op.at_s for op in workload.ops]
        assert times == sorted(times) and times[0] >= 0.0
        counts = workload.counts()
        assert set(counts) <= set(OP_KINDS)
        assert counts["learn"] == 3
        assert sorted(op.index for op in workload.ops
                      if op.kind == "learn") == [11, 12, 13]
        assert counts["predict"] + counts["submit"] > 0

    @pytest.mark.parametrize("arrival", sorted(ARRIVALS))
    def test_arrival_generators_deterministic_and_sorted(self, arrival):
        times = ARRIVALS[arrival](np.random.default_rng(5), 50, 100.0)
        again = ARRIVALS[arrival](np.random.default_rng(5), 50, 100.0)
        assert len(times) == 50
        assert np.array_equal(times, again)
        assert np.all(np.diff(times) >= 0.0) and times[0] >= 0.0


# ---------------------------------------------------------------------------
# Chaos injector: bounded, surgical frame corruption
# ---------------------------------------------------------------------------
class TestChaosInjector:
    @staticmethod
    def ok_frame(ticket):
        return (ticket, 0, True, ("__inline__", b"payload"))

    def test_disarmed_passes_everything_through(self):
        injector = ChaosInjector()
        frame = self.ok_frame(1)
        assert injector.on_result(0, frame) is frame
        assert injector.corrupted == 0

    def test_corruption_bounded_and_typed_shape(self):
        injector = ChaosInjector(max_corruptions=2)
        injector.arm()
        out = [injector.on_result(0, self.ok_frame(i)) for i in range(5)]
        assert injector.corrupted == 2
        corrupted = [frame for i, frame in enumerate(out)
                     if frame != self.ok_frame(i)]
        assert len(corrupted) == 2
        for ticket, worker_id, ok, packed in corrupted:
            assert ok is True and packed[0] == "__shm__"
        # The surviving frames are untouched objects, not copies.
        assert out[2:] == [self.ok_frame(i) for i in range(2, 5)]

    def test_error_frames_and_foreign_workers_pass_through(self):
        injector = ChaosInjector(max_corruptions=5)
        injector.arm(worker=1)
        error_frame = (9, 1, False, ("__inline__", b"boom"))
        assert injector.on_result(1, error_frame) is error_frame
        other_worker = self.ok_frame(3)
        assert injector.on_result(0, other_worker) is other_worker
        injector.disarm()
        disarmed = self.ok_frame(4)
        assert injector.on_result(1, disarmed) is disarmed
        assert injector.corrupted == 0

    def test_rejects_useless_budget(self):
        with pytest.raises(ValueError, match="max_corruptions"):
            ChaosInjector(max_corruptions=0)


# ---------------------------------------------------------------------------
# Regressions for the bugs the scenarios flushed out
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def scenario_model():
    return build_model(seed=0)


def test_scatter_and_broadcast_survive_worker_death(scenario_model):
    """Satellites 1+2: scatter re-dispatches a dead shard's chunks under
    one shared deadline, and broadcast tolerates partial completion."""
    model, shots = scenario_model
    reference = model.runtime_predictor()
    # Respawn off: this test pins the *degraded-pool* contract (the corpse
    # stays dead and its absence is visible); the supervised-respawn
    # lifecycle is pinned by tests/test_serve_recovery.py.
    server = Server(model, num_workers=2, max_latency_s=0.02, micro_batch=8,
                    max_respawns=0)
    try:
        queries = np.random.default_rng(21).standard_normal(
            (24, 3, 16, 16)).astype(np.float32)
        server.predict(queries[:8])              # warm both replicas
        ChaosController(server).kill_worker(1)
        # scatter: the corpse's chunks re-dispatch to the survivor and the
        # answer stays bit-identical (one shared deadline, not per-chunk).
        started = time.monotonic()
        features = server.engine.scatter("backbone", queries, timeout=60.0)
        assert time.monotonic() - started < 60.0
        np.testing.assert_array_equal(
            features, reference.extract_backbone_features(queries))
        # broadcast: partial completion is the normal degraded answer —
        # the corpse is omitted, the survivors' acks are reported by index.
        answered = server.engine.broadcast("ping", timeout=30.0)
        assert sorted(answered) == [0]
        assert server.engine.live_workers == [0]
        assert server.stats_dict()["dead_workers"] == [1]
        # ... which keeps the prototype-sync path alive on a degraded pool.
        acked = server.engine.set_prototypes(
            snapshot_prototypes(model.memory), timeout=30.0)
        assert sorted(acked) == [0]
    finally:
        server.close()


def test_admission_counter_is_exact_and_released(scenario_model):
    """Satellite 3b: admission tracks real outstanding requests — no
    approximate qsize overshoot, and completion releases the slot."""
    model, shots = scenario_model
    expected = model.runtime_predictor().predict(shots)
    server = Server(model, num_workers=1, max_pending=2, max_latency_s=0.01)
    try:
        assert server.outstanding == 0
        first = server.submit(shots[0])
        second = server.submit(shots[1])
        with pytest.raises(ServerOverloaded, match="admission queue"):
            server.submit(shots[2])
        assert server.outstanding == 2
        assert int(first.result(timeout=120.0)) == int(expected[0])
        assert int(second.result(timeout=120.0)) == int(expected[1])
        deadline = time.monotonic() + 30.0
        while server.outstanding and time.monotonic() < deadline:
            time.sleep(0.01)                     # done-callback is async
        assert server.outstanding == 0
        # The freed slots re-admit: the gate is a counter, not a ratchet.
        assert int(server.submit(shots[2]).result(timeout=120.0)) \
            == int(expected[2])
    finally:
        server.close()


def test_sticky_slo_gate_unsticks_after_idle_decay():
    """Satellite 3a: a stale latency EMA decays instead of shedding an
    idle server forever."""
    stats = ServeStats(ema_halflife_s=0.05)
    for _ in range(5):
        stats.observe_batch_latency(1.0)
    inflated = stats.ema_batch_latency_s
    assert inflated > 0.5
    time.sleep(0.3)            # > one-half-life grace + several half-lives
    assert stats.ema_batch_latency_s < 0.1 * inflated
    # A fresh observation blends from the *decayed* value, not the stale
    # peak — a single fast batch must not resurrect the old estimate.
    stats.observe_batch_latency(0.001)
    assert stats.ema_batch_latency_s < 0.1 * inflated


def test_batcher_isolates_mixed_shapes(scenario_model):
    """A mis-shaped neighbour must not poison a coalesced batch: requests
    group by shape, and each answers exactly like a solo submission."""
    model, shots = scenario_model
    reference = model.runtime_predictor()
    big = np.random.default_rng(31).standard_normal(
        (4, 3, 32, 32)).astype(np.float32)
    server = Server(model, num_workers=1, max_latency_s=0.05)
    try:
        futures = []
        for i in range(4):                     # interleave the two shapes
            futures.append(("small", i, server.submit(shots[i])))
            futures.append(("big", i, server.submit(big[i])))
        small_expected = reference.predict(shots[:4])
        big_expected = reference.predict(big)
        for shape, i, future in futures:
            label = future.result(timeout=120.0)
            expected = small_expected if shape == "small" else big_expected
            assert int(label) == int(expected[i]), (shape, i)
    finally:
        server.close()


def test_server_close_flushes_trace_spans(tmp_path, scenario_model):
    """Satellite 4: ``Server.close()`` flushes the Jsonl exporter — the
    tail of the trace must not die in a buffered file handle."""
    model, shots = scenario_model
    trace_path = tmp_path / "spans.jsonl"
    server = Server(model, num_workers=1, max_latency_s=0.01,
                    trace_sample=1.0,
                    trace_exporter=JsonlSpanExporter(trace_path))
    try:
        futures = [server.submit(shots[i]) for i in range(4)]
        for future in futures:
            future.result(timeout=120.0)
    finally:
        server.close()                          # no explicit flush() call
    spans = read_jsonl_spans(trace_path)
    roots = [span for span in spans if span.get("parent_id") is None]
    assert len(roots) >= 4


# ---------------------------------------------------------------------------
# Keyed bench records (BENCH_scenarios.json format)
# ---------------------------------------------------------------------------
def test_keyed_bench_roundtrip_and_limit(tmp_path):
    path = tmp_path / "BENCH_scenarios.json"
    assert load_keyed_bench(path) == {}
    for i in range(4):
        append_keyed_bench_record(path, "kill_shard", {"run": i}, limit=3)
    append_keyed_bench_record(path, "hang_shard", {"run": 0}, limit=3)
    data = load_keyed_bench(path)
    assert sorted(data) == ["hang_shard", "kill_shard"]
    assert data["kill_shard"]["latest"] == {"run": 3}
    assert [entry["run"] for entry in data["kill_shard"]["history"]] \
        == [1, 2, 3]
    assert data["hang_shard"]["history"] == [{"run": 0}]


# ---------------------------------------------------------------------------
# Per-scenario latency floors
# ---------------------------------------------------------------------------
def trend_entry(p50):
    return {"counters": {"batch_latency_p50_ms": p50}}


class TestLatencyFloors:
    def test_floor_arms_only_with_enough_positive_history(self):
        history = [trend_entry(2.0), trend_entry(4.0)]
        assert latency_floor_ms(history) is None       # below min history
        history.append(trend_entry(3.0))
        assert latency_floor_ms(history) == pytest.approx(15.0)  # 5x median
        # Zero/absent/malformed readings never count toward arming.
        padded = [trend_entry(0.0), {"counters": {}}, {"no": "counters"},
                  "junk", trend_entry(True)] + history[:2]
        assert latency_floor_ms(padded) is None

    def test_median_resists_one_slow_outlier(self):
        history = [trend_entry(2.0)] * 4 + [trend_entry(200.0)]
        assert latency_floor_ms(history) == pytest.approx(10.0)

    def test_gate_passes_annotates_and_fails(self):
        history = [trend_entry(2.0)] * LATENCY_FLOOR_MIN_HISTORY
        passing = trend_entry(9.9)
        apply_latency_floor("kill_shard", passing, history)
        assert passing["latency_floor"] == {
            "armed": True, "limit_ms": 10.0, "p50_ms": 9.9}
        with pytest.raises(ScenarioFailure, match="latency floor violated"):
            apply_latency_floor("kill_shard", trend_entry(10.1), history)
        # Unarmed trends annotate but never gate.
        young = trend_entry(1000.0)
        apply_latency_floor("kill_shard", young, history[:1])
        assert young["latency_floor"] == {"armed": False}
        # A record with no measurable p50 passes: absence of a measurement
        # is not a regression (e.g. restart_replay's second server).
        unmeasured = {"counters": {}}
        apply_latency_floor("kill_shard", unmeasured, history)
        assert unmeasured["latency_floor"]["p50_ms"] is None


# ---------------------------------------------------------------------------
# The scenario matrix itself, as a pytest-visible gate
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_passes(name):
    record = run_scenario(name, seed=0)
    assert record["ok"] is True
    assert record["scenario"] == name
    assert record["num_checks"] >= 10
    assert record["counters"]["samples"] > 0
