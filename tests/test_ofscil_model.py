"""The OFSCIL model object: feature extraction, online learning, inference."""

import numpy as np
import pytest

from repro.core import OFSCIL, OFSCILConfig
from repro.models import get_config


class TestConstruction:
    def test_from_registry_dimensions(self, fresh_model):
        config = get_config(fresh_model.config.backbone)
        assert fresh_model.feature_dim == config.feature_dim
        assert fresh_model.prototype_dim == config.prototype_dim
        assert fresh_model.memory.dim == config.prototype_dim

    def test_prototype_bits_propagate_to_memory(self):
        model = OFSCIL.from_registry("mobilenetv2_tiny",
                                     OFSCILConfig(backbone="mobilenetv2_tiny",
                                                  prototype_bits=4))
        assert model.memory.bits == 4


class TestFeatureExtraction:
    def test_embed_shapes(self, fresh_model, tiny_benchmark):
        images = tiny_benchmark.base_train.images[:10]
        theta_a = fresh_model.extract_backbone_features(images)
        theta_p = fresh_model.project(theta_a)
        assert theta_a.shape == (10, fresh_model.feature_dim)
        assert theta_p.shape == (10, fresh_model.prototype_dim)
        np.testing.assert_allclose(fresh_model.embed(images), theta_p, rtol=1e-5)

    def test_batched_extraction_matches_single_pass(self, fresh_model, tiny_benchmark):
        images = tiny_benchmark.base_train.images[:9]
        fresh_model.config.feature_batch_size = 4
        batched = fresh_model.extract_backbone_features(images)
        fresh_model.config.feature_batch_size = 64
        single = fresh_model.extract_backbone_features(images)
        np.testing.assert_allclose(batched, single, rtol=1e-4, atol=1e-5)

    def test_forward_is_differentiable(self, fresh_model, tiny_benchmark):
        out = fresh_model(tiny_benchmark.base_train.images[:4])
        assert out.requires_grad
        out.sum().backward()


class TestOnlineLearning:
    def test_learn_class_adds_prototype_and_activation(self, fresh_model, tiny_benchmark):
        images = tiny_benchmark.base_train.images[:5]
        prototype = fresh_model.learn_class(images, class_id=42)
        assert 42 in fresh_model.memory
        assert prototype.shape == (fresh_model.prototype_dim,)
        assert 42 in fresh_model.activation_memory
        assert fresh_model.activation_memory[42].shape == (fresh_model.feature_dim,)

    def test_prototype_is_mean_of_projected_features(self, fresh_model, tiny_benchmark):
        images = tiny_benchmark.base_train.images[:5]
        prototype = fresh_model.learn_class(images, class_id=7)
        expected = fresh_model.embed(images).mean(axis=0)
        np.testing.assert_allclose(prototype, expected, rtol=1e-4, atol=1e-5)

    def test_learn_session_learns_every_class(self, fresh_model, tiny_benchmark):
        fresh_model.memory.reset()
        session = tiny_benchmark.session(1)
        learned = fresh_model.learn_session(session.support)
        assert set(learned) == set(session.class_ids.tolist())
        assert fresh_model.memory.num_classes == len(session.class_ids)

    def test_learn_base_session_max_per_class(self, fresh_model, tiny_benchmark):
        fresh_model.memory.reset()
        fresh_model.learn_base_session(tiny_benchmark.base_train, max_per_class=3)
        assert fresh_model.memory.num_classes == tiny_benchmark.protocol.base_classes

    def test_learning_is_single_pass_and_keeps_extractor_frozen(self, fresh_model,
                                                                tiny_benchmark):
        before = {name: param.data.copy()
                  for name, param in fresh_model.backbone.named_parameters()}
        fresh_model.learn_class(tiny_benchmark.base_train.images[:5], class_id=0)
        after = dict(fresh_model.backbone.named_parameters())
        for name, original in before.items():
            np.testing.assert_array_equal(after[name].data, original)


class TestInference:
    def test_predict_returns_learned_labels(self, trained_model, tiny_benchmark):
        trained_model.memory.reset()
        trained_model.learn_base_session(tiny_benchmark.base_train)
        predictions = trained_model.predict(tiny_benchmark.test_upto(0).images[:20])
        learned = set(trained_model.memory.class_ids)
        assert set(predictions.tolist()) <= learned

    def test_accuracy_beats_chance_after_training(self, trained_model, tiny_benchmark):
        trained_model.memory.reset()
        trained_model.learn_base_session(tiny_benchmark.base_train)
        accuracy = trained_model.accuracy(tiny_benchmark.test_upto(0))
        chance = 1.0 / tiny_benchmark.protocol.base_classes
        assert accuracy > 2 * chance

    def test_similarity_scores_relu_sharpening(self, trained_model, tiny_benchmark):
        trained_model.memory.reset()
        trained_model.learn_base_session(tiny_benchmark.base_train, max_per_class=5)
        sims, ids = trained_model.similarity_scores(tiny_benchmark.test.images[:8])
        assert sims.shape == (8, trained_model.memory.num_classes)
        assert np.all(sims >= 0.0)

    def test_accuracy_on_empty_dataset_is_nan(self, trained_model, tiny_benchmark):
        from repro.data import ArrayDataset
        empty = ArrayDataset(np.zeros((0, 3, 16, 16), dtype=np.float32),
                             np.zeros(0, dtype=np.int64))
        assert np.isnan(trained_model.accuracy(empty))

    def test_memory_footprint(self, fresh_model):
        fresh_model.memory.reset()
        expected = fresh_model.prototype_dim * 32 / 8.0
        assert fresh_model.memory_footprint_bytes(1) == pytest.approx(expected)

    def test_freeze_feature_extractor(self, fresh_model):
        fresh_model.freeze_feature_extractor()
        assert all(not p.requires_grad for p in fresh_model.backbone.parameters())
        assert all(not p.requires_grad for p in fresh_model.fcr.parameters())
