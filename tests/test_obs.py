"""Telemetry subsystem: metrics registry, tracing, plan profiler, propagation.

The cross-process tests are the acceptance criterion of the observability
PR: a single traced ``model.serve(2)`` request must produce a fully
parented span tree spanning the coordinator and worker processes —
``server.submit → batcher.coalesce → shard.dispatch → worker.execute →
engine.*.run`` — through *both* transport paths (shared-memory rings and
the pickle fallback), and a SIGKILLed worker must leave its span in the
tree marked ``failed`` instead of silently truncating the trace.
"""

import os
import queue as queue_module
import signal
import threading
import time

import numpy as np
import pytest

from repro.core import OFSCIL, OFSCILConfig
from repro.obs import (
    InMemorySpanExporter,
    JsonlSpanExporter,
    MetricsRegistry,
    PlanProfiler,
    Tracer,
    quantile_from_counts,
    read_jsonl_spans,
    span_tree,
)
from repro.obs import trace as obs_trace
from repro.runtime.predictor import BatchedPredictor
from repro.serve import RemoteWorkerError, ShardedEngine, snapshot_model
from repro.serve.stats import ServeStats
from repro.serve.transport import pack_payload, payload_trace, unpack_payload
from repro.serve.worker import worker_main

BACKBONE = "mobilenetv2_x4_tiny"
IMAGE_SHAPE = (3, 16, 16)


def make_learned_model(seed: int = 0, base_classes: int = 4):
    model = OFSCIL.from_registry(BACKBONE, OFSCILConfig(backbone=BACKBONE),
                                 seed=seed)
    model.freeze_feature_extractor()
    rng = np.random.default_rng(42)
    shots = rng.standard_normal(
        (base_classes * 4, *IMAGE_SHAPE)).astype(np.float32)
    for class_id in range(base_classes):
        model.learn_class(shots[class_id * 4:(class_id + 1) * 4], class_id)
    return model, shots


@pytest.fixture(scope="module")
def learned():
    return make_learned_model()


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestQuantile:
    def test_known_values_interpolate_within_bucket(self):
        # 10 observations in (1, 2], nothing elsewhere: the median sits at
        # rank 5 of 10 -> halfway through the bucket.
        bounds = (1.0, 2.0, 4.0)
        counts = [0, 10, 0, 0]                  # + overflow bucket
        assert quantile_from_counts(bounds, counts, 0.5) \
            == pytest.approx(1.5)
        assert quantile_from_counts(bounds, counts, 1.0) \
            == pytest.approx(2.0)

    def test_known_values_across_buckets(self):
        bounds = (1.0, 2.0, 4.0)
        counts = [4, 4, 2, 0]
        # rank 0.9 * 10 = 9 -> 1 into the 2-count (2, 4] bucket -> 3.0
        assert quantile_from_counts(bounds, counts, 0.9) \
            == pytest.approx(3.0)
        # rank 2 of 10 inside the first bucket (0, 1] -> 0.5
        assert quantile_from_counts(bounds, counts, 0.2) \
            == pytest.approx(0.5)

    def test_overflow_and_empty_clamp(self):
        bounds = (1.0, 2.0)
        assert quantile_from_counts(bounds, [0, 0, 5], 0.5) == 2.0
        assert quantile_from_counts(bounds, [0, 0, 0], 0.5) == 0.0

    def test_fraction_is_clamped(self):
        bounds = (1.0,)
        assert quantile_from_counts(bounds, [3, 0], 1.5) == 1.0
        assert quantile_from_counts(bounds, [3, 0], -0.5) == 0.0


class TestInstruments:
    def test_counter_merges_across_threads(self):
        registry = MetricsRegistry()
        counter = registry.counter("test.requests")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        counter.inc(5)
        assert counter.value == 4005

    def test_gauge_set_max_and_callback(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("test.depth")
        gauge.set(3)
        gauge.set_max(10)
        gauge.set_max(7)                        # lower: keeps the max
        assert gauge.value == 10
        state = {"bytes": 123}
        lazy = registry.gauge("test.bytes", fn=lambda: state["bytes"])
        state["bytes"] = 456                    # read at scrape, not at set
        assert lazy.value == 456

    def test_histogram_counts_sum_and_quantile(self):
        registry = MetricsRegistry()
        hist = registry.histogram("test.latency", bounds=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 2.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(2.605)
        assert hist.counts() == [1, 2, 1, 1]    # last = overflow
        # p100 lands in the overflow bucket -> clamps to the last bound.
        assert hist.quantile(1.0) == 1.0

    def test_int_histogram_is_exact(self):
        registry = MetricsRegistry()
        sizes = registry.int_histogram("test.batch_size")
        for value in (1, 1, 8, 8, 8, 3):
            sizes.observe(value)
        assert sizes.as_dict() == {1: 2, 8: 3, 3: 1}

    def test_registry_get_or_create_and_kind_mismatch(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("a")
        scrape = registry.scrape()
        assert scrape["a"] == {"type": "counter", "value": 0}


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_sampling_gates_only_the_root(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.start_trace("root") is None
        tracer.end_span(None)                   # unsampled end is a no-op

        tracer = Tracer(sample_rate=1.0)
        root = tracer.start_trace("root")
        assert root is not None and root.parent_id is None
        child = tracer.start_span("child", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_remote_context_parents_across_processes(self):
        tracer = Tracer(sample_rate=1.0, process="worker-3")
        span = tracer.start_span("worker.execute", ctx=("t" * 16, "s" * 16))
        assert (span.trace_id, span.parent_id) == ("t" * 16, "s" * 16)
        assert span.process == "worker-3"

    def test_end_span_exports_status_and_error(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(sample_rate=1.0, exporter=exporter)
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        (record,) = exporter.spans
        assert record["status"] == "error"
        assert "ValueError: boom" in record["error"]
        assert record["duration_s"] >= 0.0

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sample_rate=1.0, exporter=JsonlSpanExporter(path))
        root = tracer.start_trace("root")
        tracer.end_span(tracer.start_span("child", parent=root))
        tracer.end_span(root)
        tracer.flush()          # the exporter buffers; flushing is the API
        spans = read_jsonl_spans(path)
        assert [span["name"] for span in spans] == ["child", "root"]
        tree = span_tree(spans)
        assert [span["name"] for span in tree[root.span_id]] == ["child"]

    def test_jsonl_exporter_buffers_until_flush_and_survives_close(
            self, tmp_path):
        path = tmp_path / "trace.jsonl"
        exporter = JsonlSpanExporter(path)
        tracer = Tracer(sample_rate=1.0, exporter=exporter)
        tracer.end_span(tracer.start_trace("tail"))
        # The span sits in the stdio buffer: without the close-time flush
        # this is precisely the trace loss the server shutdown used to hit.
        assert not path.exists() or read_jsonl_spans(path) == []
        tracer.close()
        assert [span["name"] for span in read_jsonl_spans(path)] == ["tail"]
        tracer.close()                                        # idempotent
        tracer.end_span(tracer.start_trace("late"))           # reopens
        tracer.flush()
        names = [span["name"] for span in read_jsonl_spans(path)]
        assert names == ["tail", "late"]

    def test_ambient_span_nests_and_is_inert_without_activation(self):
        with obs_trace.ambient_span("engine.run") as span:
            assert span is None                 # nothing ambient: no-op
        exporter = InMemorySpanExporter()
        tracer = Tracer(sample_rate=1.0, exporter=exporter)
        parent = tracer.start_trace("worker.execute")
        token = obs_trace.activate(tracer, parent)
        try:
            with obs_trace.ambient_span("engine.run",
                                        attrs_fn=lambda: {"samples": 4}):
                pass
        finally:
            obs_trace.deactivate(token)
        (record,) = exporter.spans
        assert record["parent_id"] == parent.span_id
        assert record["attrs"] == {"samples": 4}

    def test_adopt_merges_foreign_spans(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter=exporter)
        tracer.adopt([{"name": "worker.execute", "trace_id": "t"},
                      "not-a-span"])
        assert [span["name"] for span in exporter.spans] \
            == ["worker.execute"]


# ---------------------------------------------------------------------------
# Transport trace field
# ---------------------------------------------------------------------------
class TestTransportTraceField:
    def test_untraced_frames_are_bit_identical_to_pre_trace_format(self):
        payload = np.arange(6, dtype=np.float32)
        frame = pack_payload(None, payload)
        assert len(frame) == 2                  # no trailing trace field
        assert payload_trace(frame) is None
        assert payload_trace(payload) is None   # raw payloads probe safely

    @pytest.mark.parametrize("payload", [
        np.arange(6, dtype=np.float32),                       # -> shm
        (np.arange(6, dtype=np.float32), [1, 2]),             # -> shm tuple
        {"stats": 1},                                         # -> inline
    ])
    def test_trace_rides_every_frame_kind_and_unpack_ignores_it(self, payload):
        from repro.serve.transport import SlotRing
        ctx = ("t" * 16, "s" * 16)
        ring = SlotRing(slots=2, slot_bytes=1024)
        try:
            frame = pack_payload(ring, payload, trace=ctx)
            assert payload_trace(frame) == ctx
            unpacked, held = unpack_payload(ring, frame, copy=True)
            assert not held
            if isinstance(payload, tuple):
                np.testing.assert_array_equal(unpacked[0], payload[0])
                assert unpacked[1:] == tuple(payload[1:])
            elif isinstance(payload, np.ndarray):
                np.testing.assert_array_equal(unpacked, payload)
            else:
                assert unpacked == payload
        finally:
            ring.close()

    def test_pickle_fallback_carries_trace_identically(self):
        ctx = ("t" * 16, "s" * 16)
        frame = pack_payload(None, np.arange(4, dtype=np.float32), trace=ctx)
        assert frame[0] == "__inline__"
        assert payload_trace(frame) == ctx


# ---------------------------------------------------------------------------
# Plan profiler
# ---------------------------------------------------------------------------
class TestPlanProfiler:
    def test_profiled_execution_is_bit_identical_and_counts_steps(
            self, learned):
        model, shots = learned
        queries = shots[:6]
        baseline = BatchedPredictor(model, micro_batch=4).embed(queries)
        profiled = BatchedPredictor(model, micro_batch=4, profile=True)
        np.testing.assert_array_equal(profiled.embed(queries), baseline)

        rows = profiled.profiler.rows()
        backbone_plan = profiled.backbone_engine.plan.name
        fcr_plan = profiled.fcr_engine.plan.name
        assert {row["plan"] for row in rows} == {backbone_plan, fcr_plan}
        backbone_rows = [row for row in rows if row["plan"] == backbone_plan]
        assert len(backbone_rows) \
            == len(profiled.backbone_engine.plan.steps)
        # 6 samples / micro_batch 4 = 2 chunks through every step.
        assert all(row["calls"] == 2 for row in backbone_rows)
        assert all(row["bytes_moved"] > 0 for row in backbone_rows)
        assert "profile" in profiled.runtime_stats()
        table = profiled.profiler.table()
        assert "conv" in table

    def test_empty_profiler_table(self):
        assert "no steps recorded" in PlanProfiler().table()

    def test_by_op_shares_sum_to_one(self, learned):
        model, shots = learned
        predictor = BatchedPredictor(model, micro_batch=4, profile=True)
        predictor.embed(shots[:4])
        shares = [agg["share"] for agg in predictor.profiler.by_op()]
        assert sum(shares) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# ServeStats on the registry
# ---------------------------------------------------------------------------
class TestServeStats:
    def test_instruments_are_registered_under_serve_names(self):
        stats = ServeStats()
        names = stats.registry.names()
        for expected in ("serve.requests_total", "serve.shed_total",
                         "serve.batch_latency_s", "serve.batch_size",
                         "serve.queue_depth", "serve.max_queue_depth"):
            assert expected in names

    def test_as_dict_keeps_the_legacy_surface(self):
        stats = ServeStats()
        stats.observe_submit(3)
        stats.observe_dispatch(8)
        stats.observe_batch_request(16)
        stats.observe_shed()
        stats.observe_broadcast()
        stats.observe_batch_latency(0.004)
        report = stats.as_dict()
        assert report["single_requests"] == 1
        assert report["batch_requests"] == 1
        assert report["samples"] == 24
        assert report["batches_dispatched"] == 1
        assert report["batch_size_histogram"] == {8: 1}
        assert report["max_queue_depth"] == 3
        assert report["prototype_broadcasts"] == 1
        assert report["requests_shed"] == 1
        assert report["shed_rate"] == pytest.approx(0.5)
        assert report["ema_batch_latency_s"] == pytest.approx(0.004)
        assert report["batch_latency_p50_ms"] > 0

    def test_percentiles_use_the_shared_quantile_helper(self):
        from repro.serve.stats import BATCH_LATENCY_BUCKETS
        stats = ServeStats()
        for latency in (0.002, 0.002, 0.002, 0.002):
            stats.observe_batch_latency(latency)
        percentiles = stats.batch_latency_percentiles_ms()
        expected = quantile_from_counts(
            BATCH_LATENCY_BUCKETS, [4 if bound == 0.0025 else 0
                                    for bound in (*BATCH_LATENCY_BUCKETS,
                                                  None)], 0.5) * 1e3
        assert percentiles["p50"] == pytest.approx(expected)
        assert percentiles["p99"] >= percentiles["p50"]


# ---------------------------------------------------------------------------
# Cross-process trace propagation (the tentpole acceptance tests)
# ---------------------------------------------------------------------------
class TestTracePropagation:
    @pytest.mark.parametrize("use_shared_memory", [True, False],
                             ids=["shm-ring", "pickle-fallback"])
    def test_traced_request_yields_full_parented_tree(
            self, learned, tmp_path, use_shared_memory):
        model, shots = learned
        path = tmp_path / "trace.jsonl"
        with model.serve(2, max_latency_s=0.02, trace_sample=1.0,
                         trace_exporter=JsonlSpanExporter(path),
                         use_shared_memory=use_shared_memory) as server:
            label = server.predict_one(shots[0], timeout=60)
            # Tracing must not perturb numerics: same answer as the local
            # predictor, bit for bit.
            assert label == int(model.runtime_predictor()
                                .predict(shots[:1])[0])

        spans = read_jsonl_spans(path)
        by_name = {span["name"]: span for span in spans}
        root = by_name["server.submit"]
        assert root["parent_id"] is None
        assert root["process"] == "coordinator"
        coalesce = by_name["batcher.coalesce"]
        dispatch = by_name["shard.dispatch"]
        execute = by_name["worker.execute"]
        assert coalesce["parent_id"] == root["span_id"]
        assert dispatch["parent_id"] == coalesce["span_id"]
        assert execute["parent_id"] == dispatch["span_id"]
        assert execute["process"].startswith("worker-")
        # The engines nest under worker.execute via the ambient span; the
        # predict work item runs backbone then FCR.
        engine_spans = [span for span in spans
                        if span["name"].startswith("engine.")]
        assert {span["name"] for span in engine_spans} \
            == {"engine.backbone.run", "engine.fcr.run"}
        for span in engine_spans:
            assert span["parent_id"] == execute["span_id"]
            assert span["process"] == execute["process"]
        # One trace id threads the whole tree, and every span is parented.
        assert {span["trace_id"] for span in spans} == {root["trace_id"]}
        assert all(span["status"] == "ok" for span in spans)
        ids = {span["span_id"] for span in spans}
        assert all(span["parent_id"] in ids for span in spans
                   if span["parent_id"] is not None)

    def test_untraced_server_exports_nothing(self, learned, tmp_path):
        model, shots = learned
        path = tmp_path / "trace.jsonl"
        with model.serve(1, max_latency_s=0.02,
                         trace_exporter=JsonlSpanExporter(path)) as server:
            server.predict_one(shots[0], timeout=60)
        assert not path.exists()                # sample_rate 0: no spans

    def test_sigkilled_worker_leaves_synthetic_failed_span(self, learned):
        # A worker that dies mid-request can never report its span; the
        # engine's watchdog must close the trace tree with a synthetic
        # worker.execute marked "failed" when it fails the doomed ticket.
        model, _shots = learned
        exporter = InMemorySpanExporter()
        tracer = Tracer(sample_rate=1.0, exporter=exporter)
        snapshot = snapshot_model(model, micro_batch=8)
        with ShardedEngine(snapshot, num_workers=2,
                           watchdog_interval_s=0.05,
                           tracer=tracer) as engine:
            victim = engine._processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)             # the corpse is real ...
            assert not victim.is_alive()
            # ... but not yet detected: enqueue a traced item at it before
            # the watchdog's next poll can mark the shard dead.
            ctx = ("t" * 16, "s" * 16)
            try:
                future = engine.submit(
                    "backbone", np.zeros((4, *IMAGE_SHAPE), np.float32),
                    worker=0, trace_ctx=ctx)
            except RemoteWorkerError:
                pytest.skip("watchdog won the race before the submit")
            with pytest.raises(RemoteWorkerError):
                future.result(timeout=30)
            deadline = time.monotonic() + 10
            while not exporter.spans and time.monotonic() < deadline:
                time.sleep(0.01)
        (record,) = exporter.spans
        assert record["name"] == "worker.execute"
        assert record["status"] == "failed"
        assert (record["trace_id"], record["parent_id"]) == ctx
        assert record["attrs"]["synthetic"] is True
        assert "died" in record["error"]

    def test_worker_error_ships_error_span_in_result_frame(self, learned):
        # The worker main loop is queue-generic; run it on an in-process
        # thread with plain queues and hand-packed trace contexts to pin
        # the span payloads of both the success and the error result frame.
        model, shots = learned
        snapshot = snapshot_model(model, micro_batch=4)
        requests: "queue_module.Queue" = queue_module.Queue()
        results: "queue_module.Queue" = queue_module.Queue()
        worker = threading.Thread(target=worker_main,
                                  args=(0, snapshot, requests, results))
        worker.start()
        try:
            ok_ctx = ("a" * 16, "b" * 16)
            requests.put(("backbone", 0,
                          pack_payload(None, shots[:2], trace=ok_ctx)))
            _, _, ok, packed = results.get(timeout=60)
            assert ok
            shipped = payload_trace(packed)["spans"]
            execute = next(span for span in shipped
                           if span["name"] == "worker.execute")
            assert execute["status"] == "ok"
            assert (execute["trace_id"], execute["parent_id"]) == ok_ctx
            assert any(span["name"] == "engine.backbone.run"
                       and span["parent_id"] == execute["span_id"]
                       for span in shipped)

            bad = np.zeros((2, 5, 16, 16), dtype=np.float32)  # bad channels
            err_ctx = ("c" * 16, "d" * 16)
            requests.put(("backbone", 1,
                          pack_payload(None, bad, trace=err_ctx)))
            _, _, ok, packed = results.get(timeout=60)
            assert not ok
            shipped = payload_trace(packed)["spans"]
            execute = next(span for span in shipped
                           if span["name"] == "worker.execute")
            assert execute["status"] == "error"
            assert "ValueError" in execute["error"]
            assert (execute["trace_id"], execute["parent_id"]) == err_ctx

            # Untraced items keep the pre-trace frame shape entirely.
            requests.put(("backbone", 2, shots[:2]))
            _, _, ok, packed = results.get(timeout=60)
            assert ok and payload_trace(packed) is None
            assert len(packed) == 2
        finally:
            requests.put(("shutdown", -1, None))
            worker.join(timeout=30)


# ---------------------------------------------------------------------------
# Satellite: timing knobs are constructor parameters
# ---------------------------------------------------------------------------
class TestTimingKnobs:
    def test_watchdog_interval_is_validated_and_stored(self, learned):
        model, _ = learned
        snapshot = snapshot_model(model, micro_batch=8)
        with pytest.raises(ValueError, match="watchdog_interval_s"):
            ShardedEngine(snapshot, num_workers=1, watchdog_interval_s=0.0)

    def test_server_stats_timeout_is_a_parameter(self, learned):
        model, _ = learned
        with model.serve(1, stats_timeout_s=3.5,
                         watchdog_interval_s=0.1) as server:
            assert server.stats_timeout_s == 3.5
            assert server.engine.watchdog_interval_s == 0.1
            records = server.worker_stats()
            assert len(records) == 1 and "metrics" in records[0]
            report = server.stats_dict()
            assert "metrics" in report
            assert "serve.requests_total" in report["metrics"]
