"""Batch-level data augmentation on NumPy image arrays (NCHW).

The paper uses "traditional" augmentation (blur, horizontal flip, crop and
resize) during pretraining, on top of the Mixup/CutMix feature interpolation
implemented in :mod:`repro.data.mixup`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import ndimage


def random_horizontal_flip(images: np.ndarray, rng: np.random.Generator,
                           probability: float = 0.5) -> np.ndarray:
    """Flip each image left-right with the given probability."""
    out = images.copy()
    flips = rng.random(len(images)) < probability
    out[flips] = out[flips][:, :, :, ::-1]
    return out


def random_crop(images: np.ndarray, rng: np.random.Generator,
                padding: int = 4) -> np.ndarray:
    """Pad with zeros and crop back to the original size at a random offset."""
    n, c, h, w = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                    mode="reflect")
    out = np.empty_like(images)
    offsets_y = rng.integers(0, 2 * padding + 1, size=n)
    offsets_x = rng.integers(0, 2 * padding + 1, size=n)
    for index in range(n):
        oy, ox = offsets_y[index], offsets_x[index]
        out[index] = padded[index, :, oy:oy + h, ox:ox + w]
    return out


def gaussian_blur(images: np.ndarray, rng: np.random.Generator,
                  probability: float = 0.2, sigma_range: Tuple[float, float] = (0.3, 1.0)
                  ) -> np.ndarray:
    """Blur a random subset of images with a Gaussian kernel."""
    out = images.copy()
    for index in range(len(images)):
        if rng.random() < probability:
            sigma = rng.uniform(*sigma_range)
            out[index] = ndimage.gaussian_filter(out[index], sigma=(0, sigma, sigma))
    return out


def random_resized_crop(images: np.ndarray, rng: np.random.Generator,
                        scale: Tuple[float, float] = (0.6, 1.0)) -> np.ndarray:
    """Crop a random sub-window and resize it back to the original size."""
    n, c, h, w = images.shape
    out = np.empty_like(images)
    for index in range(n):
        area_scale = rng.uniform(*scale)
        crop_h = max(int(round(h * np.sqrt(area_scale))), 4)
        crop_w = max(int(round(w * np.sqrt(area_scale))), 4)
        top = rng.integers(0, h - crop_h + 1)
        left = rng.integers(0, w - crop_w + 1)
        crop = images[index, :, top:top + crop_h, left:left + crop_w]
        zoom = (1.0, h / crop_h, w / crop_w)
        out[index] = ndimage.zoom(crop, zoom, order=1)[:, :h, :w]
    return out


def brightness_contrast(images: np.ndarray, rng: np.random.Generator,
                        brightness: float = 0.1, contrast: float = 0.1) -> np.ndarray:
    """Random per-image brightness and contrast jitter."""
    n = len(images)
    shift = rng.uniform(-brightness, brightness, size=(n, 1, 1, 1)).astype(images.dtype)
    scale = rng.uniform(1 - contrast, 1 + contrast, size=(n, 1, 1, 1)).astype(images.dtype)
    mean = images.mean(axis=(1, 2, 3), keepdims=True)
    return np.clip((images - mean) * scale + mean + shift, 0.0, 1.0)


class AugmentationPipeline:
    """Composable augmentation pipeline matching the paper's pretraining setup.

    The default pipeline applies random crop, horizontal flip and occasional
    Gaussian blur; resized crops and photometric jitter can be enabled for
    stronger regularization.
    """

    def __init__(self, crop_padding: int = 2, flip_probability: float = 0.5,
                 blur_probability: float = 0.2, use_resized_crop: bool = False,
                 use_color_jitter: bool = False, seed: int = 0):
        self.crop_padding = crop_padding
        self.flip_probability = flip_probability
        self.blur_probability = blur_probability
        self.use_resized_crop = use_resized_crop
        self.use_color_jitter = use_color_jitter
        self._rng = np.random.default_rng(seed)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        rng = self._rng
        out = images
        if self.crop_padding > 0:
            out = random_crop(out, rng, padding=self.crop_padding)
        if self.use_resized_crop:
            out = random_resized_crop(out, rng)
        if self.flip_probability > 0:
            out = random_horizontal_flip(out, rng, self.flip_probability)
        if self.blur_probability > 0:
            out = gaussian_blur(out, rng, probability=self.blur_probability)
        if self.use_color_jitter:
            out = brightness_contrast(out, rng)
        return out.astype(np.float32)


class IdentityAugmentation:
    """No-op augmentation used by the ablation without AG."""

    def __call__(self, images: np.ndarray) -> np.ndarray:
        return images
