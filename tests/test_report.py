"""Reporting helpers: tables and experiment records."""

import numpy as np
import pytest

from repro.report import (
    ExperimentRecord,
    append_bench_record,
    append_keyed_bench_record,
    dict_rows_to_table,
    format_table,
    load_bench,
    load_keyed_bench,
    load_records,
    relative_error,
    save_records,
)


class TestTables:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.23456], ["bbb", 2.0]])
        lines = table.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.235" in table   # default precision 3

    def test_format_table_with_title(self):
        table = format_table(["x"], [[1]], title="My title")
        assert table.splitlines()[0] == "My title"

    def test_dict_rows_to_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        table = dict_rows_to_table(rows)
        assert "a" in table and "4.500" in table

    def test_dict_rows_column_selection(self):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        table = dict_rows_to_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_empty_rows(self):
        assert "(empty table)" in dict_rows_to_table([])

    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(90.0, 100.0) == pytest.approx(-0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == np.inf


class TestRecords:
    def test_json_roundtrip(self, tmp_path):
        record = ExperimentRecord(
            experiment_id="table4", description="energy", workload="5-shot",
            measured={"energy_mj": 11.2}, paper={"energy_mj": 11.35},
            notes="within 2%")
        restored = ExperimentRecord.from_json(record.to_json())
        assert restored.experiment_id == "table4"
        assert restored.measured["energy_mj"] == pytest.approx(11.2)

    def test_numpy_values_serialize(self):
        record = ExperimentRecord(
            experiment_id="fig3", description="", workload="",
            measured={"acc": np.float32(0.5), "curve": np.array([1.0, 2.0])})
        text = record.to_json()
        assert "0.5" in text

    def test_save_and_load_records(self, tmp_path):
        records = [ExperimentRecord(experiment_id=f"exp{i}", description="d",
                                    workload="w", measured={"x": i})
                   for i in range(3)]
        path = save_records(records, tmp_path / "out" / "records.json")
        assert path.exists()
        loaded = load_records(path)
        assert len(loaded) == 3
        assert loaded[1].measured["x"] == 1


class TestBenchHistory:
    def test_append_creates_latest_and_history(self, tmp_path):
        path = tmp_path / "bench.json"
        append_bench_record(path, {"run": 1})
        data = append_bench_record(path, {"run": 2})
        assert data["latest"] == {"run": 2}
        assert data["history"] == [{"run": 1}, {"run": 2}]
        assert load_bench(path) == data

    def test_legacy_single_record_file_is_migrated(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text('{"speedup": 9.5, "backbone": "x"}')
        data = append_bench_record(path, {"speedup": 9.7, "backbone": "x"})
        assert [entry["speedup"] for entry in data["history"]] == [9.5, 9.7]
        assert data["latest"]["speedup"] == 9.7

    def test_history_limit_is_enforced(self, tmp_path):
        path = tmp_path / "bench.json"
        for run in range(5):
            data = append_bench_record(path, {"run": run}, limit=3)
        assert [entry["run"] for entry in data["history"]] == [2, 3, 4]
        assert data["latest"] == {"run": 4}

    def test_history_limit_zero_keeps_nothing(self, tmp_path):
        path = tmp_path / "bench.json"
        data = append_bench_record(path, {"run": 0}, limit=0)
        assert data["history"] == []
        assert data["latest"] == {"run": 0}

    def test_corrupt_file_resets_cleanly(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        data = append_bench_record(path, {"run": 1})
        assert data["history"] == [{"run": 1}]


class TestKeyedBenchMalformedInputs:
    """The keyed helpers normalise every on-disk malformation to a usable
    shape — a half-written artefact file must never take the scenario
    matrix (or its latency-floor gate) down with a parse error."""

    def test_truncated_file_normalises_to_empty(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text('{"kill_shard": {"latest": {"run": 1}, "hist')
        assert load_keyed_bench(path) == {}
        # ...and appending over the wreckage starts a fresh trend.
        data = append_keyed_bench_record(path, "kill_shard", {"run": 2})
        assert data["kill_shard"]["history"] == [{"run": 2}]

    def test_missing_history_backfills_from_latest(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text('{"kill_shard": {"latest": {"run": 3}}}')
        data = load_keyed_bench(path)
        assert data["kill_shard"]["latest"] == {"run": 3}
        assert data["kill_shard"]["history"] == []
        appended = append_keyed_bench_record(path, "kill_shard", {"run": 4})
        assert appended["kill_shard"]["latest"] == {"run": 4}
        assert appended["kill_shard"]["history"] == [{"run": 4}]

    def test_missing_latest_backfills_from_history(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(
            '{"hang_shard": {"history": [{"run": 1}, {"run": 2}]}}')
        data = load_keyed_bench(path)
        assert data["hang_shard"]["latest"] == {"run": 2}

    def test_non_dict_entries_are_dropped(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(
            '{"good": {"history": [{"run": 1}, "junk", 4, null,'
            ' {"run": 2}]},'
            ' "bad": "not a trend", "worse": [1, 2, 3]}')
        data = load_keyed_bench(path)
        assert sorted(data) == ["good"]
        assert data["good"]["history"] == [{"run": 1}, {"run": 2}]

    def test_top_level_non_object_normalises_to_empty(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text('[{"run": 1}]')
        assert load_keyed_bench(path) == {}
        path.write_text('"just a string"')
        assert load_keyed_bench(path) == {}
        assert load_keyed_bench(tmp_path / "missing.json") == {}
