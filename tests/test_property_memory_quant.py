"""Property-based tests of the explicit memory, quantization and FSCIL splits."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import ExplicitMemory, quantize_prototype
from repro.data import build_protocol
from repro.quant import quantize_dequantize, scale_from_threshold, select_threshold
from repro.runtime import kernels as rt_kernels

FEATURE_ELEMENTS = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                             allow_infinity=False, width=32)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float32, (5, 16), elements=FEATURE_ELEMENTS))
def test_em_prototype_is_mean_of_features(features):
    memory = ExplicitMemory(dim=16)
    memory.update_class(0, features)
    np.testing.assert_allclose(memory.prototype(0), features.mean(axis=0),
                               rtol=1e-4, atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float32, (3, 8), elements=FEATURE_ELEMENTS),
       hnp.arrays(np.float32, (4, 8), elements=FEATURE_ELEMENTS))
def test_em_incremental_update_equals_batch_update(first, second):
    incremental = ExplicitMemory(dim=8)
    incremental.update_class(0, first)
    incremental.update_class(0, second)
    batch = ExplicitMemory(dim=8)
    batch.update_class(0, np.concatenate([first, second]))
    np.testing.assert_allclose(incremental.prototype(0), batch.prototype(0),
                               rtol=1e-3, atol=1e-3)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float32, (20,),
                  elements=st.floats(min_value=-5, max_value=5, width=32,
                                     allow_nan=False)),
       st.integers(min_value=2, max_value=8))
def test_prototype_quantization_respects_bit_range(prototype, bits):
    quantized = quantize_prototype(prototype, bits=bits)
    limit = 2 ** (bits - 1)
    assert np.all(np.abs(quantized) <= limit)
    assert np.all(quantized == np.round(quantized))


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float32, (64,),
                  elements=st.floats(min_value=-4, max_value=4, width=32,
                                     allow_nan=False)),
       st.integers(min_value=4, max_value=8))
def test_quantize_dequantize_error_bounded_by_step(values, bits):
    threshold = max(float(np.max(np.abs(values))), 1e-3)
    reconstructed = quantize_dequantize(values, threshold, bits)
    step = scale_from_threshold(threshold, bits)
    assert np.max(np.abs(values - reconstructed)) <= step / 2 + 1e-6


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float32, (128,),
                  elements=st.floats(min_value=-2, max_value=2, width=32,
                                     allow_nan=False)))
def test_quantization_is_idempotent(values):
    threshold = select_threshold(values, bits=8)
    once = quantize_dequantize(values, threshold, 8)
    twice = quantize_dequantize(once, threshold, 8)
    # Re-quantizing an already-quantized tensor may only move values that sit
    # exactly on a rounding boundary of the float32 representation, i.e. by at
    # most one quantization step.
    step = scale_from_threshold(threshold, 8)
    assert np.max(np.abs(once - twice)) <= step + 1e-6


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=10),   # ways
       st.integers(min_value=1, max_value=8),    # shots
       st.integers(min_value=1, max_value=6),    # sessions
       st.integers(min_value=5, max_value=30))   # base classes
def test_fscil_protocol_invariants(ways, shots, sessions, base_classes):
    num_classes = base_classes + ways * sessions
    protocol = build_protocol("test", num_classes=num_classes,
                              base_classes=base_classes, ways=ways, shots=shots,
                              num_sessions=sessions)
    seen = set()
    for session in range(sessions + 1):
        classes = set(protocol.session_classes(session).tolist())
        # Sessions are disjoint and sized correctly.
        assert not (classes & seen)
        expected_size = base_classes if session == 0 else ways
        assert len(classes) == expected_size
        seen |= classes
        # seen_classes is the running union.
        assert set(protocol.seen_classes(session).tolist()) == seen
    assert seen == set(range(num_classes))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=200),
       st.integers(min_value=8, max_value=512),
       st.sampled_from([1, 2, 3, 4, 8, 16, 32]))
def test_em_memory_footprint_scales_linearly(num_classes, dim, bits):
    memory = ExplicitMemory(dim=dim, bits=bits)
    footprint = memory.memory_bytes(num_classes)
    assert footprint == pytest.approx(num_classes * dim * bits / 8.0)


# ---------------------------------------------------------------------------
# Int8 runtime: exact integer accumulation and float-path parity
# ---------------------------------------------------------------------------
INT8_ELEMENTS = st.integers(min_value=-127, max_value=127)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.int8, (2, 4, 6, 6), elements=INT8_ELEMENTS),
       hnp.arrays(np.int8, (3, 4, 3, 3), elements=INT8_ELEMENTS))
def test_int8_conv_accumulation_is_exact_integer_arithmetic(q, weight):
    """The BLAS-backed int8 conv equals a pure int64 reference bit-for-bit."""
    acc = rt_kernels.int_accumulate_conv(q, weight, stride=1, padding=1)
    cols = rt_kernels.im2col_cached(q, 3, 3, 1, 1).astype(np.int64)
    reference = np.einsum("nckl,ock->nol", cols.reshape(2, 4, 9, 36),
                          weight.reshape(3, 4, 9).astype(np.int64))
    assert acc.dtype in (np.float32, np.float64)
    np.testing.assert_array_equal(acc.astype(np.int64), reference)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=512),   # channels * kernel^2
       st.integers(min_value=1, max_value=8))     # output channels
def test_int32_accumulator_never_overflows_at_max_magnitude(k, out_c):
    """Max-magnitude int8 inputs and weights must stay inside int32.

    The compiler enforces ``conv_accumulator_bound <= 2**31 - 1`` per layer;
    this property pins the bound itself: at the extreme ±127 * ±127 products
    the true accumulator equals the bound and fits int32 for every reduction
    depth our backbones can produce (K up to tens of thousands).
    """
    weight = np.full((out_c, k, 1, 1), 127, dtype=np.int8)
    q = np.full((1, k, 1, 1), -127, dtype=np.int8)
    bound = rt_kernels.conv_accumulator_bound(weight)
    assert bound == k * 127 * 127
    assert bound <= rt_kernels.INT32_ACC_LIMIT
    acc = rt_kernels.int_accumulate_conv(q, weight)
    assert int(np.abs(acc).max()) == bound
    exact = np.array(acc, dtype=np.int64)
    np.testing.assert_array_equal(exact, acc)  # no rounding happened


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float32, (64,),
                  elements=st.floats(min_value=-4, max_value=4, width=32,
                                     allow_nan=False)),
       st.sampled_from([2.0 ** -e for e in range(0, 8)]))
def test_runtime_quantize_matches_fake_quant_grid(values, threshold):
    """runtime.kernels int8 codes == repro.quant fake-quant codes."""
    scale = scale_from_threshold(threshold, 8)
    codes = rt_kernels.quantize_int8(values, scale)
    reference = np.clip(np.round(values / scale), -127, 127)
    np.testing.assert_array_equal(codes.astype(np.float32), reference)
    roundtrip = rt_kernels.requantize_float(values, scale)
    np.testing.assert_allclose(roundtrip, quantize_dequantize(values,
                                                              threshold, 8),
                               rtol=0, atol=1e-7)


def _quantized_stack(seed: int):
    """A small calibrated int8 conv stack plus its calibration images."""
    from repro import nn
    from repro.models.mobilenetv2 import ConvBNReLU
    from repro.quant import ActivationQuantizationPass, quantize_weights

    rng = np.random.default_rng(seed)
    c1 = int(rng.integers(3, 7))
    c2 = int(rng.integers(3, 9))
    net = nn.Sequential(ConvBNReLU(3, c1, rng=rng),
                        ConvBNReLU(c1, c2, stride=2, rng=rng),
                        ConvBNReLU(c2, c2, kernel_size=1, rng=rng),
                        nn.GlobalAvgPool2d())
    net.eval()
    images = rng.standard_normal((24, 3, 10, 10)).astype(np.float32)
    act_pass = ActivationQuantizationPass(net, bits=8)
    act_pass.calibrate(images, batch_size=12)
    act_pass.enable()
    quantize_weights(net, bits=8)
    net.input_quantizer = act_pass.input_quantizer
    return net, act_pass, images


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_int8_runtime_within_calibrated_tolerance_of_float(seed):
    """Int8 plan output stays within a few grid steps of the fake-quant path.

    The tolerance is *calibrated*: the final activation point is quantized
    at the global-pool scale, so the int8 path may legitimately land a
    handful of grid steps away from the eager fake-quant reference (weight
    re-quantization after BN folding, input-grid rounding) — but the error
    must scale with that grid, not with the tensor magnitude.
    """
    from repro.nn.tensor import Tensor, no_grad
    from repro.runtime import InferenceEngine, compile_module

    net, act_pass, images = _quantized_stack(seed)
    queries = images[:8]                       # in-calibration-distribution
    plan = compile_module(net, mode="int8")
    assert all(step.op != "opaque" for step in plan.steps)
    assert any(step.op == "qconv" for step in plan.steps)
    int8_out = InferenceEngine(plan).run(queries)
    with no_grad():
        eager = net(Tensor(queries)).data
    pool_scale = act_pass.quantizers[-1].scale     # the last hook point
    assert np.max(np.abs(int8_out - eager)) <= 8 * pool_scale


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_int8_runtime_is_bitwise_deterministic(seed):
    """Two independent compiles + chunked execution agree bit-for-bit."""
    from repro.runtime import InferenceEngine, compile_module

    net, _act_pass, images = _quantized_stack(seed)
    first = InferenceEngine(compile_module(net, mode="int8"),
                            micro_batch=64).run(images)
    second = InferenceEngine(compile_module(net, mode="int8"),
                             micro_batch=5).run(images)
    np.testing.assert_array_equal(first, second)
