"""Weight initialization statistics and BatchNorm recalibration."""

import numpy as np
import pytest

from repro import nn
from repro.nn import init
from repro.nn.calibration import batchnorm_modules, recalibrate_batchnorm
from repro.nn.tensor import Tensor


class TestInit:
    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        weights = init.kaiming_normal((256, 128), rng)
        expected_std = np.sqrt(2.0 / 128)
        assert weights.std() == pytest.approx(expected_std, rel=0.1)

    def test_kaiming_conv_fan_in(self):
        rng = np.random.default_rng(0)
        weights = init.kaiming_normal((64, 32, 3, 3), rng)
        expected_std = np.sqrt(2.0 / (32 * 9))
        assert weights.std() == pytest.approx(expected_std, rel=0.1)

    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(0)
        weights = init.xavier_uniform((100, 200), rng)
        bound = np.sqrt(6.0 / 300)
        assert np.abs(weights).max() <= bound + 1e-6

    def test_uniform_bias_bound(self):
        rng = np.random.default_rng(0)
        bias = init.uniform_bias(64, (32,), rng)
        assert np.abs(bias).max() <= 1 / np.sqrt(64) + 1e-6

    def test_zeros_ones(self):
        assert init.zeros((3, 3)).sum() == 0
        assert init.ones((3, 3)).sum() == 9

    def test_dtype(self):
        rng = np.random.default_rng(0)
        assert init.kaiming_uniform((4, 4), rng).dtype == np.float32
        assert init.xavier_normal((4, 4), rng).dtype == np.float32


class TestBatchNormRecalibration:
    def build(self, seed=0):
        rng = np.random.default_rng(seed)
        return nn.Sequential(
            nn.Conv2d(3, 6, 3, padding=1, rng=rng),
            nn.BatchNorm2d(6),
            nn.ReLU(),
        )

    def test_finds_batchnorm_modules(self):
        net = self.build()
        assert len(list(batchnorm_modules(net))) == 1

    def test_recalibration_matches_dataset_statistics(self, rng):
        net = self.build()
        images = rng.standard_normal((64, 3, 8, 8)).astype(np.float32)
        batches = recalibrate_batchnorm(net, images, batch_size=16)
        assert batches == 4
        bn = next(iter(batchnorm_modules(net)))
        # Reference statistics: run the conv over the whole dataset at once.
        with nn.no_grad():
            conv_out = net[0](Tensor(images)).data
        np.testing.assert_allclose(bn.running_mean, conv_out.mean(axis=(0, 2, 3)),
                                    atol=1e-3)
        np.testing.assert_allclose(bn.running_var, conv_out.var(axis=(0, 2, 3)),
                                    rtol=0.1)

    def test_momentum_restored_and_mode_preserved(self, rng):
        net = self.build()
        bn = next(iter(batchnorm_modules(net)))
        original_momentum = bn.momentum
        net.eval()
        recalibrate_batchnorm(net, rng.standard_normal((8, 3, 8, 8)).astype(np.float32))
        assert bn.momentum == original_momentum
        assert not net.training

    def test_no_batchnorm_is_a_noop(self, rng):
        net = nn.Sequential(nn.Linear(4, 2))
        assert recalibrate_batchnorm(net, rng.standard_normal((4, 4)).astype(np.float32)) == 0

    def test_recalibration_closes_train_eval_gap(self, rng):
        """After recalibration, eval-mode outputs track train-mode outputs."""
        net = self.build(seed=1)
        images = rng.standard_normal((64, 3, 8, 8)).astype(np.float32) * 2 + 1
        # Miscalibrate on purpose: a single training step with default momentum.
        net(Tensor(images[:8]))
        recalibrate_batchnorm(net, images, batch_size=32)
        net.eval()
        with nn.no_grad():
            eval_out = net(Tensor(images)).data
        net.train()
        with nn.no_grad():
            train_out = net(Tensor(images)).data
        assert np.abs(eval_out - train_out).mean() < 0.05
