"""Fig. 3 — accuracy and EM memory footprint versus prototype bit precision.

Learns the full FSCIL protocol once with a trained model, then requantizes
the stored prototypes to 8/7/6/5/4/3/2/1 bits (right-shifted integer
accumulators) and measures session-0 and final-session accuracy, together
with the EM storage footprint for 100 classes at the paper's d_p = 256.
"""

import pytest

from repro.quant import FIG3_BIT_WIDTHS, format_precision_table, prototype_precision_sweep

# Full-scale benchmark reproduction: minutes of training; excluded from
# the default (fast) suite by the `slow` marker — run with `pytest -m slow`.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def sweep_rows(trained_models, laptop_benchmark):
    model = trained_models("mobilenetv2_x4_tiny")
    return prototype_precision_sweep(model, laptop_benchmark,
                                     bit_widths=FIG3_BIT_WIDTHS)


def test_fig3_prototype_precision_sweep(benchmark, sweep_rows):
    rows = benchmark.pedantic(lambda: sweep_rows, rounds=1, iterations=1)
    print("\nFig. 3 — EM precision vs accuracy (and EM size @ 100 classes x 256 dims)")
    print(format_precision_table(rows))

    by_bits = {row.bits: row for row in rows}
    reference = by_bits[32]

    # Down to 3-bit prototypes the accuracy stays close to the float reference
    # (the paper reports no drop until 3 bits).
    for bits in (8, 7, 6, 5, 4, 3):
        row = by_bits[bits]
        assert row.session0_accuracy > reference.session0_accuracy - 0.05, bits
        assert row.final_session_accuracy > reference.final_session_accuracy - 0.05, bits

    # At 1 bit (sign-only prototypes) the representation cannot beat the
    # 8-bit one by more than noise (the curve falls off at the very low end
    # of Fig. 3).
    assert by_bits[1].session0_accuracy <= by_bits[8].session0_accuracy + 0.02

    # Memory accounting matches the paper: 9.6 kB at 3 bits, 102.4 kB at 32.
    assert by_bits[3].paper_memory_kb == pytest.approx(9.6)
    assert by_bits[32].paper_memory_kb == pytest.approx(102.4)
    assert by_bits[8].paper_memory_kb == pytest.approx(25.6)


def test_fig3_memory_monotone_in_bits(sweep_rows):
    memories = [row.paper_memory_kb for row in sweep_rows]
    assert all(a > b for a, b in zip(memories, memories[1:]))
