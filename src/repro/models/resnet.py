"""ResNet backbones.

Two variants are needed by the paper's evaluation:

* **ResNet-12** — the standard few-shot learning backbone (four residual
  blocks of three 3x3 convolutions with channel widths 64/160/320/640 and a
  2x2 max-pool after each block), used by the accuracy-oriented O-FSCIL
  configuration and by the C-FSCIL/SAVC/NC-FSCIL baselines (Table II).
* **ResNet-20** — the classic CIFAR ResNet used by the MetaFSCIL and LIMIT
  baselines (three stages of three basic blocks, widths 16/32/64).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from .graph import (
    LayerSpec,
    act_spec,
    add_spec,
    bn_spec,
    conv_spec,
    global_pool_spec,
    pool_spec,
)


class ResNet12Block(nn.Module):
    """Three conv-bn-relu layers plus a projected residual, then 2x2 max-pool.

    A block-output quantization hook point (see
    :data:`repro.quant.activation_quant.DEFAULT_HOOK_TYPES`): the hook
    observes the post-pool output, which is what the next block's shortcut
    consumes, so the integer runtime re-enters a calibrated int8 grid after
    every residual join.
    """

    def __init__(self, in_channels: int, out_channels: int,
                 rng: Optional[np.random.Generator] = None, pool: bool = True):
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.conv3 = nn.Conv2d(out_channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.bn3 = nn.BatchNorm2d(out_channels)
        self.shortcut = nn.Conv2d(in_channels, out_channels, 1, bias=False, rng=rng)
        self.shortcut_bn = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU()
        self.pool = nn.MaxPool2d(2) if pool else None

    def forward(self, x: Tensor) -> Tensor:
        residual = self.shortcut_bn(self.shortcut(x))
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        out = self.relu(out + residual)
        if self.pool is not None:
            out = self.pool(out)
        return out


class ResNet12Backbone(nn.Module):
    """ResNet-12 feature extractor (``d_a`` = 640 with the default widths)."""

    DEFAULT_CHANNELS: Tuple[int, ...] = (64, 160, 320, 640)

    def __init__(self, channels: Optional[Sequence[int]] = None,
                 in_channels: int = 3, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.channels = tuple(channels) if channels is not None else self.DEFAULT_CHANNELS
        self.in_channels = in_channels
        blocks = []
        previous = in_channels
        for width in self.channels:
            blocks.append(ResNet12Block(previous, width, rng=rng))
            previous = width
        self.blocks = nn.Sequential(*blocks)
        self.pool = nn.GlobalAvgPool2d()
        self.feature_dim = self.channels[-1]

    @property
    def output_dim(self) -> int:
        return self.feature_dim

    def forward(self, x: Tensor) -> Tensor:
        return self.pool(self.blocks(x))

    def layer_specs(self, input_hw: Tuple[int, int] = (32, 32)) -> List[LayerSpec]:
        specs: List[LayerSpec] = []
        hw = input_hw
        previous = self.in_channels
        for index, width in enumerate(self.channels):
            prefix = f"block{index}"
            for conv_index in range(1, 4):
                in_c = previous if conv_index == 1 else width
                spec = conv_spec(f"{prefix}.conv{conv_index}", in_c, width, 3, 1, hw)
                specs.append(spec)
                specs.append(bn_spec(f"{prefix}.bn{conv_index}", width, spec.out_hw))
                specs.append(act_spec(f"{prefix}.relu{conv_index}", width, spec.out_hw))
            shortcut = conv_spec(f"{prefix}.shortcut", previous, width, 1, 1, hw)
            specs.append(shortcut)
            specs.append(bn_spec(f"{prefix}.shortcut_bn", width, shortcut.out_hw))
            specs.append(add_spec(f"{prefix}.residual", width, shortcut.out_hw))
            pool = pool_spec(f"{prefix}.maxpool", width, hw, 2)
            specs.append(pool)
            hw = pool.out_hw
            previous = width
        specs.append(global_pool_spec("global_pool", previous, hw))
        return specs


class BasicBlock(nn.Module):
    """Classic two-convolution CIFAR ResNet basic block.

    Like :class:`ResNet12Block`, a block-output quantization hook point: the
    integer runtime lowers the strided 1x1 downsample (or identity) shortcut
    onto the residual add and requantizes the activated sum onto the block's
    calibrated grid, mirroring where Dory places requant nodes on GAP9.
    """

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, stride=stride,
                               padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, padding=1,
                               bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU()
        if stride != 1 or in_channels != out_channels:
            self.downsample = nn.Conv2d(in_channels, out_channels, 1,
                                        stride=stride, bias=False, rng=rng)
            self.downsample_bn = nn.BatchNorm2d(out_channels)
        else:
            self.downsample = None
            self.downsample_bn = None

    def forward(self, x: Tensor) -> Tensor:
        residual = x
        if self.downsample is not None:
            residual = self.downsample_bn(self.downsample(x))
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu(out + residual)


class ResNet20Backbone(nn.Module):
    """CIFAR ResNet-20 feature extractor (``d_a`` = 64 with default widths)."""

    def __init__(self, widths: Sequence[int] = (16, 32, 64), blocks_per_stage: int = 3,
                 in_channels: int = 3, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.widths = tuple(widths)
        self.blocks_per_stage = blocks_per_stage
        self.in_channels = in_channels
        self.stem = nn.Conv2d(in_channels, self.widths[0], 3, padding=1, bias=False, rng=rng)
        self.stem_bn = nn.BatchNorm2d(self.widths[0])
        self.relu = nn.ReLU()
        layers: List[nn.Module] = []
        previous = self.widths[0]
        for stage_index, width in enumerate(self.widths):
            for block_index in range(blocks_per_stage):
                stride = 2 if stage_index > 0 and block_index == 0 else 1
                layers.append(BasicBlock(previous, width, stride=stride, rng=rng))
                previous = width
        self.blocks = nn.Sequential(*layers)
        self.pool = nn.GlobalAvgPool2d()
        self.feature_dim = previous

    @property
    def output_dim(self) -> int:
        return self.feature_dim

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.stem_bn(self.stem(x)))
        out = self.blocks(out)
        return self.pool(out)

    def layer_specs(self, input_hw: Tuple[int, int] = (32, 32)) -> List[LayerSpec]:
        specs: List[LayerSpec] = []
        stem = conv_spec("stem", self.in_channels, self.widths[0], 3, 1, input_hw)
        specs.append(stem)
        specs.append(bn_spec("stem_bn", self.widths[0], stem.out_hw))
        specs.append(act_spec("stem_relu", self.widths[0], stem.out_hw))
        hw = stem.out_hw
        previous = self.widths[0]
        block_id = 0
        for stage_index, width in enumerate(self.widths):
            for block_index in range(self.blocks_per_stage):
                stride = 2 if stage_index > 0 and block_index == 0 else 1
                prefix = f"block{block_id}"
                conv1 = conv_spec(f"{prefix}.conv1", previous, width, 3, stride, hw)
                specs.append(conv1)
                specs.append(bn_spec(f"{prefix}.bn1", width, conv1.out_hw))
                specs.append(act_spec(f"{prefix}.relu1", width, conv1.out_hw))
                conv2 = conv_spec(f"{prefix}.conv2", width, width, 3, 1, conv1.out_hw)
                specs.append(conv2)
                specs.append(bn_spec(f"{prefix}.bn2", width, conv2.out_hw))
                if stride != 1 or previous != width:
                    down = conv_spec(f"{prefix}.downsample", previous, width, 1, stride, hw)
                    specs.append(down)
                    specs.append(bn_spec(f"{prefix}.downsample_bn", width, down.out_hw))
                specs.append(add_spec(f"{prefix}.residual", width, conv2.out_hw))
                specs.append(act_spec(f"{prefix}.relu2", width, conv2.out_hw))
                hw = conv2.out_hw
                previous = width
                block_id += 1
        specs.append(global_pool_spec("global_pool", previous, hw))
        return specs
