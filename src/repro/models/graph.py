"""Layer-level computation graph description.

Every backbone and head can emit a list of :class:`LayerSpec` records that
describe the operator sequence executed during inference (operator type,
tensor shapes, MAC count, parameter count and memory footprints).  The same
records drive three consumers:

* Table I (parameter and MAC accounting),
* the GAP9 deployment flow in :mod:`repro.hw.deploy` (tiling + cycle model),
* the energy/latency profiler behind Table IV and Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class LayerSpec:
    """Description of a single operator in the inference graph."""

    name: str
    op_type: str                       # conv / dwconv / linear / bn / act / pool / add
    in_channels: int
    out_channels: int
    kernel_size: int = 1
    stride: int = 1
    in_hw: Tuple[int, int] = (1, 1)
    out_hw: Tuple[int, int] = (1, 1)
    groups: int = 1
    macs: int = 0
    params: int = 0
    weight_bits: int = 8
    activation_bits: int = 8

    # ------------------------------------------------------------------
    @property
    def input_elements(self) -> int:
        return self.in_channels * self.in_hw[0] * self.in_hw[1]

    @property
    def output_elements(self) -> int:
        return self.out_channels * self.out_hw[0] * self.out_hw[1]

    @property
    def weight_elements(self) -> int:
        return self.params

    def input_bytes(self, bits: Optional[int] = None) -> int:
        bits = bits if bits is not None else self.activation_bits
        return (self.input_elements * bits + 7) // 8

    def output_bytes(self, bits: Optional[int] = None) -> int:
        bits = bits if bits is not None else self.activation_bits
        return (self.output_elements * bits + 7) // 8

    def weight_bytes(self, bits: Optional[int] = None) -> int:
        bits = bits if bits is not None else self.weight_bits
        return (self.weight_elements * bits + 7) // 8


@dataclass
class GraphSummary:
    """Aggregate statistics of a layer graph."""

    layers: List[LayerSpec] = field(default_factory=list)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_params(self) -> int:
        return sum(layer.params for layer in self.layers)

    def total_weight_bytes(self, bits: Optional[int] = None) -> int:
        return sum(layer.weight_bytes(bits) for layer in self.layers)

    def max_activation_bytes(self, bits: Optional[int] = None) -> int:
        if not self.layers:
            return 0
        return max(max(layer.input_bytes(bits), layer.output_bytes(bits))
                   for layer in self.layers)

    def by_type(self, op_type: str) -> List[LayerSpec]:
        return [layer for layer in self.layers if layer.op_type == op_type]


def conv_spec(name: str, in_channels: int, out_channels: int, kernel_size: int,
              stride: int, in_hw: Tuple[int, int], groups: int = 1,
              padding: Optional[int] = None, bias: bool = False) -> LayerSpec:
    """Build a :class:`LayerSpec` for a (grouped) convolution layer."""
    padding = padding if padding is not None else kernel_size // 2
    out_h = (in_hw[0] + 2 * padding - kernel_size) // stride + 1
    out_w = (in_hw[1] + 2 * padding - kernel_size) // stride + 1
    macs = out_h * out_w * out_channels * (in_channels // groups) * kernel_size * kernel_size
    params = out_channels * (in_channels // groups) * kernel_size * kernel_size
    if bias:
        params += out_channels
    op_type = "dwconv" if groups == in_channels and groups == out_channels else "conv"
    return LayerSpec(name=name, op_type=op_type, in_channels=in_channels,
                     out_channels=out_channels, kernel_size=kernel_size,
                     stride=stride, in_hw=in_hw, out_hw=(out_h, out_w),
                     groups=groups, macs=macs, params=params)


def bn_spec(name: str, channels: int, hw: Tuple[int, int]) -> LayerSpec:
    """BatchNorm layer spec (2 * C parameters, folded at deployment)."""
    return LayerSpec(name=name, op_type="bn", in_channels=channels,
                     out_channels=channels, in_hw=hw, out_hw=hw,
                     macs=channels * hw[0] * hw[1], params=2 * channels)


def act_spec(name: str, channels: int, hw: Tuple[int, int]) -> LayerSpec:
    return LayerSpec(name=name, op_type="act", in_channels=channels,
                     out_channels=channels, in_hw=hw, out_hw=hw,
                     macs=0, params=0)


def pool_spec(name: str, channels: int, in_hw: Tuple[int, int],
              kernel_size: int, stride: Optional[int] = None) -> LayerSpec:
    stride = stride if stride is not None else kernel_size
    out_h = (in_hw[0] - kernel_size) // stride + 1
    out_w = (in_hw[1] - kernel_size) // stride + 1
    return LayerSpec(name=name, op_type="pool", in_channels=channels,
                     out_channels=channels, kernel_size=kernel_size,
                     stride=stride, in_hw=in_hw, out_hw=(out_h, out_w),
                     macs=channels * in_hw[0] * in_hw[1], params=0)


def global_pool_spec(name: str, channels: int, in_hw: Tuple[int, int]) -> LayerSpec:
    return LayerSpec(name=name, op_type="pool", in_channels=channels,
                     out_channels=channels, kernel_size=in_hw[0], stride=in_hw[0],
                     in_hw=in_hw, out_hw=(1, 1),
                     macs=channels * in_hw[0] * in_hw[1], params=0)


def linear_spec(name: str, in_features: int, out_features: int,
                bias: bool = True) -> LayerSpec:
    params = in_features * out_features + (out_features if bias else 0)
    return LayerSpec(name=name, op_type="linear", in_channels=in_features,
                     out_channels=out_features, in_hw=(1, 1), out_hw=(1, 1),
                     macs=in_features * out_features, params=params)


def add_spec(name: str, channels: int, hw: Tuple[int, int]) -> LayerSpec:
    return LayerSpec(name=name, op_type="add", in_channels=channels,
                     out_channels=channels, in_hw=hw, out_hw=hw,
                     macs=0, params=0)
