"""Optimizers, schedulers and gradient clipping."""

import numpy as np
import pytest

from repro.nn.modules import Parameter
from repro.nn.optim import SGD, Adam, CosineAnnealingLR, StepLR, clip_grad_norm
from repro.nn.tensor import Tensor


def quadratic_problem(seed=0):
    """Minimize ||x - target||^2; any reasonable optimizer must converge."""
    rng = np.random.default_rng(seed)
    param = Parameter(rng.standard_normal(8).astype(np.float32) * 3)
    target = rng.standard_normal(8).astype(np.float32)

    def loss_fn():
        diff = param - Tensor(target)
        return (diff * diff).sum()

    return param, target, loss_fn


class TestSGD:
    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_converges_on_quadratic(self):
        param, target, loss_fn = quadratic_problem()
        optimizer = SGD([param], lr=0.05)
        for _ in range(200):
            loss = loss_fn()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            param, target, loss_fn = quadratic_problem(seed=1)
            optimizer = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(50):
                loss = loss_fn()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
            return float(((param.data - target) ** 2).sum())

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.full(4, 10.0, dtype=np.float32))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.zeros(4, dtype=np.float32)
        optimizer.step()
        assert np.all(np.abs(param.data) < 10.0)

    def test_frozen_parameters_not_updated(self):
        param = Parameter(np.ones(3, dtype=np.float32))
        param.requires_grad = False
        param.grad = np.ones(3, dtype=np.float32)
        before = param.data.copy()
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, before)

    def test_nesterov_converges(self):
        param, target, loss_fn = quadratic_problem(seed=2)
        optimizer = SGD([param], lr=0.02, momentum=0.9, nesterov=True)
        for _ in range(150):
            loss = loss_fn()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)


class TestAdam:
    def test_converges_on_quadratic(self):
        param, target, loss_fn = quadratic_problem(seed=3)
        optimizer = Adam([param], lr=0.1)
        for _ in range(400):
            loss = loss_fn()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=5e-2)

    def test_step_counter_advances(self):
        param = Parameter(np.ones(2, dtype=np.float32))
        optimizer = Adam([param], lr=0.01)
        param.grad = np.ones(2, dtype=np.float32)
        optimizer.step()
        optimizer.step()
        assert optimizer._t == 2

    def test_weight_decay(self):
        param = Parameter(np.full(4, 5.0, dtype=np.float32))
        optimizer = Adam([param], lr=0.1, weight_decay=1.0)
        param.grad = np.zeros(4, dtype=np.float32)
        optimizer.step()
        assert np.all(param.data < 5.0)


class TestSchedulers:
    def test_step_lr(self):
        param = Parameter(np.ones(1, dtype=np.float32))
        optimizer = SGD([param], lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs[0] == pytest.approx(1.0)      # epoch 1
        assert lrs[1] == pytest.approx(0.1)      # epoch 2
        assert lrs[3] == pytest.approx(0.01)     # epoch 4

    def test_cosine_decays_to_eta_min(self):
        param = Parameter(np.ones(1, dtype=np.float32))
        optimizer = SGD([param], lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.05)
        last = None
        for _ in range(10):
            last = scheduler.step()
        assert last == pytest.approx(0.05, abs=1e-6)

    def test_cosine_is_monotonically_decreasing_after_warmup(self):
        param = Parameter(np.ones(1, dtype=np.float32))
        optimizer = SGD([param], lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, t_max=20, warmup_epochs=3)
        lrs = [scheduler.step() for _ in range(23)]
        assert lrs[0] < lrs[2]                       # warm-up increases
        assert all(a >= b - 1e-9 for a, b in zip(lrs[3:], lrs[4:]))  # then decays


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        param = Parameter(np.ones(4, dtype=np.float32))
        param.grad = np.full(4, 10.0, dtype=np.float32)
        total = clip_grad_norm([param], max_norm=1.0)
        assert total == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-5)

    def test_no_clip_when_below_threshold(self):
        param = Parameter(np.ones(4, dtype=np.float32))
        param.grad = np.full(4, 0.1, dtype=np.float32)
        clip_grad_norm([param], max_norm=10.0)
        np.testing.assert_allclose(param.grad, np.full(4, 0.1))

    def test_handles_missing_gradients(self):
        param = Parameter(np.ones(4, dtype=np.float32))
        assert clip_grad_norm([param], max_norm=1.0) == 0.0
