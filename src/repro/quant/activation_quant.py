"""Activation quantization via forward hooks.

Activation tensors are quantized at the output of every activation layer
(ReLU6 / ReLU) and at the backbone output, mirroring where Dory inserts
requantization nodes on GAP9.  The pass has two phases:

1. **Calibration** — observers attached to the hook points record activation
   ranges over calibration batches.
2. **Quantization** — each hook point gets a frozen :class:`TQTQuantizer`
   and every forward pass fake-quantizes the activation (with a
   straight-through gradient, so quantization-aware refinement still works).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..models.mobilenetv2 import InvertedResidual
from ..models.resnet import BasicBlock, ResNet12Block
from ..nn.modules import GlobalAvgPool2d, Module, ReLU, ReLU6
from ..nn.tensor import Tensor
from .fake_quant import fake_quantize
from .observer import make_observer
from .tqt import TQTQuantizer


#: Hook points: activation outputs, the pooled backbone output and the
#: residual-block outputs (Dory requantizes after every residual add on
#: GAP9, and the integer runtime needs a calibrated grid there to re-enter
#: the int8 domain after the float residual accumulation).  Block-output
#: grids exist for every residual family: MobileNetV2's
#: :class:`InvertedResidual` and the ResNet trunks'
#: :class:`~repro.models.resnet.BasicBlock` / :class:`ResNet12Block`, whose
#: hooks observe the post-activation (ResNet-12: post-pool) block output —
#: the tensor the downsample/identity shortcut of the *next* block consumes,
#: so shortcut and main path share one calibrated scale at the join.
DEFAULT_HOOK_TYPES = (ReLU, ReLU6, GlobalAvgPool2d, InvertedResidual,
                      BasicBlock, ResNet12Block)


@dataclass
class ActivationQuantizationReport:
    """Per-hook-point calibration summary."""

    thresholds: Dict[str, float] = field(default_factory=dict)
    bits: int = 8

    @property
    def num_points(self) -> int:
        return len(self.thresholds)


class ActivationQuantizer:
    """Manages observation and fake quantization of one module's output."""

    def __init__(self, name: str, bits: int = 8, observer_kind: str = "percentile"):
        self.name = name
        self.bits = bits
        self.observer = make_observer(observer_kind)
        self.quantizer: Optional[TQTQuantizer] = None
        self.mode = "off"   # "off" | "observe" | "quantize"

    def __call__(self, _module: Module, output: Tensor):
        if self.mode == "observe":
            self.observer.observe(output.data)
            return None
        if self.mode == "quantize" and self.quantizer is not None:
            return fake_quantize(output, self.quantizer.threshold, self.bits)
        return None

    @property
    def scale(self) -> float:
        """Int8 grid step of the frozen quantizer."""
        if self.quantizer is None:
            raise RuntimeError(f"activation point {self.name!r} is not frozen")
        return self.quantizer.scale

    def freeze(self) -> None:
        """Derive the quantizer threshold from the observed range."""
        if not self.observer.calibrated:
            raise RuntimeError(f"activation point {self.name!r} never observed data")
        bound = self.observer.range().max_abs
        quantizer = TQTQuantizer(bits=self.bits)
        # Threshold search around the observed range (power-of-two, TQT-style).
        quantizer.calibrate(np.asarray([bound, -bound], dtype=np.float32))
        self.quantizer = quantizer
        self.mode = "quantize"


class ActivationQuantizationPass:
    """Attach, calibrate and enable activation quantization on a model."""

    def __init__(self, model: Module, bits: int = 8,
                 hook_types=DEFAULT_HOOK_TYPES, observer_kind: str = "percentile"):
        self.model = model
        self.bits = bits
        self.hook_types = tuple(hook_types)
        self.observer_kind = observer_kind
        self.quantizers: List[ActivationQuantizer] = []
        self._modules: List[Module] = []
        self.input_quantizer: Optional[TQTQuantizer] = None
        self._attach()

    def _attach(self) -> None:
        for name, module in self.model.named_modules():
            if isinstance(module, self.hook_types):
                quantizer = ActivationQuantizer(name or module.__class__.__name__,
                                                bits=self.bits,
                                                observer_kind=self.observer_kind)
                module.register_forward_hook(quantizer)
                self.quantizers.append(quantizer)
                self._modules.append(module)

    def quantizer_for(self, module: Module) -> Optional[ActivationQuantizer]:
        """The quantizer this pass attached to ``module`` (None if none)."""
        for hooked, quantizer in zip(self._modules, self.quantizers):
            if hooked is module:
                return quantizer
        return None

    # ------------------------------------------------------------------
    def calibrate(self, images: np.ndarray, batch_size: int = 64,
                  forward=None) -> ActivationQuantizationReport:
        """Observe activation ranges on calibration data and freeze scales."""
        from ..nn.tensor import no_grad
        for quantizer in self.quantizers:
            quantizer.mode = "observe"
        was_training = self.model.training
        self.model.eval()
        images = np.asarray(images, dtype=np.float32)
        with no_grad():
            for start in range(0, len(images), batch_size):
                batch = Tensor(images[start:start + batch_size])
                if forward is not None:
                    forward(self.model, batch)
                else:
                    self.model(batch)
        for quantizer in self.quantizers:
            quantizer.freeze()
        # Calibrate the model-input grid on the same data (the deployed GAP9
        # graph consumes an int8 image tensor) and stamp it on the model so
        # the int8 compiler can quantize the plan input without a live
        # reference to this pass.
        self.input_quantizer = TQTQuantizer(bits=self.bits).calibrate(images)
        self.model.input_quantizer = self.input_quantizer
        self.model.train(was_training)
        return self.report()

    def report(self) -> ActivationQuantizationReport:
        report = ActivationQuantizationReport(bits=self.bits)
        for quantizer in self.quantizers:
            if quantizer.quantizer is not None:
                report.thresholds[quantizer.name] = quantizer.quantizer.threshold
        return report

    def enable(self) -> None:
        for quantizer in self.quantizers:
            if quantizer.quantizer is not None:
                quantizer.mode = "quantize"

    def disable(self) -> None:
        for quantizer in self.quantizers:
            quantizer.mode = "off"

    def detach(self) -> None:
        """Remove every hook installed by this pass."""
        for name, module in self.model.named_modules():
            if isinstance(module, self.hook_types):
                module._forward_hooks = [hook for hook in module._forward_hooks
                                         if hook not in self.quantizers]
        self.quantizers.clear()
        self._modules.clear()
        if getattr(self.model, "input_quantizer", None) is self.input_quantizer:
            self.model.input_quantizer = None
        self.input_quantizer = None
