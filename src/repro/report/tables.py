"""Plain-text table rendering used by benchmarks and examples."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 precision: int = 3, title: Optional[str] = None) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted with ``precision`` decimals, everything else with
    ``str``; column widths adapt to the content.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    headers = [str(header) for header in headers]
    widths = [max(len(headers[column]),
                  *(len(row[column]) for row in text_rows)) if text_rows
              else len(headers[column])
              for column in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def dict_rows_to_table(rows: List[Dict[str, object]], columns: Optional[Sequence[str]] = None,
                       precision: int = 3, title: Optional[str] = None) -> str:
    """Format a list of dict rows, optionally restricting/ordering columns."""
    if not rows:
        return title or "(empty table)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    data = [[row.get(column, "") for column in columns] for row in rows]
    return format_table(columns, data, precision=precision, title=title)


def relative_error(measured: float, reference: float) -> float:
    """Relative deviation of a measurement from the paper's reference value."""
    if reference == 0:
        return float("inf") if measured else 0.0
    return (measured - reference) / reference
