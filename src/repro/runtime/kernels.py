"""Fused inference kernels for the batched runtime.

These kernels operate on raw ``numpy`` arrays — no :class:`~repro.nn.tensor.Tensor`
wrappers, no autograd bookkeeping.  Three ideas keep them fast:

* **stride-tricks im2col with buffer reuse** — the sliding-window view of the
  padded input is materialised into a column buffer that is allocated once
  per (shape, dtype) and reused across calls through :class:`BufferCache`,
  so steady-state batched inference allocates nothing on the conv path;
* **fusion** — batch-norm is folded into the convolution weights at plan
  compile time, and the bias add + activation clip are applied in place on
  the GEMM output, so every conv layer makes a single pass over its output;
* **batched GEMM** — dense and pointwise convolutions are expressed as
  ``matmul`` over the whole micro-batch, hitting BLAS instead of Python
  loops.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..nn.conv import conv_output_size

#: Supported fused activations (applied in place on the layer output).
ACTIVATIONS = (None, "relu", "relu6")


def apply_activation(out: np.ndarray, act: Optional[str]) -> np.ndarray:
    """Apply ``act`` to ``out`` in place and return it."""
    if act is None:
        return out
    if act == "relu":
        return np.maximum(out, 0.0, out=out)
    if act == "relu6":
        return np.clip(out, 0.0, 6.0, out=out)
    raise ValueError(f"unknown activation {act!r}; expected one of {ACTIVATIONS}")


class BufferCache:
    """Reusable scratch buffers keyed by (tag, shape, dtype).

    The engine keeps one cache per plan so that consecutive ``run`` calls
    with the same micro-batch shape reuse the same im2col / padding buffers
    instead of reallocating them for every layer of every batch.
    """

    def __init__(self):
        self._buffers: Dict[Tuple, np.ndarray] = {}

    def get(self, tag: str, shape: Tuple[int, ...],
            dtype=np.float32) -> np.ndarray:
        key = (tag, shape, np.dtype(dtype).str)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def clear(self) -> None:
        self._buffers.clear()

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        return sum(buffer.nbytes for buffer in self._buffers.values())


def sliding_window_view(x: np.ndarray, kh: int, kw: int,
                        stride: int) -> np.ndarray:
    """Zero-copy ``(N, C, kh, kw, out_h, out_w)`` window view of ``x``.

    ``x`` must already be padded.  The view aliases ``x``; callers copy it
    into a contiguous buffer before feeding a GEMM.
    """
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False)


def im2col_cached(x: np.ndarray, kh: int, kw: int, stride: int, padding: int,
                  cache: Optional[BufferCache] = None) -> np.ndarray:
    """im2col into a cached contiguous buffer of shape (N, C, kh*kw, oh*ow)."""
    n, c, h, w = x.shape
    if padding > 0:
        padded_shape = (n, c, h + 2 * padding, w + 2 * padding)
        if cache is not None:
            padded = cache.get("pad", padded_shape, x.dtype)
            padded.fill(0.0)
        else:
            padded = np.zeros(padded_shape, dtype=x.dtype)
        padded[:, :, padding:padding + h, padding:padding + w] = x
        x = padded
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    view = sliding_window_view(x, kh, kw, stride)
    cols_shape = (n, c, kh, kw, out_h, out_w)
    if cache is not None:
        cols = cache.get("col", cols_shape, x.dtype)
    else:
        cols = np.empty(cols_shape, dtype=x.dtype)
    np.copyto(cols, view)
    return cols.reshape(n, c, kh * kw, out_h * out_w)


def fused_conv(x: np.ndarray, weight: np.ndarray,
               bias: Optional[np.ndarray] = None, stride: int = 1,
               padding: int = 0, groups: int = 1, act: Optional[str] = None,
               cache: Optional[BufferCache] = None) -> np.ndarray:
    """Grouped 2-D convolution with the bias add and activation fused in.

    ``weight`` is ``(out_c, in_c // groups, kh, kw)`` — typically the
    BN-folded weight produced by the plan compiler, with ``bias`` holding the
    folded BN shift.
    """
    n, c, h, w = x.shape
    out_c, c_per_group, kh, kw = weight.shape
    if c != c_per_group * groups:
        raise ValueError(
            f"input channels ({c}) incompatible with weight {weight.shape} "
            f"and groups={groups}")
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    spatial = out_h * out_w

    pointwise = (kh == 1 and kw == 1 and stride == 1 and padding == 0
                 and groups == 1)
    if pointwise:
        out = np.matmul(weight.reshape(out_c, c), x.reshape(n, c, spatial))
    else:
        cols = im2col_cached(x, kh, kw, stride, padding, cache)
        depthwise = groups == c and groups == out_c
        if groups == 1:
            out = np.matmul(weight.reshape(out_c, c * kh * kw),
                            cols.reshape(n, c * kh * kw, spatial))
        elif depthwise:
            out = np.einsum("nckl,ck->ncl", cols, weight.reshape(c, kh * kw))
        else:
            cols_g = cols.reshape(n, groups, c_per_group * kh * kw, spatial)
            weight_g = weight.reshape(groups, out_c // groups,
                                      c_per_group * kh * kw)
            out = np.einsum("gok,ngkl->ngol", weight_g, cols_g, optimize=True)
    out = np.ascontiguousarray(out).reshape(n, out_c, spatial)
    if bias is not None:
        out += bias.reshape(1, out_c, 1)
    apply_activation(out, act)
    return out.reshape(n, out_c, out_h, out_w)


def fused_linear(x: np.ndarray, weight: np.ndarray,
                 bias: Optional[np.ndarray] = None,
                 act: Optional[str] = None) -> np.ndarray:
    """``x @ weight.T + bias`` with the activation fused in (weight (out, in))."""
    out = np.matmul(x, weight.T)
    if bias is not None:
        out += bias
    return apply_activation(out, act)


def batchnorm_inference(x: np.ndarray, scale: np.ndarray, shift: np.ndarray,
                        act: Optional[str] = None) -> np.ndarray:
    """Eval-mode batch norm reduced to a per-channel affine map.

    ``scale``/``shift`` are the precomputed ``gamma / sqrt(var + eps)`` and
    ``beta - mean * scale`` vectors; works for both NCHW and (N, C) inputs.
    """
    if x.ndim == 4:
        out = x * scale.reshape(1, -1, 1, 1) + shift.reshape(1, -1, 1, 1)
    else:
        out = x * scale.reshape(1, -1) + shift.reshape(1, -1)
    return apply_activation(out, act)


def global_avg_pool(x: np.ndarray) -> np.ndarray:
    """Global average pooling of NCHW down to (N, C)."""
    return x.mean(axis=(2, 3))


def max_pool(x: np.ndarray, kernel_size: int, stride: int) -> np.ndarray:
    """Max pooling over square windows via the zero-copy window view."""
    view = sliding_window_view(x, kernel_size, kernel_size, stride)
    return view.max(axis=(2, 3))


def avg_pool(x: np.ndarray, kernel_size: int, stride: int) -> np.ndarray:
    """Average pooling over square windows via the zero-copy window view."""
    view = sliding_window_view(x, kernel_size, kernel_size, stride)
    return view.mean(axis=(2, 3))


# ---------------------------------------------------------------------------
# Integer (int8) execution kernels
# ---------------------------------------------------------------------------
#: Symmetric signed-int8 code range shared by weights and activations.
INT8_QMIN, INT8_QMAX = -127, 127

#: Largest worst-case |accumulator| for which a float32 GEMM is still exact
#: (every partial sum is an integer below 2**24, the float32 mantissa limit).
_F32_EXACT_LIMIT = 2 ** 24

#: Hard bound the integer path must respect: accumulators are int32 on the
#: target hardware, regardless of the dtype the host GEMM runs in.
INT32_ACC_LIMIT = 2 ** 31 - 1


def quantize_int8(x: np.ndarray, scale: float) -> np.ndarray:
    """Quantize float values onto the symmetric int8 grid ``scale``.

    Matches the rounding of :func:`repro.quant.fake_quant.quantize`
    (round-half-to-even, clip to ±127) so integer plans reproduce the fake
    quantization of the eager path code-for-code.
    """
    codes = np.clip(np.rint(x / scale), INT8_QMIN, INT8_QMAX)
    return codes.astype(np.int8)


def dequantize_int8(q: np.ndarray, scale: float) -> np.ndarray:
    """Map int8 codes back to float32 values."""
    return q.astype(np.float32) * np.float32(scale)


def requantize_float(x: np.ndarray, scale: float) -> np.ndarray:
    """Fake-quantize a float tensor in place of a quantize+dequantize pair.

    First-class plan-op replacement for the eager activation fake-quant
    hooks: the output is float32 but every value sits on the int8 grid.
    """
    codes = np.clip(np.rint(x / scale), INT8_QMIN, INT8_QMAX)
    return (codes * scale).astype(np.float32)


def quantize_weight_per_channel(weight: np.ndarray
                                ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-output-channel symmetric int8 quantization of a weight tensor.

    Returns ``(codes, scales)`` where ``codes`` is int8 with the same shape
    as ``weight`` and ``scales`` is a float64 vector over the leading (output
    channel) axis.  All-zero channels get scale 1.0 so downstream
    requantization multipliers stay finite.
    """
    flat = weight.reshape(weight.shape[0], -1)
    max_abs = np.abs(flat).max(axis=1).astype(np.float64)
    scales = np.where(max_abs > 0.0, max_abs / INT8_QMAX, 1.0)
    shaped = scales.reshape((-1,) + (1,) * (weight.ndim - 1))
    codes = np.clip(np.rint(weight / shaped), INT8_QMIN, INT8_QMAX)
    return codes.astype(np.int8), scales


def conv_accumulator_bound(weight_q: np.ndarray,
                           bias_q: Optional[np.ndarray] = None) -> int:
    """Worst-case |int32 accumulator| of an int8 conv/linear layer.

    Bounds the dot product by ``sum |w_q| * 127`` per output channel (the
    actual quantized weights, not the generic ``K * 127^2`` envelope) plus
    the bias magnitude.
    """
    per_channel = np.abs(weight_q.reshape(weight_q.shape[0], -1)
                         .astype(np.int64)).sum(axis=1) * INT8_QMAX
    if bias_q is not None:
        per_channel = per_channel + np.abs(bias_q.astype(np.int64))
    return int(per_channel.max()) if per_channel.size else 0


def _acc_dtype(bound: int):
    """GEMM dtype that accumulates integer values of magnitude ``bound`` exactly."""
    return np.float32 if bound < _F32_EXACT_LIMIT else np.float64


def _cast_cached(x: np.ndarray, dtype, tag: str,
                 cache: Optional[BufferCache]) -> np.ndarray:
    """Cast ``x`` into a cached buffer of ``dtype`` (exact for int8 sources)."""
    if x.dtype == dtype:
        return x
    if cache is not None:
        out = cache.get(tag, x.shape, dtype)
    else:
        out = np.empty(x.shape, dtype=dtype)
    np.copyto(out, x)
    return out


def int_accumulate_conv(q: np.ndarray, weight_q: np.ndarray, stride: int = 1,
                        padding: int = 0, groups: int = 1,
                        cache: Optional[BufferCache] = None,
                        acc_bound: Optional[int] = None) -> np.ndarray:
    """Exact integer conv accumulation of int8 activations against int8 weights.

    The GEMM runs in float32/float64 (hitting BLAS) but every partial sum is
    an integer below the chosen mantissa limit, so the result is *exactly*
    the int32-accumulate convolution — bit-for-bit identical regardless of
    batch split, BLAS threading or summation order.  Returns the integer
    accumulator as a float array of shape ``(N, out_c, spatial)``.
    """
    n, c, h, w = q.shape
    out_c, c_per_group, kh, kw = weight_q.shape
    if c != c_per_group * groups:
        raise ValueError(
            f"input channels ({c}) incompatible with weight {weight_q.shape} "
            f"and groups={groups}")
    bound = acc_bound if acc_bound is not None \
        else conv_accumulator_bound(weight_q)
    if bound > INT32_ACC_LIMIT:
        raise OverflowError(
            f"int8 conv accumulator bound {bound} exceeds the int32 range; "
            f"the layer cannot run on 32-bit accumulators")
    dtype = _acc_dtype(bound)
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    spatial = out_h * out_w

    pointwise = (kh == 1 and kw == 1 and stride == 1 and padding == 0
                 and groups == 1)
    weight_f = weight_q.astype(dtype)
    if pointwise:
        x_f = _cast_cached(q.reshape(n, c, spatial), dtype, "qpw", cache)
        acc = np.matmul(weight_f.reshape(out_c, c), x_f)
    else:
        cols = im2col_cached(q, kh, kw, stride, padding, cache)
        cols_f = _cast_cached(cols, dtype, "qcol", cache)
        depthwise = groups == c and groups == out_c
        if groups == 1:
            acc = np.matmul(weight_f.reshape(out_c, c * kh * kw),
                            cols_f.reshape(n, c * kh * kw, spatial))
        elif depthwise:
            acc = np.einsum("nckl,ck->ncl", cols_f,
                            weight_f.reshape(c, kh * kw))
        else:
            cols_g = cols_f.reshape(n, groups, c_per_group * kh * kw, spatial)
            weight_g = weight_f.reshape(groups, out_c // groups,
                                        c_per_group * kh * kw)
            acc = np.einsum("gok,ngkl->ngol", weight_g, cols_g, optimize=True)
    return np.ascontiguousarray(acc).reshape(n, out_c, spatial)


def fused_qconv(q: np.ndarray, weight_q: np.ndarray, bias_q: np.ndarray,
                multiplier: np.ndarray, stride: int = 1, padding: int = 0,
                groups: int = 1, qmin: int = INT8_QMIN, qmax: int = INT8_QMAX,
                cache: Optional[BufferCache] = None,
                acc_bound: Optional[int] = None) -> np.ndarray:
    """Int8 conv with the requantization epilogue fused in.

    ``acc = conv_int32(q, weight_q) + bias_q`` followed by the per-channel
    rescale ``clip(round(acc * multiplier), qmin, qmax)`` back to int8, with
    the activation expressed through the clamp bounds (``qmin=0`` for ReLU,
    ``qmax=round(6/scale)`` capped at 127 for ReLU6).
    """
    n = q.shape[0]
    out_c = weight_q.shape[0]
    acc = int_accumulate_conv(q, weight_q, stride=stride, padding=padding,
                              groups=groups, cache=cache, acc_bound=acc_bound)
    acc += bias_q.astype(acc.dtype).reshape(1, out_c, 1)
    # float32 * float64 promotes each product to float64 exactly — no
    # explicit astype copy needed on the hot path.
    scaled = acc * multiplier.reshape(1, out_c, 1)
    codes = np.clip(np.rint(scaled), qmin, qmax).astype(np.int8)
    kh, kw = weight_q.shape[2], weight_q.shape[3]
    out_h = conv_output_size(q.shape[2], kh, stride, padding)
    out_w = conv_output_size(q.shape[3], kw, stride, padding)
    return codes.reshape(n, out_c, out_h, out_w)


def fused_qconv_dequant(q: np.ndarray, weight_q: np.ndarray,
                        dequant: np.ndarray, bias: Optional[np.ndarray] = None,
                        stride: int = 1, padding: int = 0, groups: int = 1,
                        act: Optional[str] = None,
                        cache: Optional[BufferCache] = None,
                        acc_bound: Optional[int] = None) -> np.ndarray:
    """Int8 conv dequantized straight to float32 (no output scale needed).

    Used where the plan has no calibrated output range (e.g. the projection
    convolution feeding a residual add): the int32 accumulator is mapped back
    to float via the per-channel ``dequant = s_in * s_w[c]`` factors and the
    float bias is added on top.
    """
    n = q.shape[0]
    out_c = weight_q.shape[0]
    acc = int_accumulate_conv(q, weight_q, stride=stride, padding=padding,
                              groups=groups, cache=cache, acc_bound=acc_bound)
    out = (acc * dequant.reshape(1, out_c, 1)).astype(np.float32)
    if bias is not None:
        out += bias.reshape(1, out_c, 1)
    apply_activation(out, act)
    kh, kw = weight_q.shape[2], weight_q.shape[3]
    out_h = conv_output_size(q.shape[2], kh, stride, padding)
    out_w = conv_output_size(q.shape[3], kw, stride, padding)
    return out.reshape(n, out_c, out_h, out_w)


def fused_qlinear(q: np.ndarray, weight_q: np.ndarray, dequant: np.ndarray,
                  bias: Optional[np.ndarray] = None,
                  act: Optional[str] = None) -> np.ndarray:
    """Int8 GEMM ``q @ weight_q.T`` with a float rescale at the end.

    ``weight_q`` is ``(out, in)`` int8; ``dequant`` holds the per-output-row
    ``s_in * s_w[row]`` factors.  The accumulation is exact (see
    :func:`int_accumulate_conv`), the output is float32.
    """
    bound = conv_accumulator_bound(weight_q)
    if bound > INT32_ACC_LIMIT:
        raise OverflowError(
            f"int8 linear accumulator bound {bound} exceeds the int32 range")
    dtype = _acc_dtype(bound)
    acc = np.matmul(q.astype(dtype), weight_q.T.astype(dtype))
    out = (acc * dequant.reshape(1, -1)).astype(np.float32)
    if bias is not None:
        out += bias
    return apply_activation(out, act)


def quantize_unit_rows(matrix: np.ndarray) -> np.ndarray:
    """Quantize rows of a unit-norm matrix to int8 at the fixed scale 1/127.

    Row-normalised matrices (features, prototypes) live in ``[-1, 1]``, so a
    static power-free scale of ``1/127`` loses no range; the fixed scale
    keeps the codes independent of batch composition, which is what makes
    int8 prototype matching bitwise reproducible under sharding.
    """
    return np.clip(np.rint(matrix * INT8_QMAX), INT8_QMIN, INT8_QMAX) \
        .astype(np.int8)


def int8_cosine_similarities(features: np.ndarray,
                             prototypes_q: np.ndarray,
                             eps: float = 1e-12) -> np.ndarray:
    """Cosine similarity as an int8 GEMM with a float rescale at the end.

    Features are L2-normalised in float, quantized per element at the fixed
    ``1/127`` scale, multiplied against pre-quantized unit-norm prototypes
    in an exact integer GEMM and rescaled by ``1/127**2``.  Per-sample
    normalisation + elementwise quantization keep every row independent of
    the rest of the batch, so sharded and local execution agree bit-for-bit.
    """
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    features_q = quantize_unit_rows(features / (norms + eps))
    # Worst case |acc| = dim * 127 * 127: exact in float64 up to dim ~ 5e8.
    acc = np.matmul(features_q.astype(np.float64),
                    prototypes_q.T.astype(np.float64))
    return (acc / float(INT8_QMAX) ** 2).astype(np.float32)


def normalize_prototypes(matrix: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Row-wise L2 normalisation of a prototype matrix (float32).

    Shared by the predictor's prototype cache and the serving snapshots
    (:mod:`repro.serve`) so every execution path serves bit-identical
    similarity scores from the same normalised matrix.
    """
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return (matrix / (norms + eps)).astype(np.float32)


def cosine_similarities(features: np.ndarray, prototypes_normed: np.ndarray,
                        eps: float = 1e-12) -> np.ndarray:
    """Cosine similarity of raw features against pre-normalised prototypes.

    Normalising the prototype matrix once per memory version (instead of per
    query batch) is what makes whole-session prediction a single GEMM.
    """
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    normed = features / (norms + eps)
    return normed @ prototypes_normed.T
