"""Shared fixtures for the benchmark harness.

The accuracy benchmarks (Table II / III, Fig. 3) train models on the
laptop-scale synthetic FSCIL benchmark; training happens once per backbone
and is cached for the whole benchmark session.  The scale of the runs can be
adjusted through environment variables:

* ``REPRO_BENCH_EPOCHS``  — pretraining epochs (default 20)
* ``REPRO_BENCH_ML_ITERS`` — metalearning iterations (default 25)
* ``REPRO_BENCH_PROFILE`` — FSCIL data profile for Table II (default "laptop")
"""

from __future__ import annotations

import os

import pytest

from repro.core import (
    MetalearnConfig,
    OFSCIL,
    OFSCILConfig,
    PretrainConfig,
    metalearn,
    pretrain,
)
from repro.data import build_synthetic_fscil

BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "20"))
BENCH_ML_ITERS = int(os.environ.get("REPRO_BENCH_ML_ITERS", "25"))
BENCH_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "laptop")


def pretrain_config(seed: int = 0) -> PretrainConfig:
    return PretrainConfig(epochs=BENCH_EPOCHS, batch_size=64, learning_rate=0.15,
                          seed=seed)


def metalearn_config(seed: int = 0) -> MetalearnConfig:
    return MetalearnConfig(iterations=BENCH_ML_ITERS, meta_shots=5,
                           queries_per_class=2, learning_rate=0.02, seed=seed)


@pytest.fixture(scope="session")
def laptop_benchmark():
    """Laptop-scale synthetic FSCIL benchmark (60 base + 8 x 5-way 5-shot)."""
    return build_synthetic_fscil(BENCH_PROFILE, seed=0)


@pytest.fixture(scope="session")
def trained_models(laptop_benchmark):
    """Cache of trained O-FSCIL models, keyed by backbone name."""
    cache = {}

    def get(backbone: str) -> OFSCIL:
        if backbone not in cache:
            model = OFSCIL.from_registry(backbone, OFSCILConfig(backbone=backbone),
                                         seed=0)
            pretrain(model.backbone, model.fcr, laptop_benchmark.base_train,
                     num_classes=laptop_benchmark.protocol.base_classes,
                     config=pretrain_config())
            metalearn(model.backbone, model.fcr, laptop_benchmark.base_train,
                      config=metalearn_config())
            cache[backbone] = model
        return cache[backbone]

    return get
