"""Serving statistics: throughput counters, queue depth, batch histogram."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ServeStats:
    """Thread-safe counters for one :class:`~repro.serve.server.Server`.

    ``batch_size_histogram`` maps coalesced-batch size to occurrence count —
    the shape of this histogram is the dynamic batcher's report card: a
    saturating workload should pile mass at ``max_batch``, a trickle of
    single requests should sit at 1 with ``max_latency`` bounding the wait.
    """

    single_requests: int = 0
    batch_requests: int = 0
    samples: int = 0
    batches_dispatched: int = 0
    batch_size_histogram: Dict[int, int] = field(default_factory=dict)
    max_queue_depth: int = 0
    prototype_broadcasts: int = 0
    started_at: float = field(default_factory=time.perf_counter)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # ------------------------------------------------------------------
    def observe_submit(self, queue_depth: int) -> None:
        with self._lock:
            self.single_requests += 1
            if queue_depth > self.max_queue_depth:
                self.max_queue_depth = queue_depth

    def observe_batch_request(self, num_samples: int) -> None:
        with self._lock:
            self.batch_requests += 1
            self.samples += num_samples

    def observe_dispatch(self, batch_size: int) -> None:
        with self._lock:
            self.batches_dispatched += 1
            self.samples += batch_size
            self.batch_size_histogram[batch_size] = \
                self.batch_size_histogram.get(batch_size, 0) + 1

    def observe_broadcast(self) -> None:
        with self._lock:
            self.prototype_broadcasts += 1

    # ------------------------------------------------------------------
    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self.started_at

    @property
    def samples_per_s(self) -> float:
        elapsed = self.elapsed_s
        return self.samples / elapsed if elapsed > 0 else 0.0

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "single_requests": self.single_requests,
                "batch_requests": self.batch_requests,
                "samples": self.samples,
                "batches_dispatched": self.batches_dispatched,
                "batch_size_histogram": dict(self.batch_size_histogram),
                "max_queue_depth": self.max_queue_depth,
                "prototype_broadcasts": self.prototype_broadcasts,
                "elapsed_s": self.elapsed_s,
                "samples_per_s": self.samples_per_s,
            }
