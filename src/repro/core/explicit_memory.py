"""Explicit Memory (EM): the expandable prototype store of O-FSCIL.

The EM holds one prototype vector per learned class.  Learning a new class is
a single averaging pass over the few labelled shots (Fig. 1b of the paper);
inference compares the query feature against every stored prototype with
cosine similarity and predicts the best match (Fig. 1a).

The memory supports reduced-precision storage of prototypes (Fig. 3): the
float prototype is first represented as a wide integer accumulator and then
right-shifted down to the requested bit width, which preserves the vector
direction — and hence the cosine-similarity ranking — until very low
precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np


def quantize_prototype(prototype: np.ndarray, bits: int,
                       accumulator_bits: int = 17) -> np.ndarray:
    """Quantize a prototype vector to a signed ``bits``-bit integer grid.

    The paper first accumulates the (int8) feature sums in a 17-bit integer
    and then right-shifts it until the value fits the target width; e.g. an
    8-bit prototype is obtained with a 9-bit right shift.  Cosine similarity
    only depends on the vector direction, so the norm reduction is harmless
    while the rounding progressively coarsens the direction.

    Args:
        prototype: float prototype vector (any scale).
        bits: target signed bit width (>= 1; 1 keeps only the sign).
        accumulator_bits: width of the integer accumulator the prototype is
            first scaled into (17 in the paper for MobileNetV2 x4).

    Returns:
        Quantized prototype as ``float32`` (integer-valued entries).
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    if bits >= 32:
        return prototype.astype(np.float32)
    max_abs = float(np.max(np.abs(prototype)))
    if max_abs == 0.0:
        return np.zeros_like(prototype, dtype=np.float32)
    # Scale the float prototype into the accumulator range.
    accumulator_max = 2 ** (accumulator_bits - 1) - 1
    accumulator = np.round(prototype / max_abs * accumulator_max).astype(np.int64)
    if bits == 1:
        # Sign-only representation (bipolar vector).
        return np.where(accumulator >= 0, 1.0, -1.0).astype(np.float32)
    shift = max(accumulator_bits - bits, 0)
    quantized = accumulator >> shift
    limit = 2 ** (bits - 1) - 1
    return np.clip(quantized, -limit - 1, limit).astype(np.float32)


def bipolarize(prototype: np.ndarray) -> np.ndarray:
    """Return the sign vector of a prototype (used as fine-tuning target)."""
    return np.where(prototype >= 0, 1.0, -1.0).astype(np.float32)


@dataclass
class ExplicitMemory:
    """Expandable class-prototype memory with optional reduced precision.

    Attributes:
        dim: prototype dimensionality ``d_p``.
        bits: storage precision of prototypes (32 = float storage).
        accumulator_bits: integer accumulator width used when quantizing.
    """

    dim: int
    bits: int = 32
    accumulator_bits: int = 17
    _prototypes: Dict[int, np.ndarray] = field(default_factory=dict)
    _counts: Dict[int, int] = field(default_factory=dict)
    _float_prototypes: Dict[int, np.ndarray] = field(default_factory=dict)
    _version: int = 0

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every mutation.

        Consumers that cache derived state (e.g. the batched predictor's
        normalised prototype matrix) compare versions instead of hashing the
        prototype contents.
        """
        return self._version

    # ------------------------------------------------------------------
    # Prototype management
    # ------------------------------------------------------------------
    def update_class(self, class_id: int, features: np.ndarray) -> np.ndarray:
        """Learn (or re-learn) a class from a batch of ``theta_p`` features.

        The prototype is the running mean of every feature ever presented for
        the class, so multiple few-shot visits to the same class refine the
        prototype instead of replacing it.

        Args:
            class_id: integer class identifier.
            features: ``(S, dim)`` array of projected features.

        Returns:
            The stored (possibly quantized) prototype.
        """
        features = np.asarray(features, dtype=np.float32)
        if features.ndim == 1:
            features = features[None, :]
        if features.shape[1] != self.dim:
            raise ValueError(
                f"feature dim {features.shape[1]} does not match memory dim {self.dim}")
        count = features.shape[0]
        mean = features.mean(axis=0)
        if class_id in self._prototypes and self._counts.get(class_id, 0) > 0:
            previous_count = self._counts[class_id]
            previous = self._float_prototypes[class_id]
            total = previous_count + count
            mean = (previous * previous_count + mean * count) / total
            self._counts[class_id] = total
        else:
            self._counts[class_id] = count
        self._float_prototypes[class_id] = mean.astype(np.float32)
        stored = mean if self.bits >= 32 else quantize_prototype(
            mean, self.bits, self.accumulator_bits)
        self._prototypes[class_id] = stored.astype(np.float32)
        self._version += 1
        return self._prototypes[class_id]

    def set_prototype(self, class_id: int, prototype: np.ndarray) -> None:
        """Directly overwrite a stored prototype (used by fine-tuning)."""
        prototype = np.asarray(prototype, dtype=np.float32)
        if prototype.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {prototype.shape}")
        self._float_prototypes[class_id] = prototype.copy()
        stored = prototype if self.bits >= 32 else quantize_prototype(
            prototype, self.bits, self.accumulator_bits)
        self._prototypes[class_id] = stored
        self._counts.setdefault(class_id, 1)
        self._version += 1

    def remove_class(self, class_id: int) -> None:
        self._prototypes.pop(class_id, None)
        self._counts.pop(class_id, None)
        self._float_prototypes.pop(class_id, None)
        self._version += 1

    def reset(self) -> None:
        self._prototypes.clear()
        self._counts.clear()
        self._float_prototypes.clear()
        self._version += 1

    def requantize(self, bits: int) -> "ExplicitMemory":
        """Return a copy of the memory with prototypes stored at ``bits``."""
        clone = ExplicitMemory(dim=self.dim, bits=bits,
                               accumulator_bits=self.accumulator_bits)
        for class_id in self.class_ids:
            source = self._float_prototypes.get(class_id, self._prototypes[class_id])
            clone.set_prototype(class_id, source)
        return clone

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def class_ids(self) -> List[int]:
        return sorted(self._prototypes)

    @property
    def num_classes(self) -> int:
        return len(self._prototypes)

    def __contains__(self, class_id: int) -> bool:
        return class_id in self._prototypes

    def __len__(self) -> int:
        return len(self._prototypes)

    def prototype(self, class_id: int) -> np.ndarray:
        return self._prototypes[class_id]

    def prototype_matrix(self, class_ids: Optional[Iterable[int]] = None
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Return (prototype matrix, class-id vector) for the requested classes."""
        ids = list(class_ids) if class_ids is not None else self.class_ids
        missing = [c for c in ids if c not in self._prototypes]
        if missing:
            raise KeyError(f"classes {missing} are not stored in the memory")
        if not ids:
            # An empty (but well-shaped) matrix: similarity queries against a
            # fresh/reset memory yield (N, 0) scores instead of crashing.
            return (np.zeros((0, self.dim), dtype=np.float32),
                    np.asarray([], dtype=np.int64))
        matrix = np.stack([self._prototypes[c] for c in ids]).astype(np.float32)
        return matrix, np.asarray(ids, dtype=np.int64)

    def memory_bytes(self, num_classes: Optional[int] = None,
                     bits: Optional[int] = None) -> float:
        """EM storage footprint for ``num_classes`` prototypes at ``bits``.

        With 100 classes, 256-dimensional prototypes and 3-bit precision this
        evaluates to 9.6 kB, matching the paper.
        """
        count = num_classes if num_classes is not None else max(self.num_classes, 1)
        width = bits if bits is not None else self.bits
        return count * self.dim * width / 8.0

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def similarities(self, features: np.ndarray,
                     class_ids: Optional[Iterable[int]] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Cosine similarity of each feature against each stored prototype."""
        matrix, ids = self.prototype_matrix(class_ids)
        features = np.asarray(features, dtype=np.float32)
        if features.ndim == 1:
            features = features[None, :]
        feat_norm = features / (np.linalg.norm(features, axis=1, keepdims=True) + 1e-12)
        proto_norm = matrix / (np.linalg.norm(matrix, axis=1, keepdims=True) + 1e-12)
        return feat_norm @ proto_norm.T, ids

    def predict(self, features: np.ndarray,
                class_ids: Optional[Iterable[int]] = None) -> np.ndarray:
        """Nearest-prototype prediction under cosine similarity."""
        sims, ids = self.similarities(features, class_ids)
        if ids.size == 0:
            raise ValueError("cannot predict with an empty explicit memory; "
                             "learn at least one class first")
        return ids[np.argmax(sims, axis=1)]

    def bipolar_prototypes(self, class_ids: Optional[Iterable[int]] = None
                           ) -> Tuple[np.ndarray, np.ndarray]:
        """Sign-quantized prototypes used as FCR fine-tuning targets."""
        matrix, ids = self.prototype_matrix(class_ids)
        return bipolarize(matrix), ids
