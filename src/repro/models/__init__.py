"""Backbones, projection heads and the Table I model registry."""

from .graph import (
    GraphSummary,
    LayerSpec,
    act_spec,
    add_spec,
    bn_spec,
    conv_spec,
    global_pool_spec,
    linear_spec,
    pool_spec,
)
from .heads import (
    CosineClassifier,
    FullyConnectedClassifier,
    FullyConnectedReductor,
    simplex_etf,
)
from .mobilenetv2 import (
    DEFAULT_STAGE_SETTINGS,
    STRIDE_PLANS,
    InvertedResidual,
    MobileNetV2Backbone,
)
from .registry import (
    BackboneConfig,
    build_backbone,
    get_config,
    list_configs,
    register,
    table1_rows,
)
from .resnet import BasicBlock, ResNet12Backbone, ResNet12Block, ResNet20Backbone

__all__ = [
    "LayerSpec",
    "GraphSummary",
    "conv_spec",
    "bn_spec",
    "act_spec",
    "pool_spec",
    "global_pool_spec",
    "linear_spec",
    "add_spec",
    "FullyConnectedReductor",
    "FullyConnectedClassifier",
    "CosineClassifier",
    "simplex_etf",
    "MobileNetV2Backbone",
    "InvertedResidual",
    "STRIDE_PLANS",
    "DEFAULT_STAGE_SETTINGS",
    "ResNet12Backbone",
    "ResNet12Block",
    "ResNet20Backbone",
    "BasicBlock",
    "BackboneConfig",
    "register",
    "get_config",
    "list_configs",
    "build_backbone",
    "table1_rows",
]
