"""Shared-memory ring-buffer transport: slot accounting, fallbacks, parity.

The :class:`~repro.serve.transport.SlotRing` is the tensor data plane of the
sharded serving engine — these tests pin its contract in isolation (no
worker processes): slot wraparound and reuse, the pickle fallback for
payloads that do not fit, wholesale reclamation after a worker death, and
bit-for-bit fidelity of the shared-memory path against the pickle path on
every dtype the runtime serves (float32 activations, int8 codes, int64
labels).  The end-to-end bit-parity of shm vs pickle transport through real
spawned workers is pinned in ``tests/test_serve.py``
(``TestTransportParity``), and for int8 plans by the golden-fixture sharded
test in ``tests/test_runtime_int8.py``.
"""

import pickle

import numpy as np
import pytest

from repro.serve.transport import (
    SlotRing,
    pack_payload,
    unpack_payload,
)


@pytest.fixture()
def ring():
    ring = SlotRing(slots=4, slot_bytes=4096)
    yield ring
    ring.close()


class TestSlotRing:
    def test_roundtrip_is_bitwise_per_dtype(self, ring, rng):
        for dtype in (np.float32, np.float64, np.int8, np.int32, np.int64):
            array = (rng.standard_normal((8, 16)) * 100).astype(dtype)
            descriptor = ring.try_write(array)
            assert descriptor is not None
            view = ring.read(descriptor)
            assert view.dtype == array.dtype and view.shape == array.shape
            np.testing.assert_array_equal(view, array)
            ring.free(descriptor[0])
        assert ring.slots_in_use == 0

    def test_wraparound_reuses_freed_slots(self, ring, rng):
        # Many more writes than slots: the cursor must wrap and recycle
        # freed slots without corrupting payloads.
        seen_slots = set()
        for index in range(3 * ring.slots + 1):
            array = np.full((16,), index, dtype=np.int64)
            descriptor = ring.try_write(array)
            assert descriptor is not None, f"write {index} found no slot"
            seen_slots.add(descriptor[0])
            np.testing.assert_array_equal(ring.read(descriptor), array)
            ring.free(descriptor[0])
        assert seen_slots == set(range(ring.slots))
        assert ring.slots_in_use == 0

    def test_interleaved_writes_do_not_clobber_held_slots(self, ring):
        # A held (unfreed) slot must survive later writes and frees.
        held = ring.try_write(np.full((4,), 7, dtype=np.int32))
        for index in range(10):
            other = ring.try_write(np.full((4,), index, dtype=np.int32))
            assert other is not None and other[0] != held[0]
            ring.free(other[0])
        np.testing.assert_array_equal(ring.read(held),
                                      np.full((4,), 7, dtype=np.int32))
        ring.free(held[0])

    def test_full_ring_refuses_writes(self, ring):
        descriptors = [ring.try_write(np.zeros(4)) for _ in range(ring.slots)]
        assert all(d is not None for d in descriptors)
        assert ring.slots_in_use == ring.slots
        assert ring.try_write(np.zeros(4)) is None
        ring.free(descriptors[0][0])
        assert ring.try_write(np.zeros(4)) is not None

    def test_oversized_payload_refused(self, ring):
        too_big = np.zeros(ring.slot_bytes // 8 + 1, dtype=np.float64)
        assert ring.try_write(too_big) is None
        assert ring.slots_in_use == 0          # a refused write claims nothing

    def test_reclaim_after_worker_death(self, ring):
        # A dead peer leaves slots marked in-use; reclaim_all is the
        # watchdog's leak-proofing path and must return the ring to fully
        # writable.
        for _ in range(ring.slots):
            assert ring.try_write(np.zeros(8)) is not None
        assert ring.try_write(np.zeros(8)) is None
        ring.reclaim_all()
        assert ring.slots_in_use == 0
        assert ring.try_write(np.zeros(8)) is not None

    def test_attach_shares_slots_and_flags(self, ring, rng):
        # The consumer side attaches by spec (as a worker process would) and
        # must see the producer's payload bit-for-bit; its free() must be
        # visible to the producer's accounting.
        peer = SlotRing.attach(pickle.loads(pickle.dumps(ring.spec())))
        try:
            array = rng.standard_normal((32, 8)).astype(np.float32)
            descriptor = ring.try_write(array)
            np.testing.assert_array_equal(peer.read(descriptor), array)
            assert ring.slots_in_use == 1
            peer.free(descriptor[0])
            assert ring.slots_in_use == 0
        finally:
            peer.close()

    def test_non_contiguous_arrays_round_trip(self, ring, rng):
        base = rng.standard_normal((16, 16)).astype(np.float32)
        strided = base[::2, ::2]
        assert not strided.flags["C_CONTIGUOUS"]
        descriptor = ring.try_write(strided)
        np.testing.assert_array_equal(ring.read(descriptor), strided)
        ring.free(descriptor[0])


class TestPackUnpack:
    def test_shm_vs_pickle_paths_are_bit_identical(self, ring, rng):
        # The same payload through the shared-memory path and through the
        # inline (pickle) fallback must decode to identical bits — the
        # guarantee that lets a full ring degrade transparently.
        for dtype in (np.float32, np.int8):
            array = (rng.standard_normal((6, 64)) * 50).astype(dtype)
            shm_packed = pack_payload(ring, array)
            inline_packed = pack_payload(None, array)
            assert shm_packed[0] != inline_packed[0]
            via_shm, _ = unpack_payload(ring, shm_packed, copy=True)
            via_pickle, _ = unpack_payload(
                None, pickle.loads(pickle.dumps(inline_packed)), copy=True)
            np.testing.assert_array_equal(via_shm, via_pickle)
            assert via_shm.dtype == via_pickle.dtype == dtype

    def test_tuple_payload_packs_leading_tensor_only(self, ring, rng):
        images = rng.standard_normal((4, 3, 8, 8)).astype(np.float32)
        packed = pack_payload(ring, (images, [1, 2, 3]))
        assert ring.slots_in_use == 1
        payload, held = unpack_payload(ring, packed)
        assert isinstance(payload, tuple)
        np.testing.assert_array_equal(payload[0], images)
        assert payload[1] == [1, 2, 3]
        assert len(held) == 1
        ring.free(held[0])
        assert ring.slots_in_use == 0

    def test_copy_mode_frees_the_slot_immediately(self, ring, rng):
        array = rng.standard_normal((8,)).astype(np.float32)
        packed = pack_payload(ring, array)
        payload, held = unpack_payload(ring, packed, copy=True)
        assert held == () and ring.slots_in_use == 0
        np.testing.assert_array_equal(payload, array)
        # The copy must be detached from the ring: overwriting the slot
        # with a new payload cannot corrupt the already-returned array.
        pack_payload(ring, np.zeros_like(array))
        np.testing.assert_array_equal(payload, array)

    def test_control_frames_stay_inline(self, ring):
        for payload in (None, 7, "stats", {"requests": 3}, [1, 2]):
            packed = pack_payload(ring, payload)
            assert packed[0] == "__inline__"
            decoded, held = unpack_payload(ring, packed)
            assert decoded == payload and held == ()
        assert ring.slots_in_use == 0

    def test_oversized_and_full_ring_fall_back_inline(self, ring, rng):
        oversized = np.zeros(ring.slot_bytes + 1, dtype=np.uint8)
        packed = pack_payload(ring, oversized)
        assert packed[0] == "__inline__"
        while ring.try_write(np.zeros(1)) is not None:
            pass                                        # exhaust the ring
        fits = rng.standard_normal((4,)).astype(np.float32)
        packed = pack_payload(ring, fits)
        assert packed[0] == "__inline__"
        decoded, _ = unpack_payload(ring, packed, copy=True)
        np.testing.assert_array_equal(decoded, fits)

    def test_raw_payloads_pass_through_untouched(self):
        # Queue-generic consumers (the worker main loop under plain queues
        # in tests) must keep working when payloads were never packed.
        raw = (np.zeros((2, 2)), None)
        payload, held = unpack_payload(None, raw)
        assert payload is raw and held == ()
