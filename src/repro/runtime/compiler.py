"""Compile module trees into flat inference plans.

The compiler walks the structure of the model (no tracing pass is needed —
the architectures used by the reproduction are static) and emits one
:class:`~repro.runtime.plan.Step` per fused operation:

* ``Conv2d -> BatchNorm2d -> ReLU/ReLU6`` chains collapse into a single
  ``conv`` step whose weights have the batch-norm scale folded in and whose
  activation is applied in place on the GEMM output;
* ``Linear`` layers become ``linear`` steps that read their weights from the
  live module at execution time, so in-place fine-tuning needs no recompile;
* residual additions become explicit ``add`` steps over named registers;
* any module that carries forward hooks anywhere in its subtree (activation
  fake-quantisation attaches hooks) — or whose type the compiler does not
  know — is kept as an ``opaque`` step that calls the module eagerly, so
  compilation never changes semantics, only speed.

Known model classes (:class:`MobileNetV2Backbone`, :class:`ResNet12Backbone`,
:class:`ResNet20Backbone` and the composite blocks they are built from) get
dedicated lowering rules; everything else falls back to generic traversal.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

import numpy as np

from ..models.heads import FullyConnectedReductor
from ..models.mobilenetv2 import ConvBNReLU, InvertedResidual, MobileNetV2Backbone
from ..models.resnet import (
    BasicBlock,
    ResNet12Backbone,
    ResNet12Block,
    ResNet20Backbone,
)
from ..nn.modules import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    ReLU6,
    Sequential,
)
from .plan import InferencePlan, Step


def has_hooks(module: Module) -> bool:
    """True when any module in the subtree carries forward hooks."""
    return any(sub._forward_hooks for sub in module.modules())


def fold_conv_bn(conv: Conv2d, bn: Optional[BatchNorm2d]
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Fold an eval-mode batch norm into the convolution weight and bias.

    ``y = gamma * (conv(x) - mean) / sqrt(var + eps) + beta`` becomes a plain
    convolution with per-output-channel rescaled weights and a bias.
    """
    weight = conv.weight.data.astype(np.float32)
    bias = conv.bias.data.astype(np.float32) if conv.bias is not None \
        else np.zeros(weight.shape[0], dtype=np.float32)
    if bn is None:
        return weight, bias
    scale, shift = bn_scale_shift(bn)
    folded_weight = weight * scale[:, None, None, None]
    folded_bias = bias * scale + shift
    return folded_weight.astype(np.float32), folded_bias.astype(np.float32)


def bn_scale_shift(bn) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce an eval-mode BatchNorm(1d/2d) to per-channel scale and shift."""
    var = np.asarray(bn.running_var, dtype=np.float32)
    mean = np.asarray(bn.running_mean, dtype=np.float32)
    inv_std = 1.0 / np.sqrt(var + bn.eps)
    if bn.affine:
        scale = bn.weight.data.astype(np.float32) * inv_std
        shift = bn.bias.data.astype(np.float32) - mean * scale
    else:
        scale = inv_std.astype(np.float32)
        shift = (-mean * inv_std).astype(np.float32)
    return scale, shift


class PlanBuilder:
    """Accumulates steps while threading register names through the graph."""

    def __init__(self, name: str):
        self.name = name
        self.steps = []
        self._counter = itertools.count()

    def register(self, hint: str) -> str:
        return f"%{next(self._counter)}_{hint}"

    def emit(self, op: str, name: str, inputs: Tuple[str, ...], *,
             arrays=None, attrs=None, module=None, hint: str = "t") -> str:
        output = self.register(hint)
        self.steps.append(Step(op=op, name=name, inputs=inputs, output=output,
                               arrays=arrays or {}, attrs=attrs or {},
                               module=module))
        return output

    def build(self, input_register: str, output_register: str) -> InferencePlan:
        return InferencePlan(steps=self.steps, input_register=input_register,
                             output_register=output_register, name=self.name)


def compile_module(module: Module, name: str = "") -> InferencePlan:
    """Compile any supported module into a flat inference plan."""
    builder = PlanBuilder(name or module.__class__.__name__)
    out = _lower(builder, module, name or module.__class__.__name__, "x")
    return builder.build("x", out)


def compile_backbone(backbone: Module) -> InferencePlan:
    """Compile a feature-extractor backbone (images -> ``theta_a``)."""
    return compile_module(backbone, backbone.__class__.__name__)


def compile_ofscil(model) -> InferencePlan:
    """Compile the full deploy-time feature path of an O-FSCIL model.

    The plan maps images to the prototypical feature ``theta_p`` (backbone
    followed by the FCR); prototype comparison lives in the predictor where
    the prototype matrix can be cached across calls.
    """
    builder = PlanBuilder(f"OFSCIL[{model.config.backbone}]")
    features = _lower(builder, model.backbone, "backbone", "x")
    out = _lower(builder, model.fcr, "fcr", features)
    return builder.build("x", out)


# ---------------------------------------------------------------------------
# Lowering rules
# ---------------------------------------------------------------------------
def _lower(builder: PlanBuilder, module: Module, name: str, x: str) -> str:
    """Emit steps computing ``module(x)`` and return the output register."""
    if has_hooks(module):
        # Hooked modules (activation fake-quantisation, probes, ...) must run
        # through the eager path to keep their side effects and rewrites.
        return builder.emit("opaque", name, (x,), module=module, hint="opq")

    if isinstance(module, ConvBNReLU):
        return _lower_conv_bn_act(builder, name, x, module.conv, module.bn,
                                  "relu6")
    if isinstance(module, InvertedResidual):
        return _lower_inverted_residual(builder, module, name, x)
    if isinstance(module, ResNet12Block):
        return _lower_resnet12_block(builder, module, name, x)
    if isinstance(module, BasicBlock):
        return _lower_basic_block(builder, module, name, x)
    if isinstance(module, MobileNetV2Backbone):
        out = _lower(builder, module.stem, f"{name}.stem", x)
        out = _lower(builder, module.blocks, f"{name}.blocks", out)
        out = _lower(builder, module.head, f"{name}.head", out)
        return builder.emit("global_pool", f"{name}.pool", (out,), hint="gap")
    if isinstance(module, ResNet12Backbone):
        out = _lower(builder, module.blocks, f"{name}.blocks", x)
        return builder.emit("global_pool", f"{name}.pool", (out,), hint="gap")
    if isinstance(module, ResNet20Backbone):
        out = _lower_conv_bn_act(builder, f"{name}.stem", x, module.stem,
                                 module.stem_bn, "relu")
        out = _lower(builder, module.blocks, f"{name}.blocks", out)
        return builder.emit("global_pool", f"{name}.pool", (out,), hint="gap")
    if isinstance(module, FullyConnectedReductor):
        return _lower(builder, module.linear, f"{name}.linear", x)
    if isinstance(module, Sequential):
        out = x
        for index in range(len(module)):
            out = _lower(builder, module[index], f"{name}.{index}", out)
        return out
    if isinstance(module, Conv2d):
        weight, bias = fold_conv_bn(module, None)
        return builder.emit(
            "conv", name, (x,), arrays={"weight": weight, "bias": bias},
            attrs={"stride": module.stride, "padding": module.padding,
                   "groups": module.groups, "act": None}, hint="conv")
    if isinstance(module, (BatchNorm2d, BatchNorm1d)):
        scale, shift = bn_scale_shift(module)
        return builder.emit("bn", name, (x,),
                            arrays={"scale": scale, "shift": shift},
                            attrs={"act": None}, hint="bn")
    if isinstance(module, Linear):
        return builder.emit("linear", name, (x,), module=module,
                            attrs={"act": None}, hint="fc")
    if isinstance(module, ReLU):
        return builder.emit("act", name, (x,), attrs={"act": "relu"},
                            hint="relu")
    if isinstance(module, ReLU6):
        return builder.emit("act", name, (x,), attrs={"act": "relu6"},
                            hint="relu6")
    if isinstance(module, GlobalAvgPool2d):
        return builder.emit("global_pool", name, (x,), hint="gap")
    if isinstance(module, MaxPool2d):
        return builder.emit("max_pool", name, (x,),
                            attrs={"kernel_size": module.kernel_size,
                                   "stride": module.stride}, hint="maxp")
    if isinstance(module, AvgPool2d):
        return builder.emit("avg_pool", name, (x,),
                            attrs={"kernel_size": module.kernel_size,
                                   "stride": module.stride}, hint="avgp")
    if isinstance(module, Flatten):
        return builder.emit("flatten", name, (x,), hint="flat")
    if isinstance(module, (Identity, Dropout)):
        # Dropout is the identity at inference time.
        return x
    # Unknown module: keep it, eagerly.
    return builder.emit("opaque", name, (x,), module=module, hint="opq")


def _lower_conv_bn_act(builder: PlanBuilder, name: str, x: str, conv: Conv2d,
                       bn: Optional[BatchNorm2d], act: Optional[str]) -> str:
    weight, bias = fold_conv_bn(conv, bn)
    return builder.emit(
        "conv", name, (x,), arrays={"weight": weight, "bias": bias},
        attrs={"stride": conv.stride, "padding": conv.padding,
               "groups": conv.groups, "act": act}, hint="conv")


def _lower_inverted_residual(builder: PlanBuilder, module: InvertedResidual,
                             name: str, x: str) -> str:
    out = x
    if module.expand is not None:
        out = _lower(builder, module.expand, f"{name}.expand", out)
    out = _lower(builder, module.depthwise, f"{name}.dw", out)
    out = _lower_conv_bn_act(builder, f"{name}.project", out, module.project,
                             module.project_bn, None)
    if module.use_residual:
        out = builder.emit("add", f"{name}.residual", (out, x),
                           attrs={"act": None}, hint="add")
    return out


def _lower_resnet12_block(builder: PlanBuilder, module: ResNet12Block,
                          name: str, x: str) -> str:
    residual = _lower_conv_bn_act(builder, f"{name}.shortcut", x,
                                  module.shortcut, module.shortcut_bn, None)
    out = _lower_conv_bn_act(builder, f"{name}.conv1", x, module.conv1,
                             module.bn1, "relu")
    out = _lower_conv_bn_act(builder, f"{name}.conv2", out, module.conv2,
                             module.bn2, "relu")
    out = _lower_conv_bn_act(builder, f"{name}.conv3", out, module.conv3,
                             module.bn3, None)
    out = builder.emit("add", f"{name}.residual", (out, residual),
                       attrs={"act": "relu"}, hint="add")
    if module.pool is not None:
        out = builder.emit("max_pool", f"{name}.pool", (out,),
                           attrs={"kernel_size": module.pool.kernel_size,
                                  "stride": module.pool.stride}, hint="maxp")
    return out


def _lower_basic_block(builder: PlanBuilder, module: BasicBlock, name: str,
                       x: str) -> str:
    if module.downsample is not None:
        residual = _lower_conv_bn_act(builder, f"{name}.downsample", x,
                                      module.downsample, module.downsample_bn,
                                      None)
    else:
        residual = x
    out = _lower_conv_bn_act(builder, f"{name}.conv1", x, module.conv1,
                             module.bn1, "relu")
    out = _lower_conv_bn_act(builder, f"{name}.conv2", out, module.conv2,
                             module.bn2, None)
    return builder.emit("add", f"{name}.residual", (out, residual),
                        attrs={"act": "relu"}, hint="add")
