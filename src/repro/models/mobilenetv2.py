"""MobileNetV2 backbone with configurable per-stage strides.

The paper adapts MobileNetV2 to 32x32 CIFAR-style inputs by reducing the
strides of the seven inverted-residual stages; three variants are used
(Table I):

=================  ======================
variant            per-stage strides
=================  ======================
``mobilenetv2``    1, 2, 2, 2, 1, 2, 1
``mobilenetv2_x2`` 1, 2, 2, 2, 1, 1, 1
``mobilenetv2_x4`` 1, 2, 2, 1, 1, 1, 1
=================  ======================

Fewer downsampling stages keep a larger spatial resolution (hence the x2/x4
names), improving accuracy at the cost of more MAC operations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from .graph import (
    LayerSpec,
    act_spec,
    add_spec,
    bn_spec,
    conv_spec,
    global_pool_spec,
)

# (expansion factor, output channels, number of blocks) per stage; the stride
# of the first block of each stage is supplied by the stride plan.
DEFAULT_STAGE_SETTINGS: Tuple[Tuple[int, int, int], ...] = (
    (1, 16, 1),
    (6, 24, 2),
    (6, 32, 3),
    (6, 64, 4),
    (6, 96, 3),
    (6, 160, 3),
    (6, 320, 1),
)

STRIDE_PLANS = {
    "x1": (1, 2, 2, 2, 1, 2, 1),
    "x2": (1, 2, 2, 2, 1, 1, 1),
    "x4": (1, 2, 2, 1, 1, 1, 1),
}


def _make_divisible(value: float, divisor: int = 8) -> int:
    """Round channel counts to a multiple of ``divisor`` (MobileNet rule)."""
    new_value = max(divisor, int(value + divisor / 2) // divisor * divisor)
    if new_value < 0.9 * value:
        new_value += divisor
    return new_value


class ConvBNReLU(nn.Module):
    """Conv -> BatchNorm -> ReLU6 building block."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 stride: int = 1, groups: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        padding = kernel_size // 2
        self.conv = nn.Conv2d(in_channels, out_channels, kernel_size,
                              stride=stride, padding=padding, groups=groups,
                              bias=False, rng=rng)
        self.bn = nn.BatchNorm2d(out_channels)
        self.act = nn.ReLU6()

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.bn(self.conv(x)))


class InvertedResidual(nn.Module):
    """MobileNetV2 inverted residual block with linear bottleneck."""

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 expand_ratio: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.stride = stride
        self.use_residual = stride == 1 and in_channels == out_channels
        hidden = int(round(in_channels * expand_ratio))
        self.expand_ratio = expand_ratio

        if expand_ratio != 1:
            self.expand = ConvBNReLU(in_channels, hidden, kernel_size=1, rng=rng)
        else:
            self.expand = None
        self.depthwise = ConvBNReLU(hidden, hidden, kernel_size=3, stride=stride,
                                    groups=hidden, rng=rng)
        self.project = nn.Conv2d(hidden, out_channels, 1, bias=False, rng=rng)
        self.project_bn = nn.BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        out = x
        if self.expand is not None:
            out = self.expand(out)
        out = self.depthwise(out)
        out = self.project_bn(self.project(out))
        if self.use_residual:
            out = out + x
        return out


class MobileNetV2Backbone(nn.Module):
    """MobileNetV2 feature extractor producing the ``theta_a`` embedding.

    Args:
        stride_plan: per-stage stride of the first block in each of the seven
            inverted-residual stages ("x1"/"x2"/"x4" or an explicit tuple).
        width_mult: channel width multiplier (1.0 reproduces the paper's
            2.5 M-parameter backbone; smaller values give the laptop profile).
        stem_stride: stride of the initial 3x3 convolution (1 for 32x32
            CIFAR-style inputs, as in the paper).
        feature_dim: output embedding width ``d_a`` (1280 in the paper).
        stage_settings: optionally override the (expansion, channels, blocks)
            triples; used by reduced laptop-scale profiles.
    """

    def __init__(self, stride_plan="x1", width_mult: float = 1.0,
                 in_channels: int = 3, stem_channels: int = 32,
                 stem_stride: int = 1, feature_dim: int = 1280,
                 stage_settings: Optional[Sequence[Tuple[int, int, int]]] = None,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        if isinstance(stride_plan, str):
            stride_plan = STRIDE_PLANS[stride_plan]
        stage_settings = tuple(stage_settings) if stage_settings is not None \
            else DEFAULT_STAGE_SETTINGS
        if len(stride_plan) != len(stage_settings):
            raise ValueError("stride plan length must match the number of stages")

        self.stride_plan = tuple(stride_plan)
        self.width_mult = width_mult
        self.stage_settings = stage_settings
        self.stem_stride = stem_stride
        self.in_channels = in_channels
        self.stem_channels = stem_channels

        stem_out = _make_divisible(stem_channels * width_mult)
        self.stem = ConvBNReLU(in_channels, stem_out, kernel_size=3,
                               stride=stem_stride, rng=rng)

        blocks: List[nn.Module] = []
        channels = stem_out
        for stage_index, ((expand, out_c, repeats), stage_stride) in enumerate(
                zip(stage_settings, stride_plan)):
            out_channels = _make_divisible(out_c * width_mult)
            for block_index in range(repeats):
                stride = stage_stride if block_index == 0 else 1
                blocks.append(InvertedResidual(channels, out_channels, stride,
                                               expand, rng=rng))
                channels = out_channels
        self.blocks = nn.Sequential(*blocks)

        self.feature_dim = feature_dim if width_mult >= 1.0 else \
            _make_divisible(feature_dim * width_mult)
        self.head = ConvBNReLU(channels, self.feature_dim, kernel_size=1, rng=rng)
        self.pool = nn.GlobalAvgPool2d()
        self._last_channels = channels

    # ------------------------------------------------------------------
    @property
    def output_dim(self) -> int:
        """Dimensionality ``d_a`` of the produced embedding."""
        return self.feature_dim

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        out = self.blocks(out)
        out = self.head(out)
        return self.pool(out)

    # ------------------------------------------------------------------
    def layer_specs(self, input_hw: Tuple[int, int] = (32, 32)) -> List[LayerSpec]:
        """Operator-level description of an inference pass (see Table I)."""
        specs: List[LayerSpec] = []
        hw = input_hw

        def conv_block(prefix: str, in_c: int, out_c: int, k: int, stride: int,
                       groups: int, hw_in: Tuple[int, int]) -> Tuple[int, Tuple[int, int]]:
            spec = conv_spec(f"{prefix}.conv", in_c, out_c, k, stride, hw_in,
                             groups=groups)
            specs.append(spec)
            specs.append(bn_spec(f"{prefix}.bn", out_c, spec.out_hw))
            specs.append(act_spec(f"{prefix}.relu6", out_c, spec.out_hw))
            return out_c, spec.out_hw

        stem_out = _make_divisible(self.stem_channels * self.width_mult)
        channels, hw = conv_block("stem", self.in_channels, stem_out, 3,
                                  self.stem_stride, 1, hw)

        block_id = 0
        for (expand, out_c, repeats), stage_stride in zip(self.stage_settings,
                                                          self.stride_plan):
            out_channels = _make_divisible(out_c * self.width_mult)
            for block_index in range(repeats):
                stride = stage_stride if block_index == 0 else 1
                prefix = f"block{block_id}"
                hidden = int(round(channels * expand))
                hw_in = hw
                c_in = channels
                if expand != 1:
                    _, hw_mid = conv_block(f"{prefix}.expand", c_in, hidden, 1, 1, 1, hw_in)
                else:
                    hidden, hw_mid = c_in, hw_in
                _, hw_dw = conv_block(f"{prefix}.dw", hidden, hidden, 3, stride,
                                      hidden, hw_mid)
                proj = conv_spec(f"{prefix}.project", hidden, out_channels, 1, 1, hw_dw)
                specs.append(proj)
                specs.append(bn_spec(f"{prefix}.project_bn", out_channels, proj.out_hw))
                if stride == 1 and c_in == out_channels:
                    specs.append(add_spec(f"{prefix}.residual", out_channels, proj.out_hw))
                channels, hw = out_channels, proj.out_hw
                block_id += 1

        channels, hw = conv_block("head", channels, self.feature_dim, 1, 1, 1, hw)
        specs.append(global_pool_spec("global_pool", channels, hw))
        return specs
