"""CLI for the scenario matrix: ``python -m repro.scenarios --seed 0``.

Runs every scenario (or ``--scenario NAME`` for one), prints each
scenario's check count and timing, and appends one trend record per
scenario to ``BENCH_scenarios.json`` (suppress with ``--no-bench``).
Exits non-zero on the first violated check, printing the failed scenario
and check — the seed reproduces the failure exactly.
"""

from __future__ import annotations

import argparse
import sys

from .runner import DEFAULT_BENCH_PATH, SCENARIOS, ScenarioFailure, run_matrix


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run the serving scenario matrix: seeded workloads + "
                    "chaos injection, asserting degraded-but-correct "
                    "behaviour.")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload/model seed (default 0); the whole "
                             "run is deterministic given the seed")
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        choices=sorted(SCENARIOS), metavar="NAME",
                        help="run only this scenario (repeatable); "
                             f"choices: {', '.join(sorted(SCENARIOS))}")
    parser.add_argument("--bench", default=str(DEFAULT_BENCH_PATH),
                        help="keyed bench file to append per-scenario "
                             "records to (default: %(default)s)")
    parser.add_argument("--no-bench", action="store_true",
                        help="do not write BENCH_scenarios.json")
    args = parser.parse_args(argv)
    try:
        records = run_matrix(seed=args.seed, names=args.scenarios,
                             bench_path=args.bench,
                             write_bench=not args.no_bench,
                             progress=print)
    except ScenarioFailure as failure:
        print(f"\nSCENARIO FAILURE (reproduce with --seed {args.seed}):",
              file=sys.stderr)
        print(f"  {failure}", file=sys.stderr)
        return 1
    total_checks = sum(record["num_checks"] for record in records)
    total_s = sum(record["elapsed_s"] for record in records)
    print(f"\n{len(records)} scenarios passed "
          f"({total_checks} checks, {total_s:.1f}s)"
          + ("" if args.no_bench else f"; records -> {args.bench}"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
