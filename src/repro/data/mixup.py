"""Mixup and CutMix feature-interpolation augmentation.

The paper employs Mixup and CutMix *exclusively* (one or the other, never
both on the same batch) with probability 0.4 during pretraining; the class
targets become soft mixtures of the two source labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..nn.functional import one_hot


def mixup_batch(images: np.ndarray, targets: np.ndarray, alpha: float,
                rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    """Mixup: convex combination of two images and their soft labels.

    Args:
        images: ``(N, C, H, W)`` batch.
        targets: ``(N, num_classes)`` soft (or one-hot) targets.
        alpha: Beta distribution concentration; ``lambda ~ Beta(alpha, alpha)``.

    Returns:
        mixed images and mixed targets.
    """
    lam = float(rng.beta(alpha, alpha)) if alpha > 0 else 1.0
    permutation = rng.permutation(len(images))
    mixed_images = lam * images + (1.0 - lam) * images[permutation]
    mixed_targets = lam * targets + (1.0 - lam) * targets[permutation]
    return mixed_images.astype(images.dtype), mixed_targets.astype(targets.dtype)


def _random_box(height: int, width: int, lam: float,
                rng: np.random.Generator) -> Tuple[int, int, int, int]:
    """Sample the CutMix rectangle for a mixing coefficient ``lam``."""
    cut_ratio = np.sqrt(1.0 - lam)
    cut_h, cut_w = int(height * cut_ratio), int(width * cut_ratio)
    cy, cx = rng.integers(height), rng.integers(width)
    y1 = int(np.clip(cy - cut_h // 2, 0, height))
    y2 = int(np.clip(cy + cut_h // 2, 0, height))
    x1 = int(np.clip(cx - cut_w // 2, 0, width))
    x2 = int(np.clip(cx + cut_w // 2, 0, width))
    return y1, y2, x1, x2


def cutmix_batch(images: np.ndarray, targets: np.ndarray, alpha: float,
                 rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    """CutMix: paste a rectangular patch from a permuted batch member.

    The label mixing coefficient is the exact area fraction of the pasted
    rectangle, as in the original CutMix formulation.
    """
    lam = float(rng.beta(alpha, alpha)) if alpha > 0 else 1.0
    permutation = rng.permutation(len(images))
    _, _, height, width = images.shape
    y1, y2, x1, x2 = _random_box(height, width, lam, rng)
    mixed = images.copy()
    mixed[:, :, y1:y2, x1:x2] = images[permutation][:, :, y1:y2, x1:x2]
    # Recompute lambda from the actual box area (clipping may shrink it).
    lam_adjusted = 1.0 - ((y2 - y1) * (x2 - x1) / (height * width))
    mixed_targets = lam_adjusted * targets + (1.0 - lam_adjusted) * targets[permutation]
    return mixed, mixed_targets.astype(targets.dtype)


@dataclass
class FeatureInterpolation:
    """Paper-style exclusive Mixup/CutMix application.

    With probability ``probability`` a batch is interpolated; the method is
    chosen uniformly between Mixup and CutMix (they are never combined).
    """

    probability: float = 0.4
    mixup_alpha: float = 0.2
    cutmix_alpha: float = 1.0
    num_classes: int = 100
    seed: int = 0

    def __post_init__(self):
        self._rng = np.random.default_rng(self.seed)

    def __call__(self, images: np.ndarray, labels: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Return (possibly mixed) images and soft targets."""
        targets = one_hot(labels, self.num_classes)
        if self._rng.random() >= self.probability:
            return images, targets
        if self._rng.random() < 0.5:
            return mixup_batch(images, targets, self.mixup_alpha, self._rng)
        return cutmix_batch(images, targets, self.cutmix_alpha, self._rng)
