"""Augmentation pipeline and Mixup / CutMix feature interpolation."""

import numpy as np
import pytest

from repro.data import (
    AugmentationPipeline,
    FeatureInterpolation,
    IdentityAugmentation,
    brightness_contrast,
    cutmix_batch,
    gaussian_blur,
    mixup_batch,
    random_crop,
    random_horizontal_flip,
    random_resized_crop,
)
from repro.nn.functional import one_hot


@pytest.fixture()
def batch(rng):
    return rng.uniform(0, 1, (8, 3, 16, 16)).astype(np.float32)


class TestAugmentations:
    def test_flip_preserves_shape_and_content_statistics(self, batch, rng):
        flipped = random_horizontal_flip(batch, rng, probability=1.0)
        assert flipped.shape == batch.shape
        np.testing.assert_allclose(flipped, batch[:, :, :, ::-1])

    def test_flip_probability_zero_is_identity(self, batch, rng):
        np.testing.assert_array_equal(random_horizontal_flip(batch, rng, 0.0), batch)

    def test_random_crop_shape(self, batch, rng):
        cropped = random_crop(batch, rng, padding=2)
        assert cropped.shape == batch.shape

    def test_random_crop_zero_padding_identity_offsets(self, batch, rng):
        cropped = random_crop(batch, rng, padding=0)
        np.testing.assert_array_equal(cropped, batch)

    def test_gaussian_blur_smooths(self, batch, rng):
        blurred = gaussian_blur(batch, rng, probability=1.0, sigma_range=(1.5, 1.5))
        assert blurred.shape == batch.shape
        # Blurring reduces high-frequency energy (variance of differences).
        def roughness(x):
            return np.abs(np.diff(x, axis=-1)).mean()
        assert roughness(blurred) < roughness(batch)

    def test_random_resized_crop_shape(self, batch, rng):
        out = random_resized_crop(batch, rng)
        assert out.shape == batch.shape

    def test_brightness_contrast_clipped(self, batch, rng):
        out = brightness_contrast(batch, rng, brightness=0.5, contrast=0.5)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_pipeline_output_dtype_and_shape(self, batch):
        pipeline = AugmentationPipeline(seed=0)
        out = pipeline(batch)
        assert out.shape == batch.shape
        assert out.dtype == np.float32

    def test_pipeline_is_stochastic(self, batch):
        pipeline = AugmentationPipeline(seed=0)
        assert not np.array_equal(pipeline(batch), pipeline(batch))

    def test_identity_augmentation(self, batch):
        np.testing.assert_array_equal(IdentityAugmentation()(batch), batch)


class TestMixup:
    def test_targets_remain_distributions(self, batch, rng):
        targets = one_hot(np.arange(8) % 4, 4)
        _, mixed_targets = mixup_batch(batch, targets, alpha=0.4, rng=rng)
        np.testing.assert_allclose(mixed_targets.sum(axis=1), np.ones(8), atol=1e-5)
        assert mixed_targets.min() >= 0.0

    def test_mixup_images_are_convex_combinations(self, batch, rng):
        targets = one_hot(np.arange(8) % 4, 4)
        mixed, _ = mixup_batch(batch, targets, alpha=1.0, rng=rng)
        assert mixed.min() >= batch.min() - 1e-6
        assert mixed.max() <= batch.max() + 1e-6

    def test_alpha_zero_is_identity(self, batch, rng):
        targets = one_hot(np.arange(8) % 4, 4)
        mixed, mixed_targets = mixup_batch(batch, targets, alpha=0.0, rng=rng)
        np.testing.assert_allclose(mixed, batch, atol=1e-6)
        np.testing.assert_allclose(mixed_targets, targets, atol=1e-6)


class TestCutMix:
    def test_targets_remain_distributions(self, batch, rng):
        targets = one_hot(np.arange(8) % 4, 4)
        _, mixed_targets = cutmix_batch(batch, targets, alpha=1.0, rng=rng)
        np.testing.assert_allclose(mixed_targets.sum(axis=1), np.ones(8), atol=1e-5)

    def test_pixels_come_from_the_two_sources(self, batch, rng):
        targets = one_hot(np.arange(8) % 4, 4)
        mixed, _ = cutmix_batch(batch, targets, alpha=1.0, rng=rng)
        # Every pixel of the mixed batch exists somewhere in the original batch.
        assert mixed.min() >= batch.min() - 1e-6
        assert mixed.max() <= batch.max() + 1e-6

    def test_label_weight_matches_patch_area(self, rng):
        images = np.zeros((4, 1, 10, 10), dtype=np.float32)
        targets = one_hot(np.arange(4), 4)
        _, mixed_targets = cutmix_batch(images, targets, alpha=1.0, rng=rng)
        # Mixing coefficients are area fractions, so they lie in [0, 1].
        assert mixed_targets.max() <= 1.0 + 1e-6


class TestFeatureInterpolation:
    def test_probability_zero_returns_one_hot(self, batch):
        interpolation = FeatureInterpolation(probability=0.0, num_classes=4, seed=0)
        images, targets = interpolation(batch, np.arange(8) % 4)
        np.testing.assert_array_equal(images, batch)
        np.testing.assert_allclose(targets, one_hot(np.arange(8) % 4, 4))

    def test_probability_one_always_interpolates(self, batch):
        interpolation = FeatureInterpolation(probability=1.0, num_classes=4, seed=0)
        soft_count = 0
        for _ in range(10):
            _, targets = interpolation(batch, np.arange(8) % 4)
            if not np.allclose(targets.max(axis=1), 1.0):
                soft_count += 1
        assert soft_count > 0

    def test_targets_always_valid_distributions(self, batch):
        interpolation = FeatureInterpolation(probability=0.7, num_classes=4, seed=3)
        for _ in range(10):
            _, targets = interpolation(batch, np.arange(8) % 4)
            np.testing.assert_allclose(targets.sum(axis=1), np.ones(8), atol=1e-5)
            assert targets.min() >= -1e-6
