"""O-FSCIL reproduction: online few-shot class-incremental learning for MCUs.

Top-level subpackages:

* :mod:`repro.nn` — NumPy tensor/autograd substrate (layers, losses, optim).
* :mod:`repro.models` — MobileNetV2 / ResNet backbones, FCR/FCC heads,
  Table I registry.
* :mod:`repro.data` — synthetic CIFAR100 stand-in, FSCIL splits, augmentation.
* :mod:`repro.core` — the paper's contribution: explicit memory, O-FSCIL
  model, pretraining, metalearning, fine-tuning, evaluation, baselines.
* :mod:`repro.quant` — TQT-style int8 quantization and prototype precision.
* :mod:`repro.runtime` — batched inference runtime (compiled op plans with
  fused kernels; the deploy-time fast path used by all evaluation).
* :mod:`repro.hw` — GAP9 MCU simulator (memory, cycles, power, profiler).
* :mod:`repro.report` — experiment records and table formatting.
"""

__version__ = "1.1.0"

__all__ = ["nn", "models", "data", "core", "quant", "runtime", "hw", "report",
           "__version__"]
