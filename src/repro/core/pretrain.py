"""Server-side pretraining of the backbone + FCR (Section IV-B).

The backbone, FCR and a temporary fully connected classifier (FCC) are
jointly trained on the base session with:

* the classification cross-entropy loss,
* the feature-orthogonality regularizer (Eq. 1) weighted by ``lambda_ortho``,
* standard augmentation (crop / flip / blur) and exclusive Mixup/CutMix
  feature interpolation with probability 0.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import nn
from ..data.augment import AugmentationPipeline, IdentityAugmentation
from ..data.dataset import ArrayDataset, DataLoader
from ..data.mixup import FeatureInterpolation
from ..models.heads import FullyConnectedClassifier, FullyConnectedReductor
from ..nn import losses
from ..nn.calibration import recalibrate_batchnorm
from ..nn.optim import SGD, CosineAnnealingLR
from ..nn.tensor import Tensor


@dataclass
class PretrainConfig:
    """Hyper-parameters of the pretraining stage."""

    epochs: int = 5
    batch_size: int = 64
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    ortho_weight: float = 0.1
    ortho_mode: str = "covariance"
    label_smoothing: float = 0.0
    use_augmentation: bool = True
    use_feature_interpolation: bool = True
    #: probability of applying Mixup/CutMix to a batch.  The paper uses 0.4
    #: on full CIFAR100; the smaller synthetic base sessions of the laptop
    #: profile benefit from a slightly gentler setting.
    interpolation_probability: float = 0.25
    mixup_alpha: float = 0.2
    cutmix_alpha: float = 1.0
    crop_padding: int = 2
    grad_clip: float = 5.0
    cosine_schedule: bool = True
    seed: int = 0


@dataclass
class PretrainResult:
    """Training history and final head returned by :func:`pretrain`."""

    history: List[Dict[str, float]] = field(default_factory=list)
    classifier: Optional[FullyConnectedClassifier] = None

    @property
    def final_loss(self) -> float:
        return self.history[-1]["loss"] if self.history else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.history[-1]["accuracy"] if self.history else float("nan")


def pretrain(backbone: nn.Module, fcr: FullyConnectedReductor,
             dataset: ArrayDataset, num_classes: int,
             config: Optional[PretrainConfig] = None,
             classifier: Optional[FullyConnectedClassifier] = None) -> PretrainResult:
    """Jointly train backbone, FCR and FCC on the base session.

    Args:
        backbone: the feature extractor (trained in place).
        fcr: the fully connected reductor (trained in place).
        dataset: labelled base-session data; labels must lie in
            ``[0, num_classes)``.
        num_classes: number of base classes ``|C0|``.
        config: pretraining hyper-parameters.
        classifier: optionally reuse an existing FCC (quantization-aware
            re-training passes one in); a fresh one is created otherwise.

    Returns:
        :class:`PretrainResult` with the per-epoch history and the FCC.
    """
    config = config or PretrainConfig()

    if classifier is None:
        classifier = FullyConnectedClassifier(fcr.out_features, num_classes,
                                              seed=config.seed + 11)
    augment = AugmentationPipeline(crop_padding=config.crop_padding,
                                   seed=config.seed + 3) \
        if config.use_augmentation else IdentityAugmentation()
    interpolate = FeatureInterpolation(
        probability=config.interpolation_probability if config.use_feature_interpolation else 0.0,
        mixup_alpha=config.mixup_alpha, cutmix_alpha=config.cutmix_alpha,
        num_classes=num_classes, seed=config.seed + 5)

    parameters = backbone.parameters() + fcr.parameters() + classifier.parameters()
    optimizer = SGD(parameters, lr=config.learning_rate, momentum=config.momentum,
                    weight_decay=config.weight_decay, nesterov=True)
    scheduler = CosineAnnealingLR(optimizer, t_max=config.epochs) \
        if config.cosine_schedule else None

    loader = DataLoader(dataset, batch_size=config.batch_size, shuffle=True,
                        seed=config.seed + 7)
    backbone.train()
    fcr.train()
    classifier.train()

    result = PretrainResult(classifier=classifier)
    for epoch in range(config.epochs):
        epoch_loss, epoch_correct, epoch_count = 0.0, 0, 0
        for images, labels in loader:
            images = augment(images)
            mixed_images, soft_targets = interpolate(images, labels)

            theta_a = backbone(Tensor(mixed_images))
            theta_p = fcr(theta_a)
            logits = classifier(theta_p)
            loss = losses.pretraining_loss(
                logits, soft_targets, theta_p,
                ortho_weight=config.ortho_weight, ortho_mode=config.ortho_mode,
                label_smoothing=config.label_smoothing)

            backbone.zero_grad()
            fcr.zero_grad()
            classifier.zero_grad()
            loss.backward()
            if config.grad_clip:
                nn.optim.clip_grad_norm(parameters, config.grad_clip)
            optimizer.step()

            predictions = np.argmax(logits.data, axis=1)
            epoch_correct += int((predictions == labels).sum())
            epoch_count += len(labels)
            epoch_loss += float(loss.data) * len(labels)

        if scheduler is not None:
            scheduler.step()
        result.history.append({
            "epoch": epoch,
            "loss": epoch_loss / max(epoch_count, 1),
            "accuracy": epoch_correct / max(epoch_count, 1),
            "lr": optimizer.lr,
        })

    # Short schedules leave the BatchNorm running statistics miscalibrated;
    # replay the (un-augmented) training images to fix them before the model
    # is used in inference mode.
    recalibrate_batchnorm(backbone, dataset.images, batch_size=config.batch_size)
    backbone.eval()
    fcr.eval()
    classifier.eval()
    return result


def evaluate_classifier(backbone: nn.Module, fcr: FullyConnectedReductor,
                        classifier: FullyConnectedClassifier,
                        dataset: ArrayDataset, batch_size: int = 128) -> float:
    """Top-1 accuracy of the FCC path (used to monitor pretraining)."""
    backbone.eval()
    fcr.eval()
    classifier.eval()
    correct, total = 0, 0
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    with nn.no_grad():
        for images, labels in loader:
            logits = classifier(fcr(backbone(Tensor(images))))
            predictions = np.argmax(logits.data, axis=1)
            correct += int((predictions == labels).sum())
            total += len(labels)
    return correct / max(total, 1)
