"""Multiprocessing worker pool executing micro-batches on model replicas.

:class:`ShardedEngine` owns N worker processes, each holding a model replica
restored from a picklable :class:`~repro.serve.snapshot.ModelSnapshot` (its
own compiled plans, its own buffer caches).  Work items are pushed onto
per-worker request queues — round-robin by default — and a collector thread
resolves the shared result queue into per-item futures, so callers can
overlap requests across every shard.

Workers default to the ``spawn`` start method: it exercises the snapshot's
picklability end-to-end (``fork`` would silently inherit live state) and
sidesteps fork-after-BLAS hazards.  BLAS threading inside each worker is
pinned to one thread by default so that process-level sharding, not library
threading, owns the parallelism — the saturation benchmark compares worker
counts under identical per-worker settings.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import threading
import time
from concurrent.futures import Future, InvalidStateError
from contextlib import contextmanager
from typing import List, Optional

import numpy as np

from .snapshot import ModelSnapshot, PrototypeState
from .worker import worker_main

DEFAULT_NUM_WORKERS = 2
DEFAULT_TIMEOUT = 120.0
DEFAULT_START_METHOD = "spawn"

#: Environment knobs that cap BLAS/OpenMP threading inside worker processes.
_BLAS_ENV_VARS = ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
                  "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS",
                  "VECLIB_MAXIMUM_THREADS")


class RemoteWorkerError(RuntimeError):
    """An exception raised inside a worker process, re-raised at the caller."""


@contextmanager
def _blas_threads_env(threads: Optional[int]):
    """Temporarily pin BLAS thread env vars so started children inherit them."""
    if threads is None:
        yield
        return
    saved = {name: os.environ.get(name) for name in _BLAS_ENV_VARS}
    os.environ.update({name: str(threads) for name in _BLAS_ENV_VARS})
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


class ShardedEngine:
    """A pool of worker processes serving replicas of one model snapshot."""

    def __init__(self, snapshot: ModelSnapshot,
                 num_workers: int = DEFAULT_NUM_WORKERS,
                 start_method: str = DEFAULT_START_METHOD,
                 blas_threads_per_worker: Optional[int] = 1,
                 startup_timeout: float = DEFAULT_TIMEOUT):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.snapshot = snapshot
        self.micro_batch = snapshot.micro_batch
        context = mp.get_context(start_method)
        self._result_queue = context.Queue()
        self._request_queues = []
        self._processes = []
        self._pending: dict = {}
        self._lock = threading.Lock()
        self._tickets = itertools.count()
        self._round_robin = itertools.count()
        self._closed = False
        with _blas_threads_env(blas_threads_per_worker):
            for worker_id in range(num_workers):
                queue = context.Queue()
                process = context.Process(
                    target=worker_main,
                    args=(worker_id, snapshot, queue, self._result_queue),
                    daemon=True, name=f"repro-serve-worker-{worker_id}")
                process.start()
                self._request_queues.append(queue)
                self._processes.append(process)
        self._collector = threading.Thread(target=self._collect,
                                           name="repro-serve-collector",
                                           daemon=True)
        self._collector.start()
        # Block until every worker finished importing + restoring its replica
        # (spawn pays the interpreter startup here, not on the first request).
        self.broadcast("ping", timeout=startup_timeout)

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self._processes)

    def _collect(self) -> None:
        while True:
            item = self._result_queue.get()
            if item[0] is None:            # close() sentinel
                break
            ticket, worker_id, ok, payload = item
            with self._lock:
                future = self._pending.pop(ticket, None)
            if future is None:             # e.g. the shutdown ack
                continue
            # The collector must survive anything a caller did to the future
            # (a cancelled/raced future must not kill the loop and hang every
            # later request on the engine).
            try:
                if ok:
                    future.set_result(payload)
                else:
                    future.set_exception(
                        RemoteWorkerError(f"worker {worker_id}: {payload}"))
            except InvalidStateError:
                pass

    # ------------------------------------------------------------------
    def submit(self, kind: str, payload=None,
               worker: Optional[int] = None) -> Future:
        """Enqueue one work item; returns a future for its result."""
        if self._closed:
            raise RuntimeError("engine is closed")
        future: Future = Future()
        # Mark the future running immediately: cancel() then always returns
        # False, so the collector's set_result cannot race a cancellation.
        future.set_running_or_notify_cancel()
        with self._lock:
            ticket = next(self._tickets)
            self._pending[ticket] = future
        index = worker if worker is not None \
            else next(self._round_robin) % self.num_workers
        self._request_queues[index].put((kind, ticket, payload))
        return future

    def scatter(self, kind: str, images: np.ndarray,
                timeout: float = DEFAULT_TIMEOUT) -> np.ndarray:
        """Split ``images`` into micro-batches, round-robin them over the
        shards, and reassemble the results in submission order.

        The chunking replicates :meth:`InferenceEngine.run` exactly (same
        ``micro_batch`` boundaries), so per-chunk results are bit-identical
        to the single-process engine's.
        """
        images = np.asarray(images, dtype=np.float32)
        if images.ndim == 3:
            images = images[None]
        if images.shape[0] == 0:
            raise ValueError("cannot scatter an empty batch")
        futures = [self.submit(kind, np.ascontiguousarray(
                       images[start:start + self.micro_batch]))
                   for start in range(0, images.shape[0], self.micro_batch)]
        outputs = [future.result(timeout=timeout) for future in futures]
        return outputs[0] if len(outputs) == 1 else np.concatenate(outputs)

    def broadcast(self, kind: str, payload=None,
                  timeout: float = DEFAULT_TIMEOUT) -> List:
        """Send one work item to *every* worker and wait for all replies."""
        futures = [self.submit(kind, payload, worker=index)
                   for index in range(self.num_workers)]
        return [future.result(timeout=timeout) for future in futures]

    def set_prototypes(self, state: PrototypeState,
                       timeout: float = DEFAULT_TIMEOUT) -> List[int]:
        """Broadcast a prototype state; returns the acked version per worker.

        Request queues are FIFO per worker, so once this returns every
        previously enqueued item has executed and every later item sees the
        new prototypes.
        """
        return self.broadcast("set_prototypes", state, timeout=timeout)

    def stats(self, timeout: float = DEFAULT_TIMEOUT) -> List[dict]:
        """Per-worker replica statistics, degraded per shard on failure.

        A worker that errors (``RemoteWorkerError``) or never answers (a
        dead or wedged process runs into the deadline) must not abort the
        whole stats collection — operators need the surviving shards'
        counters most exactly when one shard is down.  The failed shard is
        reported as a record carrying ``error`` (and ``alive`` from the
        process handle) instead of its counters.  ``timeout`` is a *shared*
        deadline across all shards, not per shard, so a pool with several
        wedged workers still answers within one budget; shards whose
        process is already gone are flagged immediately, without enqueueing
        work items no consumer will ever pop.

        Degrading per shard matters beyond the obvious dead-process case: a
        worker killed hard (OOM, SIGKILL) can die *holding the shared
        result queue's write lock*, which wedges every other worker's
        replies — the survivors are then alive and serving but cannot
        answer, and only a deadline-bounded, per-shard collection gets the
        operator a report at all.
        """
        deadline = time.monotonic() + timeout
        records: List[Optional[dict]] = [None] * self.num_workers
        futures = {}
        for index in range(self.num_workers):
            if not self._processes[index].is_alive():
                records[index] = {"worker_id": index,
                                  "error": "worker process is not alive",
                                  "alive": False}
            else:
                futures[index] = self.submit("stats", None, worker=index)
        for index, future in futures.items():
            try:
                remaining = max(0.0, deadline - time.monotonic())
                records[index] = future.result(timeout=remaining)
            except Exception as exc:  # noqa: BLE001 - degrade per shard
                records[index] = {
                    "worker_id": index,
                    "error": f"{type(exc).__name__}: {exc}",
                    "alive": self._processes[index].is_alive(),
                }
                # A future that will never resolve (dead worker) must not
                # linger in the pending table until close().
                with self._lock:
                    self._pending = {ticket: pending
                                     for ticket, pending in
                                     self._pending.items()
                                     if pending is not future}
        return records

    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Shut down workers and the collector; idempotent."""
        if self._closed:
            return
        self._closed = True
        for queue in self._request_queues:
            try:
                queue.put(("shutdown", -1, None))
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._result_queue.put((None, None, True, None))
        self._collector.join(timeout=5.0)
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(RuntimeError("engine closed"))
        for queue in (*self._request_queues, self._result_queue):
            queue.close()
            queue.cancel_join_thread()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close(timeout=1.0)
        except Exception:
            pass
