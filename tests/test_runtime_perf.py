"""Perf-regression harness: batched runtime vs eager per-sample evaluation.

Benchmarks nearest-prototype classification on the MobileNetV2-style tiny
backbone through both execution paths, writes the measurements to
``BENCH_runtime.json`` at the repository root, and fails if the batched
runtime drops below the required speedup over the eager per-sample path —
the regression guard for the ISSUE 1 acceptance criterion.

The numbers on a current laptop-class CPU are 7.5-10x; the 4.5x threshold
(raised from 3x when the plan optimizer landed — arena-planned execution,
the depthwise fast path and thread-pool chunking bought measurable headroom)
still leaves room for noisy CI machines while catching a real regression
(e.g. losing conv+bn fusion, the im2col buffer cache, or the memory plan).

The same harness enforces the arena's memory contract — the planned
``peak_bytes`` must undercut per-step allocation by >= 40% — and, since the
``int8_vs_float32`` history established a ~0.6x trend, a floor on the int8
throughput ratio.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import OFSCIL, OFSCILConfig
from repro.report import append_bench_record
from repro.runtime import compare_with_eager

BACKBONE = "mobilenetv2_x4_tiny"
REQUIRED_SPEEDUP = 4.5
REQUIRED_PEAK_REDUCTION = 0.40
BATCHED_SAMPLES = 192
PER_SAMPLE_PROBE = 16
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_runtime.json"


@pytest.fixture(scope="module")
def bench_model():
    model = OFSCIL.from_registry(BACKBONE, OFSCILConfig(backbone=BACKBONE),
                                 seed=0)
    model.freeze_feature_extractor()
    rng = np.random.default_rng(0)
    shots = rng.standard_normal((40, 3, 16, 16)).astype(np.float32)
    for class_id in range(8):
        model.learn_class(shots[class_id * 5:(class_id + 1) * 5], class_id)
    return model


def test_batched_runtime_meets_speedup_floor(bench_model):
    rng = np.random.default_rng(1)
    images = rng.standard_normal((BATCHED_SAMPLES, 3, 16, 16)).astype(np.float32)
    predictor = bench_model.runtime_predictor()

    # Warm both paths (compile the plan, fault in the buffer cache / BLAS).
    predictor.predict(images[:32])
    bench_model.predict(images[:1], use_runtime=False)

    start = time.perf_counter()
    predictor.predict(images)
    batched_seconds = time.perf_counter() - start
    batched_rate = BATCHED_SAMPLES / batched_seconds

    start = time.perf_counter()
    for sample in images[:PER_SAMPLE_PROBE]:
        bench_model.predict(sample[None], use_runtime=False)
    eager_seconds = time.perf_counter() - start
    eager_rate = PER_SAMPLE_PROBE / eager_seconds

    speedup = batched_rate / eager_rate
    parity = compare_with_eager(bench_model, images[:32])

    engine = predictor.backbone_engine
    memory_plan = engine.memory_plan
    peak_bytes = memory_plan.peak_bytes(engine.micro_batch)
    unplanned_bytes = memory_plan.unplanned_bytes(engine.micro_batch)
    peak_reduction = 1.0 - peak_bytes / unplanned_bytes

    record = {
        "backbone": BACKBONE,
        "batched_samples": BATCHED_SAMPLES,
        "per_sample_probe": PER_SAMPLE_PROBE,
        "batched_samples_per_s": round(batched_rate, 1),
        "eager_per_sample_samples_per_s": round(eager_rate, 1),
        "speedup": round(speedup, 2),
        "required_speedup": REQUIRED_SPEEDUP,
        "parity_max_feature_error": parity.max_feature_error,
        "parity_max_similarity_error": parity.max_similarity_error,
        "parity_prediction_agreement": parity.prediction_agreement,
        "plan_steps": len(engine.plan),
        "fused_steps": engine.plan.num_fused(),
        "arena_slots": memory_plan.num_slots,
        "peak_bytes_arena": peak_bytes,
        "peak_bytes_unplanned": unplanned_bytes,
        "peak_reduction": round(peak_reduction, 3),
        "num_threads": engine.num_threads,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    append_bench_record(BENCH_PATH, record)

    assert parity.ok, f"parity broken before perf comparison: {parity.summary()}"
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched runtime is only {speedup:.2f}x faster than the eager "
        f"per-sample path (required >= {REQUIRED_SPEEDUP}x); see {BENCH_PATH}")
    assert peak_reduction >= REQUIRED_PEAK_REDUCTION, (
        f"arena memory plan only cuts peak intermediate memory by "
        f"{peak_reduction:.1%} (required >= {REQUIRED_PEAK_REDUCTION:.0%}); "
        f"see {BENCH_PATH}")


def test_bench_record_is_written_and_valid(bench_model):
    # Runs after the benchmark in file order; guards the artefact contract
    # that downstream tooling (README workflow, CI) relies on.  The history
    # interleaves two record kinds — the batched-vs-eager speedup records
    # and the slow-marked int8-vs-float32 section — so the speedup contract
    # is asserted on the most recent record of that kind, not on whatever
    # happens to sit in the ``latest`` slot.
    data = json.loads(BENCH_PATH.read_text())
    speedup_records = [entry for entry in data["history"]
                       if "speedup" in entry]
    assert speedup_records, "no batched-vs-eager record in bench history"
    record = speedup_records[-1]
    assert record["backbone"] == BACKBONE
    assert record["speedup"] >= REQUIRED_SPEEDUP
    assert record["batched_samples_per_s"] > 0
    # Runs append to the history instead of overwriting it, so the bench
    # trajectory across commits stays visible.
    assert data["history"], "bench history must not be empty"
    assert data["latest"] == data["history"][-1]


#: (arch, mode) pairs whose compile+optimize wall time is recorded in the
#: bench history — both quantizable families, both numeric modes.
COMPILE_BENCH_CASES = (
    ("mobilenetv2_x4_tiny", "float32"),
    ("mobilenetv2_x4_tiny", "int8"),
    ("resnet20_tiny", "float32"),
    ("resnet20_tiny", "int8"),
)


@pytest.mark.parametrize("backbone,mode", COMPILE_BENCH_CASES)
def test_compile_and_optimize_wall_time_recorded(backbone, mode):
    """Record compiler + graph-pipeline wall time per (arch, mode).

    Also times a second predictor build through a shared
    :class:`~repro.runtime.plan_cache.PlanCache` — the cached path must hit
    and is recorded alongside, documenting what the cache saves.
    """
    import sys
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from int8_fixtures import build_quantized_model
    from repro.runtime import compile_backbone, optimize_plan
    from repro.runtime.plan_cache import PlanCache
    from repro.runtime.predictor import BatchedPredictor

    if mode == "int8":
        model, _report = build_quantized_model(backbone)
    else:
        model = OFSCIL.from_registry(backbone,
                                     OFSCILConfig(backbone=backbone), seed=0)
    start = time.perf_counter()
    raw = compile_backbone(model.backbone, mode=mode)
    compile_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    optimized = optimize_plan(raw)
    optimize_ms = (time.perf_counter() - start) * 1e3
    assert optimized.optimized
    assert len(optimized.steps) <= len(raw.steps)

    cache = PlanCache()
    first = BatchedPredictor(model, mode=mode, plan_cache=cache)
    assert first.backbone_engine is not None
    start = time.perf_counter()
    second = BatchedPredictor(model, mode=mode, plan_cache=cache)
    assert second.backbone_engine.plan is first.backbone_engine.plan
    cached_ms = (time.perf_counter() - start) * 1e3
    assert cache.hits >= 1

    record = {
        "kind": "compile_wall_time",
        "backbone": backbone,
        "mode": mode,
        "compile_ms": round(compile_ms, 2),
        "optimize_ms": round(optimize_ms, 2),
        "cached_rebuild_ms": round(cached_ms, 2),
        "raw_steps": len(raw),
        "optimized_steps": len(optimized),
        "rule_applications": sum(optimized.pass_stats.values()),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    append_bench_record(BENCH_PATH, record)


#: Floor on int8 throughput relative to float32, derived from the recorded
#: ``int8_vs_float32`` history: the trend sits at 0.63-0.70x (NumPy has no
#: native int8 GEMM; the exact integer accumulation runs through float BLAS).
#: 0.45 leaves noise headroom while catching a real integer-path regression,
#: e.g. losing the depthwise fast path or an accidental float64 promotion.
INT8_REQUIRED_RATIO = 0.45

#: Per-family int8 bench configuration, both families floored.  The ResNet
#: trunk's recorded trend sits around 0.77x float32 (BENCH_runtime.json
#: history) — comfortably above MobileNetV2's ~0.6x because plain convs
#: amortise the quantize/requantize overhead better than depthwise stacks —
#: so the shared 0.45 floor catches the same class of integer-path
#: regressions with the same noise headroom.
INT8_BENCH_BACKBONES = (
    ("mobilenetv2_x4_tiny", INT8_REQUIRED_RATIO),
    ("resnet20_tiny", INT8_REQUIRED_RATIO),
)


@pytest.mark.slow
@pytest.mark.parametrize("backbone,required_ratio", INT8_BENCH_BACKBONES)
def test_int8_vs_float32_throughput_recorded(backbone, required_ratio):
    """Int8-vs-float32 benchmark section per backbone family.

    NumPy has no native int8 GEMM, so the integer path runs its exact
    accumulation through float32/float64 BLAS — the measured ratio documents
    what the int8 mode costs (or buys) on the host; each family's floor was
    derived from its own recorded history (MobileNetV2 ~0.6x, ResNet ~0.77x)
    and ``INT8_REQUIRED_RATIO`` guards both.  The records are appended to
    ``BENCH_runtime.json`` next to the batched-vs-eager section.
    """
    import sys
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from int8_fixtures import build_quantized_model

    model, _report = build_quantized_model(backbone)
    int8_predictor = model.runtime_predictor()
    assert int8_predictor.mode == "int8"
    assert int8_predictor.backbone_engine.plan.num_integer() > 0
    # Float reference: an identical-architecture model without quantization
    # hooks, so both paths run compiled kernels (the quantized model's own
    # float mode would fall back to the eager opaque step — an unfair and
    # uninformative baseline).
    float_model = OFSCIL.from_registry(backbone, OFSCILConfig(backbone=backbone),
                                       seed=0)
    float_predictor = float_model.runtime_predictor()
    samples = 192
    rng = np.random.default_rng(2)
    images = rng.standard_normal((samples, 3, 16, 16)).astype(np.float32)

    def throughput(predictor) -> float:
        predictor.embed(images[:32])                # warm compile + caches
        start = time.perf_counter()
        predictor.embed(images)
        return samples / (time.perf_counter() - start)

    float_rate = throughput(float_predictor)
    int8_rate = throughput(int8_predictor)
    ratio = int8_rate / float_rate
    record = {
        "kind": "int8_vs_float32",
        "backbone": backbone,
        "samples": samples,
        "int8_samples_per_s": round(int8_rate, 1),
        "float32_samples_per_s": round(float_rate, 1),
        "int8_over_float32_ratio": round(ratio, 3),
        "required_ratio": required_ratio,
        "integer_steps": int8_predictor.backbone_engine.plan.num_integer(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    append_bench_record(BENCH_PATH, record)
    assert int8_rate > 0 and float_rate > 0
    if required_ratio is not None:
        assert ratio >= required_ratio, (
            f"int8 runtime fell to {ratio:.2f}x of float32 throughput "
            f"(required >= {required_ratio}x); see {BENCH_PATH}")
