"""Compile module trees into flat inference plans.

The compiler walks the structure of the model (no tracing pass is needed —
the architectures used by the reproduction are static) and emits one
:class:`~repro.runtime.plan.Step` per fused operation:

* ``Conv2d -> BatchNorm2d -> ReLU/ReLU6`` chains collapse into a single
  ``conv`` step whose weights have the batch-norm scale folded in and whose
  activation is applied in place on the GEMM output;
* ``Linear`` layers become ``linear`` steps that read their weights from the
  live module at execution time, so in-place fine-tuning needs no recompile;
* residual additions become explicit ``add`` steps over named registers;
* any module that carries forward hooks anywhere in its subtree (activation
  fake-quantisation attaches hooks) — or whose type the compiler does not
  know — is kept as an ``opaque`` step that calls the module eagerly, so
  compilation never changes semantics, only speed.

Known model classes (:class:`MobileNetV2Backbone`, :class:`ResNet12Backbone`,
:class:`ResNet20Backbone` and the composite blocks they are built from) get
dedicated lowering rules; everything else falls back to generic traversal.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

import numpy as np

from ..models.heads import FullyConnectedReductor
from ..models.mobilenetv2 import ConvBNReLU, InvertedResidual, MobileNetV2Backbone
from ..models.resnet import (
    BasicBlock,
    ResNet12Backbone,
    ResNet12Block,
    ResNet20Backbone,
)
from ..nn.modules import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    ReLU6,
    Sequential,
)
from .kernels import (
    INT8_QMAX,
    INT8_QMIN,
    INT32_ACC_LIMIT,
    conv_accumulator_bound,
    quantize_weight_per_channel,
)
from .plan import InferencePlan, Step

#: Compilation modes understood by :func:`compile_module`.
MODES = ("float32", "int8")


class Int8CompilationError(RuntimeError):
    """A layer cannot be lowered to int8 without breaking int32 accumulation."""


def has_hooks(module: Module) -> bool:
    """True when any module in the subtree carries forward hooks."""
    return any(sub._forward_hooks for sub in module.modules())


def fold_conv_bn(conv: Conv2d, bn: Optional[BatchNorm2d]
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Fold an eval-mode batch norm into the convolution weight and bias.

    ``y = gamma * (conv(x) - mean) / sqrt(var + eps) + beta`` becomes a plain
    convolution with per-output-channel rescaled weights and a bias.
    """
    weight = conv.weight.data.astype(np.float32)
    bias = conv.bias.data.astype(np.float32) if conv.bias is not None \
        else np.zeros(weight.shape[0], dtype=np.float32)
    if bn is None:
        return weight, bias
    scale, shift = bn_scale_shift(bn)
    folded_weight = weight * scale[:, None, None, None]
    folded_bias = bias * scale + shift
    return folded_weight.astype(np.float32), folded_bias.astype(np.float32)


def bn_scale_shift(bn) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce an eval-mode BatchNorm(1d/2d) to per-channel scale and shift."""
    var = np.asarray(bn.running_var, dtype=np.float32)
    mean = np.asarray(bn.running_mean, dtype=np.float32)
    inv_std = 1.0 / np.sqrt(var + bn.eps)
    if bn.affine:
        scale = bn.weight.data.astype(np.float32) * inv_std
        shift = bn.bias.data.astype(np.float32) - mean * scale
    else:
        scale = inv_std.astype(np.float32)
        shift = (-mean * inv_std).astype(np.float32)
    return scale, shift


class PlanBuilder:
    """Accumulates steps while threading register names through the graph."""

    def __init__(self, name: str):
        self.name = name
        self.steps = []
        self._counter = itertools.count()

    def register(self, hint: str) -> str:
        return f"%{next(self._counter)}_{hint}"

    def emit(self, op: str, name: str, inputs: Tuple[str, ...], *,
             arrays=None, attrs=None, module=None, hint: str = "t") -> str:
        output = self.register(hint)
        self.steps.append(Step(op=op, name=name, inputs=inputs, output=output,
                               arrays=arrays or {}, attrs=attrs or {},
                               module=module))
        return output

    def build(self, input_register: str, output_register: str) -> InferencePlan:
        return InferencePlan(steps=self.steps, input_register=input_register,
                             output_register=output_register, name=self.name)


def compile_module(module: Module, name: str = "", mode: str = "float32",
                   optimize: bool = False) -> InferencePlan:
    """Compile any supported module into a flat inference plan.

    ``mode="float32"`` is the classic lowering (hooked subtrees fall back to
    opaque eager steps).  ``mode="int8"`` lowers conv/linear layers of a
    quantized model to integer kernels, turning activation fake-quant hooks
    into first-class ``quantize``/``requantize`` plan ops (see
    :func:`_lower_int8`).  ``optimize=True`` additionally runs the
    post-compile passes of :mod:`repro.runtime.optimizer` (the
    :class:`~repro.runtime.engine.InferenceEngine` applies them by default
    anyway; pass-by-pass tooling compiles raw plans).
    """
    if mode not in MODES:
        raise ValueError(f"unknown compile mode {mode!r}; expected one of {MODES}")
    if mode == "int8":
        plan = _compile_int8(module, name or module.__class__.__name__)
    else:
        builder = PlanBuilder(name or module.__class__.__name__)
        out = _lower(builder, module, name or module.__class__.__name__, "x")
        plan = builder.build("x", out)
    return _maybe_optimize(plan, optimize)


def _maybe_optimize(plan: InferencePlan, optimize: bool) -> InferencePlan:
    if not optimize:
        return plan
    from .optimizer import optimize_plan
    return optimize_plan(plan)


def compile_backbone(backbone: Module, mode: str = "float32",
                     optimize: bool = False) -> InferencePlan:
    """Compile a feature-extractor backbone (images -> ``theta_a``)."""
    return compile_module(backbone, backbone.__class__.__name__, mode=mode,
                          optimize=optimize)


def compile_ofscil(model, mode: str = "float32",
                   optimize: bool = False) -> InferencePlan:
    """Compile the full deploy-time feature path of an O-FSCIL model.

    The plan maps images to the prototypical feature ``theta_p`` (backbone
    followed by the FCR); prototype comparison lives in the predictor where
    the prototype matrix can be cached across calls.
    """
    if mode == "int8":
        builder = _Int8Builder(f"OFSCIL[{model.config.backbone}]")
        x = _emit_input_quantize(builder, model.backbone, "x")
        features = _lower_int8(builder, model.backbone, "backbone", x)
        out = _lower_int8(builder, model.fcr, "fcr", features)
        out = _ensure_float(builder, out, "dequant_out")
        return _maybe_optimize(builder.build("x", out), optimize)
    builder = PlanBuilder(f"OFSCIL[{model.config.backbone}]")
    features = _lower(builder, model.backbone, "backbone", "x")
    out = _lower(builder, model.fcr, "fcr", features)
    return _maybe_optimize(builder.build("x", out), optimize)


# ---------------------------------------------------------------------------
# Lowering rules
# ---------------------------------------------------------------------------
def _lower(builder: PlanBuilder, module: Module, name: str, x: str) -> str:
    """Emit steps computing ``module(x)`` and return the output register."""
    if has_hooks(module):
        # Hooked modules (activation fake-quantisation, probes, ...) must run
        # through the eager path to keep their side effects and rewrites.
        return builder.emit("opaque", name, (x,), module=module, hint="opq")

    if isinstance(module, ConvBNReLU):
        return _lower_conv_bn_act(builder, name, x, module.conv, module.bn,
                                  "relu6")
    if isinstance(module, InvertedResidual):
        return _lower_inverted_residual(builder, module, name, x)
    if isinstance(module, ResNet12Block):
        return _lower_resnet12_block(builder, module, name, x)
    if isinstance(module, BasicBlock):
        return _lower_basic_block(builder, module, name, x)
    if isinstance(module, MobileNetV2Backbone):
        out = _lower(builder, module.stem, f"{name}.stem", x)
        out = _lower(builder, module.blocks, f"{name}.blocks", out)
        out = _lower(builder, module.head, f"{name}.head", out)
        return builder.emit("global_pool", f"{name}.pool", (out,), hint="gap")
    if isinstance(module, ResNet12Backbone):
        out = _lower(builder, module.blocks, f"{name}.blocks", x)
        return builder.emit("global_pool", f"{name}.pool", (out,), hint="gap")
    if isinstance(module, ResNet20Backbone):
        out = _lower_conv_bn_act(builder, f"{name}.stem", x, module.stem,
                                 module.stem_bn, "relu")
        out = _lower(builder, module.blocks, f"{name}.blocks", out)
        return builder.emit("global_pool", f"{name}.pool", (out,), hint="gap")
    if isinstance(module, FullyConnectedReductor):
        return _lower(builder, module.linear, f"{name}.linear", x)
    if isinstance(module, Sequential):
        out = x
        for index in range(len(module)):
            out = _lower(builder, module[index], f"{name}.{index}", out)
        return out
    if isinstance(module, Conv2d):
        weight, bias = fold_conv_bn(module, None)
        return builder.emit(
            "conv", name, (x,), arrays={"weight": weight, "bias": bias},
            attrs={"stride": module.stride, "padding": module.padding,
                   "groups": module.groups, "act": None}, hint="conv")
    if isinstance(module, (BatchNorm2d, BatchNorm1d)):
        scale, shift = bn_scale_shift(module)
        return builder.emit("bn", name, (x,),
                            arrays={"scale": scale, "shift": shift},
                            attrs={"act": None}, hint="bn")
    if isinstance(module, Linear):
        return builder.emit("linear", name, (x,), module=module,
                            attrs={"act": None}, hint="fc")
    if isinstance(module, ReLU):
        return builder.emit("act", name, (x,), attrs={"act": "relu"},
                            hint="relu")
    if isinstance(module, ReLU6):
        return builder.emit("act", name, (x,), attrs={"act": "relu6"},
                            hint="relu6")
    if isinstance(module, GlobalAvgPool2d):
        return builder.emit("global_pool", name, (x,), hint="gap")
    if isinstance(module, MaxPool2d):
        return builder.emit("max_pool", name, (x,),
                            attrs={"kernel_size": module.kernel_size,
                                   "stride": module.stride}, hint="maxp")
    if isinstance(module, AvgPool2d):
        return builder.emit("avg_pool", name, (x,),
                            attrs={"kernel_size": module.kernel_size,
                                   "stride": module.stride}, hint="avgp")
    if isinstance(module, Flatten):
        return builder.emit("flatten", name, (x,), hint="flat")
    if isinstance(module, (Identity, Dropout)):
        # Dropout is the identity at inference time.
        return x
    # Unknown module: keep it, eagerly.
    return builder.emit("opaque", name, (x,), module=module, hint="opq")


def _lower_conv_bn_act(builder: PlanBuilder, name: str, x: str, conv: Conv2d,
                       bn: Optional[BatchNorm2d], act: Optional[str]) -> str:
    weight, bias = fold_conv_bn(conv, bn)
    return builder.emit(
        "conv", name, (x,), arrays={"weight": weight, "bias": bias},
        attrs={"stride": conv.stride, "padding": conv.padding,
               "groups": conv.groups, "act": act}, hint="conv")


def _lower_inverted_residual(builder: PlanBuilder, module: InvertedResidual,
                             name: str, x: str) -> str:
    out = x
    if module.expand is not None:
        out = _lower(builder, module.expand, f"{name}.expand", out)
    out = _lower(builder, module.depthwise, f"{name}.dw", out)
    out = _lower_conv_bn_act(builder, f"{name}.project", out, module.project,
                             module.project_bn, None)
    if module.use_residual:
        out = builder.emit("add", f"{name}.residual", (out, x),
                           attrs={"act": None}, hint="add")
    return out


def _lower_resnet12_block(builder: PlanBuilder, module: ResNet12Block,
                          name: str, x: str) -> str:
    residual = _lower_conv_bn_act(builder, f"{name}.shortcut", x,
                                  module.shortcut, module.shortcut_bn, None)
    out = _lower_conv_bn_act(builder, f"{name}.conv1", x, module.conv1,
                             module.bn1, "relu")
    out = _lower_conv_bn_act(builder, f"{name}.conv2", out, module.conv2,
                             module.bn2, "relu")
    out = _lower_conv_bn_act(builder, f"{name}.conv3", out, module.conv3,
                             module.bn3, None)
    out = builder.emit("add", f"{name}.residual", (out, residual),
                       attrs={"act": "relu"}, hint="add")
    if module.pool is not None:
        out = builder.emit("max_pool", f"{name}.pool", (out,),
                           attrs={"kernel_size": module.pool.kernel_size,
                                  "stride": module.pool.stride}, hint="maxp")
    return out


def _lower_basic_block(builder: PlanBuilder, module: BasicBlock, name: str,
                       x: str) -> str:
    if module.downsample is not None:
        residual = _lower_conv_bn_act(builder, f"{name}.downsample", x,
                                      module.downsample, module.downsample_bn,
                                      None)
    else:
        residual = x
    out = _lower_conv_bn_act(builder, f"{name}.conv1", x, module.conv1,
                             module.bn1, "relu")
    out = _lower_conv_bn_act(builder, f"{name}.conv2", out, module.conv2,
                             module.bn2, None)
    return builder.emit("add", f"{name}.residual", (out, residual),
                        attrs={"act": "relu"}, hint="add")


# ---------------------------------------------------------------------------
# Int8 lowering
# ---------------------------------------------------------------------------
# The int8 compiler produces mixed-precision plans.  Registers are either
# float32 or int8; for every int8 register the builder records the static
# quantization scale decided at compile time, so the emitted plan carries no
# live module references for quantization (the eager path's activation
# fake-quant hooks become explicit ``quantize``/``requantize``/``dequantize``
# steps) and survives pickling unchanged.
#
# Scale propagation follows the calibrated hook points of
# :class:`repro.quant.ActivationQuantizationPass`: a conv whose fused
# activation carries a frozen quantizer requantizes its int32 accumulator
# straight back to int8 (``qconv``); a conv with no calibrated output range
# (e.g. the projection conv feeding a residual add) dequantizes to float
# (``qconv_dequant``), the add runs in float, and the block-output quantizer
# re-enters the int8 domain.  Residual trunks of every registered family
# lower this way: MobileNetV2's ``InvertedResidual`` and the ResNet
# ``BasicBlock``/``ResNet12Block`` (strided 1x1 downsample or identity
# shortcut joining the add on its own grid, Dory-style block-output requant
# after the residual, integer global average pooling).  Layers whose input
# arrives in float with no known scale fall back to the float32 kernels —
# compilation degrades precision-wise, never semantically.


class _Int8Builder(PlanBuilder):
    """Plan builder that also tracks the int8 scale of each register."""

    def __init__(self, name: str):
        super().__init__(name)
        self.scales = {}          # register name -> float scale (int8 regs only)


def _hook_state(module: Module):
    """Interpret the forward hooks of ``module`` for int8 lowering.

    Returns ``(scale, clean)``: ``scale`` is the int8 grid of the single
    frozen :class:`~repro.quant.ActivationQuantizer` attached to the module
    (``None`` if there is none), ``clean`` is False when the module carries
    any hook the compiler cannot express as a plan op (foreign callables,
    observe-mode quantizers, non-8-bit grids) — those force an opaque step.
    """
    from ..quant.activation_quant import ActivationQuantizer

    scale = None
    for hook in module._forward_hooks:
        if isinstance(hook, ActivationQuantizer):
            if hook.mode == "off":
                continue
            if (hook.mode == "quantize" and hook.quantizer is not None
                    and hook.bits == 8 and scale is None):
                scale = float(hook.quantizer.scale)
                continue
        return None, False
    return scale, True


def _modules_hook_free(*modules) -> bool:
    return all(not module._forward_hooks
               for module in modules if module is not None)


def _emit_quantize(builder: _Int8Builder, name: str, x: str,
                   scale: float) -> str:
    out = builder.emit("quantize", name, (x,), attrs={"scale": float(scale)},
                       hint="q8")
    builder.scales[out] = float(scale)
    return out


def _ensure_float(builder: _Int8Builder, x: str, name: str) -> str:
    """Dequantize ``x`` when it is an int8 register; float passes through."""
    scale = builder.scales.get(x)
    if scale is None:
        return x
    return builder.emit("dequantize", name, (x,), attrs={"scale": scale},
                        hint="dq")


def _emit_input_quantize(builder: _Int8Builder, module: Module, x: str) -> str:
    """Quantize the plan input when the module has a calibrated quantizer.

    ``quantize_ofscil_model`` stamps the backbone with an ``input_quantizer``
    calibrated on the same data as the activation pass (mirroring the int8
    camera input of the deployed GAP9 graph) and the FCR with the quantizer
    of the backbone's pooled output (whose grid the eager path's fake-quant
    already imposed, so quantizing there is exact).
    """
    quantizer = getattr(module, "input_quantizer", None)
    if quantizer is not None and getattr(quantizer, "calibrated", False) \
            and quantizer.bits == 8:
        return _emit_quantize(builder, f"{builder.name}.quant_in", x,
                              float(quantizer.scale))
    return x


def _compile_int8(module: Module, name: str) -> InferencePlan:
    builder = _Int8Builder(name)
    x = _emit_input_quantize(builder, module, "x")
    out = _lower_int8(builder, module, name, x)
    out = _ensure_float(builder, out, f"{name}.dequant_out")
    return builder.build("x", out)


def _emit_opaque_int8(builder: _Int8Builder, module: Module, name: str,
                      x: str) -> str:
    """Semantic-preserving fallback: run the module eagerly on float input."""
    x = _ensure_float(builder, x, f"{name}.dq_in")
    return builder.emit("opaque", name, (x,), module=module, hint="opq")


def _act_clamp(act: Optional[str], scale: float):
    """Int8 clamp bounds expressing ``act`` followed by fake-quant at ``scale``."""
    if act is None:
        return INT8_QMIN, INT8_QMAX
    if act == "relu":
        return 0, INT8_QMAX
    if act == "relu6":
        return 0, min(INT8_QMAX, int(np.rint(6.0 / scale)))
    raise ValueError(f"activation {act!r} cannot be fused into an int8 clamp")


def _emit_conv_int8(builder: _Int8Builder, name: str, x: str, conv: Conv2d,
                    bn, act: Optional[str], out_scale: Optional[float]) -> str:
    """Lower one (folded) convolution inside an int8 plan.

    Int8 input + calibrated output scale -> ``qconv`` (int32 accumulate,
    per-channel requantize, activation fused into the clamp).  Int8 input
    without an output scale -> ``qconv_dequant`` (float output).  Float input
    -> the float32 conv kernel, optionally re-entering the int8 domain when
    an output scale is known.
    """
    weight, bias = fold_conv_bn(conv, bn)
    attrs = {"stride": conv.stride, "padding": conv.padding,
             "groups": conv.groups}
    s_x = builder.scales.get(x)
    if s_x is None:
        out = builder.emit("conv", name, (x,),
                           arrays={"weight": weight, "bias": bias},
                           attrs=dict(attrs, act=act), hint="conv")
        if out_scale is not None:
            out = _emit_quantize(builder, f"{name}.quant", out, out_scale)
        return out

    weight_q, w_scales = quantize_weight_per_channel(weight)
    if out_scale is None:
        dequant = (s_x * w_scales).astype(np.float64)
        acc_bound = conv_accumulator_bound(weight_q)
        if acc_bound > INT32_ACC_LIMIT:
            raise Int8CompilationError(
                f"layer {name!r}: accumulator bound {acc_bound} exceeds int32")
        return builder.emit(
            "qconv_dequant", name, (x,),
            arrays={"weight": weight_q, "dequant": dequant,
                    "bias": bias.astype(np.float32)},
            attrs=dict(attrs, act=act, acc_bound=acc_bound), hint="qconv")

    bias_codes = np.rint(bias.astype(np.float64) / (s_x * w_scales))
    if np.abs(bias_codes).max(initial=0.0) > INT32_ACC_LIMIT:
        raise Int8CompilationError(
            f"layer {name!r}: folded bias does not fit the int32 accumulator")
    bias_q = bias_codes.astype(np.int32)
    multiplier = ((s_x * w_scales) / out_scale).astype(np.float64)
    acc_bound = conv_accumulator_bound(weight_q, bias_q)
    if acc_bound > INT32_ACC_LIMIT:
        raise Int8CompilationError(
            f"layer {name!r}: accumulator bound {acc_bound} exceeds int32")
    qmin, qmax = _act_clamp(act, out_scale)
    out = builder.emit(
        "qconv", name, (x,),
        arrays={"weight": weight_q, "bias": bias_q, "multiplier": multiplier},
        attrs=dict(attrs, act=act, scale=float(out_scale), qmin=qmin,
                   qmax=qmax, acc_bound=acc_bound), hint="qconv")
    builder.scales[out] = float(out_scale)
    return out


def _lower_linear_int8(builder: _Int8Builder, linear: Linear, name: str,
                       x: str, input_quantizer=None) -> str:
    if linear._forward_hooks:
        return _emit_opaque_int8(builder, linear, name, x)
    s_x = builder.scales.get(x)
    if s_x is None:
        quantizer = input_quantizer if input_quantizer is not None \
            else getattr(linear, "input_quantizer", None)
        if quantizer is not None and getattr(quantizer, "calibrated", False) \
                and quantizer.bits == 8:
            x = _emit_quantize(builder, f"{name}.quant_in", x,
                               float(quantizer.scale))
            s_x = float(quantizer.scale)
    if s_x is None:
        # No input grid: stay on the float path (live-module weights).
        return builder.emit("linear", name, (x,), module=linear,
                            attrs={"act": None}, hint="fc")
    weight = linear.weight.data.astype(np.float32)
    weight_q, w_scales = quantize_weight_per_channel(weight)
    acc_bound = conv_accumulator_bound(weight_q)
    if acc_bound > INT32_ACC_LIMIT:
        raise Int8CompilationError(
            f"layer {name!r}: accumulator bound {acc_bound} exceeds int32")
    arrays = {"weight": weight_q,
              "dequant": (s_x * w_scales).astype(np.float64)}
    if linear.bias is not None:
        arrays["bias"] = linear.bias.data.astype(np.float32)
    return builder.emit("qlinear", name, (x,), arrays=arrays,
                        attrs={"act": None, "acc_bound": acc_bound}, hint="qfc")


def _lower_conv_bn_act_int8(builder: _Int8Builder, module: ConvBNReLU,
                            name: str, x: str) -> str:
    act_scale, act_clean = _hook_state(module.act)
    if not act_clean or not _modules_hook_free(module.conv, module.bn):
        return _emit_opaque_int8(builder, module, name, x)
    return _emit_conv_int8(builder, name, x, module.conv, module.bn, "relu6",
                           act_scale)


def _lower_inverted_residual_int8(builder: _Int8Builder,
                                  module: InvertedResidual, name: str, x: str,
                                  block_scale: Optional[float]) -> str:
    if not _modules_hook_free(module.project, module.project_bn):
        return _emit_opaque_int8(builder, module, name, x)
    out = x
    if module.expand is not None:
        out = _lower_int8(builder, module.expand, f"{name}.expand", out)
    out = _lower_int8(builder, module.depthwise, f"{name}.dw", out)
    if module.use_residual:
        out = _emit_conv_int8(builder, f"{name}.project", out, module.project,
                              module.project_bn, None, None)
        out = _ensure_float(builder, out, f"{name}.project_dq")
        shortcut = _ensure_float(builder, x, f"{name}.residual_dq")
        out = builder.emit("add", f"{name}.residual", (out, shortcut),
                           attrs={"act": None}, hint="add")
        if block_scale is not None:
            out = _emit_quantize(builder, f"{name}.requant", out, block_scale)
        return out
    return _emit_conv_int8(builder, f"{name}.project", out, module.project,
                           module.project_bn, None, block_scale)


def _emit_block_requant(builder: _Int8Builder, name: str, x: str,
                        block_scale: Optional[float]) -> str:
    """Re-enter the block-output grid (Dory-style requant after the residual).

    Replays the eager path's block-output fake-quant: the register is
    dequantized off its current grid and re-quantized onto the calibrated
    block grid (the fusion pass collapses the pair into one ``qrequantize``).
    When the register already sits on the block grid the extra hop is the
    exact identity (``rint(q * s / s) == q``) and is skipped.
    """
    if block_scale is None or builder.scales.get(x) == block_scale:
        return x
    x = _ensure_float(builder, x, f"{name}.block_dq")
    return _emit_quantize(builder, f"{name}.block_requant", x, block_scale)


def _lower_resnet12_block_int8(builder: _Int8Builder, module: ResNet12Block,
                               name: str, x: str,
                               block_scale: Optional[float]) -> str:
    relu_scale, relu_clean = _hook_state(module.relu)
    clean = _modules_hook_free(module.conv1, module.bn1, module.conv2,
                               module.bn2, module.conv3, module.bn3,
                               module.shortcut, module.shortcut_bn,
                               module.pool)
    if not relu_clean or not clean:
        return _emit_opaque_int8(builder, module, name, x)
    residual = _emit_conv_int8(builder, f"{name}.shortcut", x,
                               module.shortcut, module.shortcut_bn, None, None)
    out = _emit_conv_int8(builder, f"{name}.conv1", x, module.conv1,
                          module.bn1, "relu", relu_scale)
    out = _emit_conv_int8(builder, f"{name}.conv2", out, module.conv2,
                          module.bn2, "relu", relu_scale)
    out = _emit_conv_int8(builder, f"{name}.conv3", out, module.conv3,
                          module.bn3, None, None)
    out = _ensure_float(builder, out, f"{name}.conv3_dq")
    residual = _ensure_float(builder, residual, f"{name}.shortcut_dq")
    out = builder.emit("add", f"{name}.residual", (out, residual),
                       attrs={"act": "relu"}, hint="add")
    if relu_scale is not None:
        out = _emit_quantize(builder, f"{name}.requant", out, relu_scale)
    if module.pool is not None:
        out = _emit_max_pool_int8(builder, f"{name}.pool", out,
                                  module.pool.kernel_size, module.pool.stride)
    # The block hook observes the *post-pool* output (max pooling commutes
    # with the positive grid scale, so pooling codes first is exact).
    return _emit_block_requant(builder, name, out, block_scale)


def _lower_basic_block_int8(builder: _Int8Builder, module: BasicBlock,
                            name: str, x: str,
                            block_scale: Optional[float]) -> str:
    relu_scale, relu_clean = _hook_state(module.relu)
    clean = _modules_hook_free(module.conv1, module.bn1, module.conv2,
                               module.bn2, module.downsample,
                               module.downsample_bn)
    if not relu_clean or not clean:
        return _emit_opaque_int8(builder, module, name, x)
    if module.downsample is not None:
        # Strided 1x1 projection shortcut: integer conv, dequantized into the
        # float residual accumulation (the fusion pass folds the dequantize
        # into the add).
        residual = _emit_conv_int8(builder, f"{name}.downsample", x,
                                   module.downsample, module.downsample_bn,
                                   None, None)
        residual = _ensure_float(builder, residual, f"{name}.downsample_dq")
    else:
        # Identity shortcut: the int8 input joins the add on its own grid.
        residual = _ensure_float(builder, x, f"{name}.residual_dq")
    out = _emit_conv_int8(builder, f"{name}.conv1", x, module.conv1,
                          module.bn1, "relu", relu_scale)
    out = _emit_conv_int8(builder, f"{name}.conv2", out, module.conv2,
                          module.bn2, None, None)
    out = _ensure_float(builder, out, f"{name}.conv2_dq")
    out = builder.emit("add", f"{name}.residual", (out, residual),
                       attrs={"act": "relu"}, hint="add")
    if relu_scale is not None:
        out = _emit_quantize(builder, f"{name}.requant", out, relu_scale)
    return _emit_block_requant(builder, name, out, block_scale)


def _emit_max_pool_int8(builder: _Int8Builder, name: str, x: str,
                        kernel_size: int, stride: int) -> str:
    """Max pooling is order-preserving, so it runs directly on int8 codes."""
    scale = builder.scales.get(x)
    out = builder.emit("max_pool", name, (x,),
                       attrs={"kernel_size": kernel_size, "stride": stride},
                       hint="maxp")
    if scale is not None:
        builder.scales[out] = scale
    return out


def _lower_global_pool_int8(builder: _Int8Builder, pool: GlobalAvgPool2d,
                            name: str, x: str, integer: bool = False) -> str:
    """Global average pooling + the (optional) pool-output fake-quant.

    ``integer=True`` (the ResNet trunks, whose int8 lowering committed to it
    from the start) pools int8 codes through the exact integer-accumulation
    kernel (``qglobal_pool``) instead of dequantizing first; the MobileNetV2
    family keeps the original float pool so its committed golden bits stay
    untouched.  Both paths are deterministic across chunkings and backends.
    """
    pool_scale, pool_clean = _hook_state(pool)
    if not pool_clean:
        return _emit_opaque_int8(builder, pool, name, x)
    in_scale = builder.scales.get(x)
    if integer and in_scale is not None:
        out = builder.emit("qglobal_pool", name, (x,),
                           attrs={"scale": in_scale}, hint="qgap")
    else:
        x = _ensure_float(builder, x, f"{name}.dq")
        out = builder.emit("global_pool", name, (x,), hint="gap")
    if pool_scale is not None:
        out = builder.emit("requantize", f"{name}.requant", (out,),
                           attrs={"scale": pool_scale}, hint="rq")
    return out


def _lower_int8(builder: _Int8Builder, module: Module, name: str, x: str) -> str:
    """Emit int8-plan steps computing ``module(x)``; returns the output register.

    Mirrors :func:`_lower` but never bails to opaque just because a subtree
    carries activation fake-quant hooks — those are compiled into explicit
    quantize/requantize steps.  Foreign hooks still force opaque fallbacks.
    """
    scale, clean = _hook_state(module)
    if not clean:
        return _emit_opaque_int8(builder, module, name, x)

    if isinstance(module, ConvBNReLU):
        return _lower_conv_bn_act_int8(builder, module, name, x)
    if isinstance(module, InvertedResidual):
        return _lower_inverted_residual_int8(builder, module, name, x, scale)
    if isinstance(module, ResNet12Block):
        return _lower_resnet12_block_int8(builder, module, name, x, scale)
    if isinstance(module, BasicBlock):
        return _lower_basic_block_int8(builder, module, name, x, scale)
    if scale is not None and not isinstance(module, (ReLU, ReLU6,
                                                     GlobalAvgPool2d)):
        # A quantizer on a module type without a dedicated int8 rule: keep
        # the eager semantics rather than guessing where the grid applies.
        return _emit_opaque_int8(builder, module, name, x)
    if isinstance(module, MobileNetV2Backbone):
        out = _lower_int8(builder, module.stem, f"{name}.stem", x)
        out = _lower_int8(builder, module.blocks, f"{name}.blocks", out)
        out = _lower_int8(builder, module.head, f"{name}.head", out)
        return _lower_global_pool_int8(builder, module.pool, f"{name}.pool",
                                       out)
    if isinstance(module, ResNet12Backbone):
        out = _lower_int8(builder, module.blocks, f"{name}.blocks", x)
        return _lower_global_pool_int8(builder, module.pool, f"{name}.pool",
                                       out, integer=True)
    if isinstance(module, ResNet20Backbone):
        if not _modules_hook_free(module.stem, module.stem_bn):
            return _emit_opaque_int8(builder, module, name, x)
        stem_scale, stem_clean = _hook_state(module.relu)
        if not stem_clean:
            return _emit_opaque_int8(builder, module, name, x)
        out = _emit_conv_int8(builder, f"{name}.stem", x, module.stem,
                              module.stem_bn, "relu", stem_scale)
        out = _lower_int8(builder, module.blocks, f"{name}.blocks", out)
        return _lower_global_pool_int8(builder, module.pool, f"{name}.pool",
                                       out, integer=True)
    if isinstance(module, FullyConnectedReductor):
        return _lower_linear_int8(
            builder, module.linear, f"{name}.linear", x,
            input_quantizer=getattr(module, "input_quantizer", None))
    if isinstance(module, Sequential):
        out = x
        for index in range(len(module)):
            out = _lower_int8(builder, module[index], f"{name}.{index}", out)
        return out
    if isinstance(module, Conv2d):
        return _emit_conv_int8(builder, name, x, module, None, None, None)
    if isinstance(module, (BatchNorm2d, BatchNorm1d)):
        x = _ensure_float(builder, x, f"{name}.dq")
        bn_scale, shift = bn_scale_shift(module)
        return builder.emit("bn", name, (x,),
                            arrays={"scale": bn_scale, "shift": shift},
                            attrs={"act": None}, hint="bn")
    if isinstance(module, Linear):
        return _lower_linear_int8(builder, module, name, x)
    if isinstance(module, (ReLU, ReLU6)):
        act = "relu" if isinstance(module, ReLU) else "relu6"
        x = _ensure_float(builder, x, f"{name}.dq")
        out = builder.emit("act", name, (x,), attrs={"act": act}, hint=act)
        if scale is not None:
            out = _emit_quantize(builder, f"{name}.quant", out, scale)
        return out
    if isinstance(module, GlobalAvgPool2d):
        return _lower_global_pool_int8(builder, module, name, x)
    if isinstance(module, MaxPool2d):
        return _emit_max_pool_int8(builder, name, x, module.kernel_size,
                                   module.stride)
    if isinstance(module, AvgPool2d):
        x = _ensure_float(builder, x, f"{name}.dq")
        return builder.emit("avg_pool", name, (x,),
                            attrs={"kernel_size": module.kernel_size,
                                   "stride": module.stride}, hint="avgp")
    if isinstance(module, Flatten):
        out = builder.emit("flatten", name, (x,), hint="flat")
        if x in builder.scales:
            builder.scales[out] = builder.scales[x]
        return out
    if isinstance(module, (Identity, Dropout)):
        return x
    return _emit_opaque_int8(builder, module, name, x)
