"""Deterministic, seeded workload generation for scenario runs.

A workload is a fully materialised schedule — a sorted list of
:class:`Op` records, each carrying an arrival offset, a client session id,
an operation kind and a query index — produced **before** the run starts,
from nothing but a seed.  The same seed always yields the same schedule, so
a scenario failure reproduces with ``python -m repro.scenarios --seed N``
and nothing else.

Three arrival processes cover the load shapes that historically break
serving stacks differently:

``poisson``
    Memoryless steady traffic (i.i.d. exponential gaps) — the baseline.
``bursty``
    An on/off process: bursts of back-to-back requests separated by idle
    gaps.  This is the shape that exposes admission-control overshoot and
    sticky SLO shedding (a burst inflates the latency EMA, the idle gap is
    when it must decay).
``diurnal``
    A thinned Poisson process whose acceptance probability follows a
    sinusoidal envelope — slow load swings that exercise the dynamic
    batcher across its whole coalescing range within one run.

Operation kinds are mixed by seeded draw: ``submit`` (async single-sample),
``predict`` (sync batch-of-one), ``malformed`` (async, wrong image shape)
and ``oversized`` (sync, inflated spatial dims); ``learn`` bursts —
:meth:`Server.learn_class` calls introducing novel classes — are spliced in
at evenly spaced times.  Session churn rotates the active client-session
set across epochs of the run, so per-session bookkeeping (if any) cannot
rely on a stable population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

#: Op kinds a workload may schedule (see the module docstring).
OP_KINDS = ("submit", "predict", "malformed", "oversized", "learn")


@dataclass(frozen=True)
class Op:
    """One scheduled client operation."""

    at_s: float          #: arrival offset from the start of the run
    session: int         #: client session id (churns across the run)
    kind: str            #: one of :data:`OP_KINDS`
    index: int           #: query-pool index, or the class id of a ``learn``


@dataclass
class Workload:
    """A materialised, sorted schedule plus its generation parameters."""

    name: str
    seed: int
    arrival: str
    ops: List[Op] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.ops[-1].at_s if self.ops else 0.0

    def counts(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in OP_KINDS}
        for op in self.ops:
            counts[op.kind] += 1
        return counts

    def summary(self) -> dict:
        return {"name": self.name, "seed": self.seed,
                "arrival": self.arrival, "num_ops": len(self.ops),
                "duration_s": round(self.duration_s, 4), **self.counts()}


# ---------------------------------------------------------------------------
# Arrival processes (all return a sorted array of n arrival times)
# ---------------------------------------------------------------------------
def poisson_arrival_times(rng: np.random.Generator, n: int,
                          rate_hz: float) -> np.ndarray:
    """Homogeneous Poisson arrivals: i.i.d. exponential inter-arrival gaps."""
    return np.cumsum(rng.exponential(1.0 / rate_hz, size=n))


def bursty_arrival_times(rng: np.random.Generator, n: int, rate_hz: float,
                         burst_mean: int = 8,
                         idle_mean_s: float = 0.05) -> np.ndarray:
    """On/off arrivals: Poisson-sized bursts at ``rate_hz`` separated by
    exponential idle gaps of mean ``idle_mean_s``."""
    times: List[float] = []
    t = 0.0
    while len(times) < n:
        burst = max(1, int(rng.poisson(burst_mean)))
        for _ in range(min(burst, n - len(times))):
            t += float(rng.exponential(1.0 / rate_hz))
            times.append(t)
        t += float(rng.exponential(idle_mean_s))
    return np.asarray(times)


def diurnal_arrival_times(rng: np.random.Generator, n: int, rate_hz: float,
                          period_s: float = 0.5,
                          floor: float = 0.15) -> np.ndarray:
    """Thinned Poisson arrivals: candidates at the peak ``rate_hz``, each
    accepted with probability following a sinusoid between ``floor`` and 1 —
    a compressed day/night load curve."""
    times: List[float] = []
    t = 0.0
    while len(times) < n:
        t += float(rng.exponential(1.0 / rate_hz))
        envelope = floor + (1.0 - floor) * 0.5 * (
            1.0 + np.sin(2.0 * np.pi * t / period_s))
        if rng.random() < envelope:
            times.append(t)
    return np.asarray(times)


ARRIVALS: Dict[str, Callable[..., np.ndarray]] = {
    "poisson": poisson_arrival_times,
    "bursty": bursty_arrival_times,
    "diurnal": diurnal_arrival_times,
}


# ---------------------------------------------------------------------------
def generate_workload(name: str, seed: int, num_ops: int,
                      arrival: str = "poisson", rate_hz: float = 150.0,
                      num_sessions: int = 4, session_epochs: int = 3,
                      sync_fraction: float = 0.15,
                      malformed_fraction: float = 0.0,
                      oversized_fraction: float = 0.0,
                      learn_bursts: int = 0,
                      first_learn_class: int = 100,
                      query_pool: int = 30,
                      **arrival_kwargs) -> Workload:
    """Materialise one deterministic workload schedule.

    ``num_ops`` traffic operations arrive per the chosen process; each is a
    sync ``predict`` with probability ``sync_fraction``, a ``malformed`` /
    ``oversized`` request per their fractions, and an async ``submit``
    otherwise.  ``learn_bursts`` ``learn`` ops (novel class ids counting up
    from ``first_learn_class``) are spliced in at evenly spaced times.
    Session ids churn: each epoch of the run draws from a fresh block of
    ``num_sessions`` ids, so sessions are born and die mid-run.
    """
    if arrival not in ARRIVALS:
        raise ValueError(f"unknown arrival process {arrival!r}; "
                         f"choose from {sorted(ARRIVALS)}")
    fractions = sync_fraction + malformed_fraction + oversized_fraction
    if not 0.0 <= fractions <= 1.0:
        raise ValueError("op-kind fractions must sum into [0, 1]")
    rng = np.random.default_rng(seed)
    times = ARRIVALS[arrival](rng, num_ops, rate_hz, **arrival_kwargs)
    epoch_len = max(1, num_ops // max(1, session_epochs))
    ops: List[Op] = []
    for position, at_s in enumerate(times):
        epoch = position // epoch_len
        session = int(epoch * num_sessions + rng.integers(num_sessions))
        draw = float(rng.random())
        index = int(rng.integers(query_pool))
        if draw < malformed_fraction:
            kind = "malformed"
        elif draw < malformed_fraction + oversized_fraction:
            kind = "oversized"
        elif draw < fractions:
            kind = "predict"
        else:
            kind = "submit"
        ops.append(Op(float(at_s), session, kind, index))
    duration = float(times[-1]) if num_ops else 0.0
    for burst in range(learn_bursts):
        at_s = duration * (burst + 1) / (learn_bursts + 1)
        ops.append(Op(float(at_s), -1, "learn", first_learn_class + burst))
    ops.sort(key=lambda op: (op.at_s, op.kind, op.index))
    return Workload(name=name, seed=seed, arrival=arrival, ops=ops)
