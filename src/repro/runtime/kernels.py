"""Fused inference kernels for the batched runtime.

These kernels operate on raw ``numpy`` arrays — no :class:`~repro.nn.tensor.Tensor`
wrappers, no autograd bookkeeping.  Three ideas keep them fast:

* **stride-tricks im2col with buffer reuse** — the sliding-window view of the
  padded input is materialised into a column buffer that is allocated once
  per (shape, dtype) and reused across calls through :class:`BufferCache`,
  so steady-state batched inference allocates nothing on the conv path;
* **fusion** — batch-norm is folded into the convolution weights at plan
  compile time, and the bias add + activation clip are applied in place on
  the GEMM output, so every conv layer makes a single pass over its output;
* **batched GEMM** — dense and pointwise convolutions are expressed as
  ``matmul`` over the whole micro-batch, hitting BLAS instead of Python
  loops.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..nn.conv import conv_output_size

#: Supported fused activations (applied in place on the layer output).
ACTIVATIONS = (None, "relu", "relu6")


def apply_activation(out: np.ndarray, act: Optional[str]) -> np.ndarray:
    """Apply ``act`` to ``out`` in place and return it."""
    if act is None:
        return out
    if act == "relu":
        return np.maximum(out, 0.0, out=out)
    if act == "relu6":
        return np.clip(out, 0.0, 6.0, out=out)
    raise ValueError(f"unknown activation {act!r}; expected one of {ACTIVATIONS}")


class BufferCache:
    """Reusable scratch buffers keyed by (tag, shape, dtype).

    The engine keeps one cache per plan so that consecutive ``run`` calls
    with the same micro-batch shape reuse the same im2col / padding buffers
    instead of reallocating them for every layer of every batch.
    """

    def __init__(self):
        self._buffers: Dict[Tuple, np.ndarray] = {}

    def get(self, tag: str, shape: Tuple[int, ...],
            dtype=np.float32) -> np.ndarray:
        key = (tag, shape, np.dtype(dtype).str)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def clear(self) -> None:
        self._buffers.clear()

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        return sum(buffer.nbytes for buffer in self._buffers.values())


def sliding_window_view(x: np.ndarray, kh: int, kw: int,
                        stride: int) -> np.ndarray:
    """Zero-copy ``(N, C, kh, kw, out_h, out_w)`` window view of ``x``.

    ``x`` must already be padded.  The view aliases ``x``; callers copy it
    into a contiguous buffer before feeding a GEMM.
    """
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False)


def im2col_cached(x: np.ndarray, kh: int, kw: int, stride: int, padding: int,
                  cache: Optional[BufferCache] = None) -> np.ndarray:
    """im2col into a cached contiguous buffer of shape (N, C, kh*kw, oh*ow)."""
    n, c, h, w = x.shape
    if padding > 0:
        padded_shape = (n, c, h + 2 * padding, w + 2 * padding)
        if cache is not None:
            padded = cache.get("pad", padded_shape, x.dtype)
            padded.fill(0.0)
        else:
            padded = np.zeros(padded_shape, dtype=x.dtype)
        padded[:, :, padding:padding + h, padding:padding + w] = x
        x = padded
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    view = sliding_window_view(x, kh, kw, stride)
    cols_shape = (n, c, kh, kw, out_h, out_w)
    if cache is not None:
        cols = cache.get("col", cols_shape, x.dtype)
    else:
        cols = np.empty(cols_shape, dtype=x.dtype)
    np.copyto(cols, view)
    return cols.reshape(n, c, kh * kw, out_h * out_w)


def fused_conv(x: np.ndarray, weight: np.ndarray,
               bias: Optional[np.ndarray] = None, stride: int = 1,
               padding: int = 0, groups: int = 1, act: Optional[str] = None,
               cache: Optional[BufferCache] = None) -> np.ndarray:
    """Grouped 2-D convolution with the bias add and activation fused in.

    ``weight`` is ``(out_c, in_c // groups, kh, kw)`` — typically the
    BN-folded weight produced by the plan compiler, with ``bias`` holding the
    folded BN shift.
    """
    n, c, h, w = x.shape
    out_c, c_per_group, kh, kw = weight.shape
    if c != c_per_group * groups:
        raise ValueError(
            f"input channels ({c}) incompatible with weight {weight.shape} "
            f"and groups={groups}")
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    spatial = out_h * out_w

    pointwise = (kh == 1 and kw == 1 and stride == 1 and padding == 0
                 and groups == 1)
    if pointwise:
        out = np.matmul(weight.reshape(out_c, c), x.reshape(n, c, spatial))
    else:
        cols = im2col_cached(x, kh, kw, stride, padding, cache)
        depthwise = groups == c and groups == out_c
        if groups == 1:
            out = np.matmul(weight.reshape(out_c, c * kh * kw),
                            cols.reshape(n, c * kh * kw, spatial))
        elif depthwise:
            out = np.einsum("nckl,ck->ncl", cols, weight.reshape(c, kh * kw))
        else:
            cols_g = cols.reshape(n, groups, c_per_group * kh * kw, spatial)
            weight_g = weight.reshape(groups, out_c // groups,
                                      c_per_group * kh * kw)
            out = np.einsum("gok,ngkl->ngol", weight_g, cols_g, optimize=True)
    out = np.ascontiguousarray(out).reshape(n, out_c, spatial)
    if bias is not None:
        out += bias.reshape(1, out_c, 1)
    apply_activation(out, act)
    return out.reshape(n, out_c, out_h, out_w)


def fused_linear(x: np.ndarray, weight: np.ndarray,
                 bias: Optional[np.ndarray] = None,
                 act: Optional[str] = None) -> np.ndarray:
    """``x @ weight.T + bias`` with the activation fused in (weight (out, in))."""
    out = np.matmul(x, weight.T)
    if bias is not None:
        out += bias
    return apply_activation(out, act)


def batchnorm_inference(x: np.ndarray, scale: np.ndarray, shift: np.ndarray,
                        act: Optional[str] = None) -> np.ndarray:
    """Eval-mode batch norm reduced to a per-channel affine map.

    ``scale``/``shift`` are the precomputed ``gamma / sqrt(var + eps)`` and
    ``beta - mean * scale`` vectors; works for both NCHW and (N, C) inputs.
    """
    if x.ndim == 4:
        out = x * scale.reshape(1, -1, 1, 1) + shift.reshape(1, -1, 1, 1)
    else:
        out = x * scale.reshape(1, -1) + shift.reshape(1, -1)
    return apply_activation(out, act)


def global_avg_pool(x: np.ndarray) -> np.ndarray:
    """Global average pooling of NCHW down to (N, C)."""
    return x.mean(axis=(2, 3))


def max_pool(x: np.ndarray, kernel_size: int, stride: int) -> np.ndarray:
    """Max pooling over square windows via the zero-copy window view."""
    view = sliding_window_view(x, kernel_size, kernel_size, stride)
    return view.max(axis=(2, 3))


def avg_pool(x: np.ndarray, kernel_size: int, stride: int) -> np.ndarray:
    """Average pooling over square windows via the zero-copy window view."""
    view = sliding_window_view(x, kernel_size, kernel_size, stride)
    return view.mean(axis=(2, 3))


def normalize_prototypes(matrix: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Row-wise L2 normalisation of a prototype matrix (float32).

    Shared by the predictor's prototype cache and the serving snapshots
    (:mod:`repro.serve`) so every execution path serves bit-identical
    similarity scores from the same normalised matrix.
    """
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return (matrix / (norms + eps)).astype(np.float32)


def cosine_similarities(features: np.ndarray, prototypes_normed: np.ndarray,
                        eps: float = 1e-12) -> np.ndarray:
    """Cosine similarity of raw features against pre-normalised prototypes.

    Normalising the prototype matrix once per memory version (instead of per
    query batch) is what makes whole-session prediction a single GEMM.
    """
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    normed = features / (norms + eps)
    return normed @ prototypes_normed.T
