#!/usr/bin/env python3
"""Online few-shot class learning, exactly as it happens on the device.

The scenario the paper's introduction motivates: a deployed model must learn
classes it has never seen, from a handful of labelled examples, without
retraining the network.  This example:

1. trains the backbone + FCR on the base session (server side),
2. freezes them and populates the explicit memory with base prototypes,
3. streams the incremental classes one by one, each learned from S shots in a
   single forward pass (the 12 mJ "EM update" of Table IV),
4. after each new class, reports (a) accuracy on that class, (b) accuracy on
   all previously seen classes — demonstrating that old knowledge is kept,
5. optionally runs the on-device FCR fine-tuning and shows its effect.

Run:  python examples/online_class_learning.py [--shots 5] [--finetune]
"""

import argparse

from repro.core import (
    FinetuneConfig,
    MetalearnConfig,
    OFSCIL,
    OFSCILConfig,
    PretrainConfig,
    finetune_fcr,
    metalearn,
    pretrain,
)
from repro.data import build_synthetic_fscil
from repro.runtime import assert_parity


def accuracy_on(predictor, dataset, class_ids=None) -> float:
    """Batched nearest-prototype accuracy through the inference runtime."""
    return predictor.accuracy(dataset, class_ids)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backbone", default="mobilenetv2_x4_tiny")
    parser.add_argument("--profile", default="test", choices=("test", "laptop"))
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--shots", type=int, default=5)
    parser.add_argument("--finetune", action="store_true",
                        help="run the optional on-device FCR fine-tuning at the end")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    benchmark = build_synthetic_fscil(args.profile, seed=args.seed, shots=args.shots)

    print("=== Server side: pretraining + metalearning on the base session ===")
    model = OFSCIL.from_registry(args.backbone, OFSCILConfig(backbone=args.backbone),
                                 seed=args.seed)
    pretrain(model.backbone, model.fcr, benchmark.base_train,
             num_classes=benchmark.protocol.base_classes,
             config=PretrainConfig(epochs=args.epochs, batch_size=32,
                                   learning_rate=0.12, seed=args.seed))
    metalearn(model.backbone, model.fcr, benchmark.base_train,
              MetalearnConfig(iterations=10, meta_shots=args.shots,
                              queries_per_class=2, seed=args.seed))

    print("=== Deployment: freeze the feature extractor, learn base prototypes ===")
    model.freeze_feature_extractor()
    model.learn_base_session(benchmark.base_train)

    # Deploy-time inference goes through the batched runtime: the backbone is
    # compiled into a flat fused-op plan and the prototype matrix is cached.
    predictor = model.runtime_predictor()
    parity = assert_parity(model, benchmark.test.images[:32],
                           predictor=predictor)
    print(f"runtime self-check: {parity.summary()}")

    base_test = benchmark.test_upto(0)
    print(f"base-session accuracy: {100 * accuracy_on(predictor, base_test):.1f}% "
          f"over {benchmark.protocol.base_classes} classes")

    print(f"\n=== Online learning: one class at a time, {args.shots} shots each ===")
    seen_classes = list(benchmark.protocol.session_classes(0))
    for session in benchmark.sessions:
        for class_id in session.class_ids:
            mask = session.support.labels == class_id
            model.learn_class(session.support.images[mask], int(class_id))
            seen_classes.append(int(class_id))

            new_class_test = benchmark.test.filter_classes([class_id])
            old_test = benchmark.test.filter_classes(seen_classes[:-1])
            new_accuracy = accuracy_on(predictor, new_class_test)
            old_accuracy = accuracy_on(predictor, old_test)
            print(f"  learned class {class_id:3d} "
                  f"(memory: {model.memory.num_classes:3d} prototypes, "
                  f"{model.memory_footprint_bytes() / 1e3:6.1f} kB) | "
                  f"new-class acc {100 * new_accuracy:5.1f}% | "
                  f"seen-classes acc {100 * old_accuracy:5.1f}%")

    final_test = benchmark.test_upto(benchmark.num_sessions)
    print(f"\nfinal accuracy over all {len(seen_classes)} classes: "
          f"{100 * accuracy_on(predictor, final_test):.1f}%")

    if args.finetune:
        print("\n=== Optional on-device FCR fine-tuning (Section V-B) ===")
        before = accuracy_on(predictor, final_test)
        finetune_fcr(model, FinetuneConfig(iterations=50, learning_rate=0.02,
                                           seed=args.seed))
        after = accuracy_on(predictor, final_test)
        print(f"accuracy before {100 * before:.1f}% -> after fine-tuning "
              f"{100 * after:.1f}%")


if __name__ == "__main__":
    main()
