"""Self-contained telemetry demo: serve a tiny model with tracing at 100%.

``python -m repro.obs [trace.jsonl]`` builds a small learned model, serves a
handful of dynamic-batched requests through a 2-worker pool with every
request traced, then prints the server's metrics scrape and the span tree of
one request and writes the full trace as JSON lines (default
``obs_trace.jsonl``) — the artifact the CI serve-smoke job uploads.
"""

from __future__ import annotations

import json
import sys

import numpy as np


def _make_model(base_classes: int = 4, shots_per_class: int = 4,
                image_shape=(3, 16, 16)):
    from ..core import OFSCIL, OFSCILConfig

    backbone = "mobilenetv2_x4_tiny"
    model = OFSCIL.from_registry(backbone, OFSCILConfig(backbone=backbone),
                                 seed=0)
    model.freeze_feature_extractor()
    rng = np.random.default_rng(42)
    shots = rng.standard_normal(
        (base_classes * shots_per_class, *image_shape)).astype(np.float32)
    for class_id in range(base_classes):
        start = class_id * shots_per_class
        model.learn_class(shots[start:start + shots_per_class], class_id)
    return model, shots


def _print_tree(spans, parent_id=None, depth=0):
    by_parent = {}
    for span in spans:
        by_parent.setdefault(span.get("parent_id"), []).append(span)
    for span in sorted(by_parent.get(parent_id, []),
                       key=lambda s: s["start_s"]):
        print(f"{'  ' * depth}{span['name']}  "
              f"[{span['process']}]  {span['duration_s'] * 1e3:.2f} ms  "
              f"{span['status']}")
        _print_tree(spans, span["span_id"], depth + 1)


def main(argv=None) -> int:
    from .trace import JsonlSpanExporter, read_jsonl_spans
    argv = sys.argv[1:] if argv is None else argv
    path = argv[0] if argv else "obs_trace.jsonl"

    model, _shots = _make_model()
    rng = np.random.default_rng(7)
    queries = rng.standard_normal((6, 3, 16, 16)).astype(np.float32)

    with model.serve(2, max_latency_s=0.02, trace_sample=1.0,
                     trace_exporter=JsonlSpanExporter(path)) as server:
        labels = [server.submit(query).result(timeout=60.0)
                  for query in queries]
        print(f"served {len(labels)} traced requests -> labels {labels}")
        print()
        print("metrics scrape:")
        print(json.dumps(server.stats.scrape(), indent=2))

    spans = read_jsonl_spans(path)
    roots = [span for span in spans if span.get("parent_id") is None]
    trace = [span for span in spans
             if span["trace_id"] == roots[0]["trace_id"]]
    print()
    print(f"{len(spans)} spans from {len(roots)} traces written to {path}; "
          f"trace {roots[0]['trace_id']}:")
    _print_tree(trace)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
