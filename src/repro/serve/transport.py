"""Zero-copy shared-memory transport for the sharded serving engine.

The original serving transport moved every tensor through pickled
``multiprocessing.Queue`` items.  That had two costs: every batch paid a
full serialize/copy/deserialize round-trip, and every result crossed *one
shared queue* whose write lock any hard-killed worker (OOM, SIGKILL) could
die holding — wedging the replies of every surviving shard.

This module provides the replacement: a :class:`SlotRing` is a slotted ring
buffer over one ``multiprocessing.shared_memory`` segment with exactly one
producer process and one consumer process.  Tensors are written into a free
slot as a contiguous NumPy copy (one ``memcpy``, no serialization) and read
back as a zero-copy NumPy view; the control queues carry only a small
``(slot, shape, dtype)`` descriptor.  Pickle is reserved for control frames
(tickets, prototype snapshots, stats dicts, error strings) and for the
explicit fallback when a payload does not fit a slot or the ring is full.

Slot accounting is a one-byte state flag per slot (0 = free, 1 = in use)
living in the segment header.  Each flag transition has a single writer —
the producer claims (0 -> 1), the consumer releases (1 -> 0) — so no lock
exists for a dying process to poison, and a dead peer's outstanding slots
can be reclaimed wholesale by whichever side owns the segment
(:meth:`SlotRing.reclaim_all`) instead of leaking.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np

#: Default number of payload slots per ring (bounds coordinator->worker and
#: worker->coordinator tensor traffic; overflow falls back to pickle).
DEFAULT_RING_SLOTS = 8

#: Default payload capacity per slot.  1 MiB covers a 64-sample micro-batch
#: of 3x32x32 float32 images (786 KiB) with headroom; larger payloads take
#: the pickle fallback rather than failing.
DEFAULT_SLOT_BYTES = 1 << 20

#: Header/payload alignment so slot payloads start on cache-line boundaries.
_ALIGN = 64

#: Control-frame markers for packed payloads (see :func:`pack_payload`).
_INLINE = "__inline__"
_SHM = "__shm__"
_SHM_TUPLE = "__shm_tuple__"
_MARKERS = (_INLINE, _SHM, _SHM_TUPLE)

#: Frame length per marker *without* the optional trailing trace-context
#: field; a frame one element longer carries trace metadata (see
#: :func:`payload_trace`).  The pickle fallback ships the identical frame,
#: so trace context propagates bit-for-bit through both transport paths.
_BASE_LEN = {_INLINE: 2, _SHM: 2, _SHM_TUPLE: 3}


# NOTE on resource tracking: on Python < 3.13 *attaching* to a segment
# registers it with the resource tracker as if the attacher owned it
# (cpython#82300).  Workers here are always ``multiprocessing``-spawned
# children that inherit the coordinator's tracker process, whose registry is
# a set — the duplicate registration is idempotent and the coordinator's
# ``unlink()`` at close unregisters it exactly once.  Do NOT "fix" this by
# unregistering on attach: with a shared tracker that strips the owner's
# registration and the tracker logs a KeyError when the coordinator unlinks.


class SlotRing:
    """Single-producer / single-consumer slotted shared-memory ring.

    Layout: ``slots`` one-byte state flags (padded to ``_ALIGN``), followed
    by ``slots * slot_bytes`` of payload space.  The producer process calls
    :meth:`try_write`, ships the returned descriptor over a control queue,
    and the consumer process calls :meth:`read` (zero-copy view) and
    :meth:`free` when done with the view.
    """

    def __init__(self, slots: int = DEFAULT_RING_SLOTS,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 name: Optional[str] = None, create: bool = True):
        if slots < 1:
            raise ValueError("a ring needs at least one slot")
        if slot_bytes < 1:
            raise ValueError("slot_bytes must be positive")
        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        self._header = -(-self.slots // _ALIGN) * _ALIGN
        size = self._header + self.slots * self.slot_bytes
        if create:
            self._shm = shared_memory.SharedMemory(create=True, size=size)
        else:
            self._shm = shared_memory.SharedMemory(name=name)
        self._owns = bool(create)
        self._flags = np.ndarray((self.slots,), dtype=np.uint8,
                                 buffer=self._shm.buf)
        if create:
            self._flags[:] = 0
        self._cursor = 0
        self._closed = False
        #: Fault-injection switch (process-local, never shared state): while
        #: set, :meth:`try_write` reports a full ring so every payload takes
        #: the inline-pickle fallback — the scenario harness's way of
        #: exercising ring exhaustion deterministically.
        self.fail_writes = False

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    def spec(self) -> Tuple[str, int, int]:
        """Picklable attachment spec for the peer process."""
        return (self.name, self.slots, self.slot_bytes)

    @classmethod
    def attach(cls, spec: Tuple[str, int, int]) -> "SlotRing":
        """Attach to a ring created (and owned) by the peer process."""
        name, slots, slot_bytes = spec
        return cls(slots=slots, slot_bytes=slot_bytes, name=name,
                   create=False)

    # ------------------------------------------------------------------
    def try_write(self, array: np.ndarray
                  ) -> Optional[Tuple[int, tuple, str]]:
        """Claim a free slot and copy ``array`` into it.

        Returns the ``(slot, shape, dtype)`` descriptor to ship over the
        control channel, or ``None`` when the array exceeds ``slot_bytes``
        or every slot is in use — the caller then falls back to pickling
        the payload inline, so a full ring degrades to the old transport
        instead of blocking.
        """
        array = np.ascontiguousarray(array)
        if self.fail_writes or array.nbytes > self.slot_bytes:
            return None
        for probe in range(self.slots):
            slot = (self._cursor + probe) % self.slots
            if self._flags[slot] == 0:
                break
        else:
            return None
        self._cursor = (slot + 1) % self.slots
        self._flags[slot] = 1
        if array.nbytes:
            dst = np.ndarray(array.shape, dtype=array.dtype,
                             buffer=self._shm.buf,
                             offset=self._header + slot * self.slot_bytes)
            np.copyto(dst, array)
        return (slot, array.shape, array.dtype.str)

    def read(self, descriptor: Tuple[int, tuple, str]) -> np.ndarray:
        """Zero-copy view of a written slot; call :meth:`free` when done."""
        slot, shape, dtype = descriptor
        return np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                          buffer=self._shm.buf,
                          offset=self._header + slot * self.slot_bytes)

    def free(self, slot: int) -> None:
        """Release one slot back to the producer (consumer-side call)."""
        self._flags[slot] = 0

    def reclaim_all(self) -> None:
        """Force-release every slot.

        Only safe when the peer process is known to be gone (dead worker) or
        has not started yet — this is the leak-proofing path the liveness
        watchdog takes after failing a dead shard's futures.
        """
        self._flags[:] = 0

    @property
    def slots_in_use(self) -> int:
        return int(np.count_nonzero(self._flags))

    def renew(self) -> "SlotRing":
        """Tear this ring down and return a fresh one of identical geometry.

        The supervisor's respawn path: a dead worker's rings are never
        handed to its replacement, because the corpse may have died
        mid-write with slot flags in arbitrary states and its (now
        unreachable) kernel mappings still pinning the old segment.  Only
        the owning side may renew — the fresh ring must own its segment so
        the next teardown can unlink it.
        """
        if not self._owns:
            raise ValueError("only the owning side of a ring can renew it")
        slots, slot_bytes = self.slots, self.slot_bytes
        self.close()
        return SlotRing(slots, slot_bytes)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the segment; the owning side also unlinks it."""
        if self._closed:
            return
        self._closed = True
        self._flags = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - outstanding views; the
            return           # mapping is reclaimed at process exit instead
        if self._owns:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# Payload packing
# ---------------------------------------------------------------------------
def pack_payload(ring: Optional[SlotRing], payload, trace=None):
    """Pack one work-item payload for the control queue.

    A bare ``ndarray`` payload — or the leading ``ndarray`` of a tuple
    payload such as ``(images, class_ids)`` — is moved into ``ring`` and
    replaced by its slot descriptor; everything else (small ints, stats
    dicts, prototype snapshots, error strings) stays an inline control
    frame.  With no ring, a full ring, or an oversized tensor the payload is
    shipped inline, i.e. the pre-ring pickle transport is the always-correct
    fallback.

    ``trace`` is optional trace metadata riding the control frame (never a
    ring slot): requests carry a ``(trace_id, span_id)`` context pair,
    results carry ``{"spans": [...]}`` finished in the worker.  ``None``
    (tracing off or request unsampled) emits the exact pre-trace frame
    shapes, so the tracing-off wire format is byte-identical to before.
    """
    if ring is not None:
        if isinstance(payload, np.ndarray):
            descriptor = ring.try_write(payload)
            if descriptor is not None:
                return (_SHM, descriptor) if trace is None \
                    else (_SHM, descriptor, trace)
        elif (isinstance(payload, tuple) and payload
              and isinstance(payload[0], np.ndarray)):
            descriptor = ring.try_write(payload[0])
            if descriptor is not None:
                return (_SHM_TUPLE, descriptor, payload[1:]) if trace is None \
                    else (_SHM_TUPLE, descriptor, payload[1:], trace)
    return (_INLINE, payload) if trace is None else (_INLINE, payload, trace)


def payload_trace(packed):
    """The optional trace field of a packed frame (``None`` when absent).

    Raw (never-packed) payloads and pre-trace frames return ``None``, so
    queue-generic consumers can probe any frame safely.
    """
    if (isinstance(packed, tuple) and packed
            and isinstance(packed[0], str) and packed[0] in _MARKERS):
        base = _BASE_LEN[packed[0]]
        if len(packed) > base:
            return packed[base]
    return None


def unpack_payload(ring: Optional[SlotRing], packed, copy: bool = False):
    """Unpack a payload produced by :func:`pack_payload`.

    Returns ``(payload, held_slots)``.  With ``copy=False`` shared-memory
    tensors come back as zero-copy views and ``held_slots`` lists the slot
    ids the caller must :meth:`SlotRing.free` once the views are consumed;
    with ``copy=True`` the tensor is copied out and its slot freed before
    returning (``held_slots`` is empty) — the right mode when the payload
    outlives the call, e.g. a result handed to a caller's future.

    Raw (never-packed) payloads pass through untouched, so queue-generic
    consumers — like the worker main loop driven by plain queues in tests —
    keep working without a ring.  A trailing trace field is ignored here;
    read it with :func:`payload_trace` before unpacking.
    """
    if not (isinstance(packed, tuple) and packed
            and isinstance(packed[0], str) and packed[0] in _MARKERS):
        return packed, ()
    kind = packed[0]
    if kind == _INLINE:
        return packed[1], ()
    descriptor = packed[1]
    view = ring.read(descriptor)
    if copy:
        tensor = view.copy()
        ring.free(descriptor[0])
        held = ()
    else:
        tensor = view
        held = (descriptor[0],)
    if kind == _SHM:
        return tensor, held
    return (tensor, *packed[2]), held
