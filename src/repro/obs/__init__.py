"""Zero-dependency telemetry for the runtime and serving stack.

Three pieces, each usable alone, designed to thread through every layer:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named counters,
  gauges and fixed-bucket histograms that aggregate lock-free per thread and
  merge on scrape; the single quantile implementation
  (:func:`quantile_from_counts`) every percentile surface shares.
* :mod:`repro.obs.trace` — sampled request tracing: a :class:`Tracer` makes
  one sampling decision at the root span, span context crosses process
  boundaries inside the serving transport's control frames, and finished
  spans export as JSON lines.  One traced request yields the tree
  ``server.submit → batcher.coalesce → shard.dispatch → worker.execute →
  engine.run`` across coordinator and worker processes.
* :mod:`repro.obs.planprof` — opt-in per-op plan profiling: wall time and
  bytes moved per compiled step, the per-kernel baseline for backend work
  (``python -m repro.runtime.plan_stats --profile``).

``python -m repro.obs`` runs a self-contained demo: it serves a tiny model
with tracing at 100%, prints the metrics scrape and the span tree, and
writes a sample trace JSONL (the CI serve-smoke artifact).
"""

from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    IntHistogram,
    MetricsRegistry,
    quantile_from_counts,
)
from .planprof import PlanProfiler
from .trace import (
    InMemorySpanExporter,
    JsonlSpanExporter,
    Span,
    Tracer,
    ambient_span,
    read_jsonl_spans,
    span_tree,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "IntHistogram",
    "MetricsRegistry",
    "quantile_from_counts",
    "DEFAULT_TIME_BUCKETS",
    "PlanProfiler",
    "Tracer",
    "Span",
    "InMemorySpanExporter",
    "JsonlSpanExporter",
    "ambient_span",
    "read_jsonl_spans",
    "span_tree",
]
