"""Table II — FSCIL session accuracy on the synthetic CIFAR100 stand-in.

Trains O-FSCIL end to end on the laptop-scale profile (60 base classes, eight
5-way 5-shot sessions) for two MobileNetV2 stride variants, evaluates the
float and int8-quantized models as well as the optional FCR fine-tuning, and
prints a Table II-shaped comparison (including the raw-pixel NCM floor and
the paper's published averages for reference).

Absolute accuracies are not expected to match the paper (the substrate is a
width-reduced backbone on synthetic 16x16 images); the *shape* is what the
assertions check: O-FSCIL beats the baselines, accuracy decays monotonically
(on average) over sessions, int8 tracks fp32, and the larger x4 stride
variant is at least as good as the x1 variant.
"""

import copy

import pytest

from repro.core import (
    FinetuneConfig,
    PAPER_TABLE2_REFERENCE,
    evaluate_fscil,
    format_session_table,
    raw_pixel_ncm,
)
from repro.quant import QuantizationConfig, quantize_ofscil_model

# Full-scale benchmark reproduction: minutes of training; excluded from
# the default (fast) suite by the `slow` marker — run with `pytest -m slow`.
pytestmark = pytest.mark.slow

BACKBONES = {
    "mobilenetv2_tiny": "MobileNetV2 (x1 strides)",
    "mobilenetv2_x4_tiny": "MobileNetV2 x4 strides",
}


@pytest.fixture(scope="module")
def table2_results(trained_models, laptop_benchmark):
    """Train/evaluate every Table II configuration once for all tests."""
    results = {}
    for backbone in BACKBONES:
        model = trained_models(backbone)
        results[(backbone, "fp32")] = evaluate_fscil(
            model, laptop_benchmark, method="O-FSCIL", backbone=backbone)

    # Optional FCR fine-tuning on the larger variant ("+ FT" row).
    ft_model = copy.deepcopy(trained_models("mobilenetv2_x4_tiny"))
    results[("mobilenetv2_x4_tiny", "fp32+ft")] = evaluate_fscil(
        ft_model, laptop_benchmark, method="O-FSCIL + FT",
        backbone="mobilenetv2_x4_tiny",
        finetune_config=FinetuneConfig(iterations=40, learning_rate=0.02, seed=0))

    # Int8 deployment quantization of the larger variant.
    quant_model = copy.deepcopy(trained_models("mobilenetv2_x4_tiny"))
    quant_model.backbone.unfreeze()
    quant_model.fcr.unfreeze()
    quant_model, _ = quantize_ofscil_model(
        quant_model, laptop_benchmark.base_train,
        config=QuantizationConfig(qat_pretrain_epochs=1, qat_metalearn_iterations=5,
                                  calibration_batches=4))
    results[("mobilenetv2_x4_tiny", "int8")] = evaluate_fscil(
        quant_model, laptop_benchmark, method="O-FSCIL [int8]",
        backbone="mobilenetv2_x4_tiny")

    results[("pixel", "ncm")] = raw_pixel_ncm(laptop_benchmark)
    return results


def test_table2_session_accuracy(benchmark, table2_results, laptop_benchmark):
    results = benchmark.pedantic(lambda: table2_results, rounds=1, iterations=1)
    ordered = [results[("pixel", "ncm")]]
    ordered += [results[(backbone, "fp32")] for backbone in BACKBONES]
    ordered += [results[("mobilenetv2_x4_tiny", "int8")],
                results[("mobilenetv2_x4_tiny", "fp32+ft")]]
    print("\nTable II — FSCIL session accuracy (synthetic CIFAR100 stand-in)")
    print(format_session_table(ordered))
    print("\nPaper reference averages (real CIFAR100): " +
          ", ".join(f"{method}={record['average']:.2f}%"
                    for method, record in PAPER_TABLE2_REFERENCE.items()))

    x4 = results[("mobilenetv2_x4_tiny", "fp32")]
    x1 = results[("mobilenetv2_tiny", "fp32")]
    ncm = results[("pixel", "ncm")]

    # O-FSCIL beats the raw-pixel floor by a wide margin (paper: learned
    # features are the whole point of the method).
    assert x4.average_accuracy > 1.5 * ncm.average_accuracy
    # The x1 stride plan downsamples a 16x16 laptop-profile input to a 1x1
    # feature map, so that variant trains poorly at this reduced scale (the
    # paper's x1 < x2 < x4 ordering, taken to the extreme); it must still be
    # above chance over the 100 classes.
    assert x1.average_accuracy > 1.0 / laptop_benchmark.protocol.num_classes

    # Session-0 accuracy is the highest and accuracy decays as classes
    # accumulate (the Table II shape).
    assert x4.base_accuracy == max(x4.session_accuracy)
    assert x4.final_accuracy <= x4.base_accuracy

    # Every session stays above chance for the number of seen classes.
    protocol = laptop_benchmark.protocol
    for session, accuracy in enumerate(x4.session_accuracy):
        seen = len(protocol.seen_classes(session))
        assert accuracy > 1.0 / seen


def test_table2_int8_tracks_fp32(table2_results):
    fp32 = table2_results[("mobilenetv2_x4_tiny", "fp32")]
    int8 = table2_results[("mobilenetv2_x4_tiny", "int8")]
    print(f"\nfp32 avg {100 * fp32.average_accuracy:.2f}% vs "
          f"int8 avg {100 * int8.average_accuracy:.2f}%")
    # The paper reports int8 within ~0.3 points of fp32; on the reduced
    # substrate we allow a wider band but quantization must not collapse.
    assert int8.average_accuracy > 0.7 * fp32.average_accuracy


def test_table2_finetuning_does_not_hurt(table2_results):
    fp32 = table2_results[("mobilenetv2_x4_tiny", "fp32")]
    finetuned = table2_results[("mobilenetv2_x4_tiny", "fp32+ft")]
    print(f"\nO-FSCIL avg {100 * fp32.average_accuracy:.2f}% vs "
          f"+FT avg {100 * finetuned.average_accuracy:.2f}%")
    # Paper: FT adds ~0.1-0.2 points.  Require it to stay within a small band
    # of the plain result (it must not destroy the prototypes).
    assert finetuned.average_accuracy > 0.85 * fp32.average_accuracy


def test_table2_stride_variant_ordering(table2_results):
    """The x4 variant (more spatial resolution, more MACs) should not be worse
    than the x1 variant — the compute/accuracy trade-off of Table I/II."""
    x1 = table2_results[("mobilenetv2_tiny", "fp32")]
    x4 = table2_results[("mobilenetv2_x4_tiny", "fp32")]
    assert x4.average_accuracy >= 0.9 * x1.average_accuracy
