"""Reporting helpers: text tables and experiment records."""

from .records import ExperimentRecord, load_records, save_records
from .tables import dict_rows_to_table, format_table, relative_error

__all__ = [
    "format_table",
    "dict_rows_to_table",
    "relative_error",
    "ExperimentRecord",
    "save_records",
    "load_records",
]
