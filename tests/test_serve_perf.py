"""Saturation benchmark: worker-count sweep over the sharded serving stack.

Drives a saturating workload through :class:`repro.serve.Server` at every
worker count in ``WORKER_SWEEP`` (1, 2, 4), recording for each point the
synchronous batch throughput, the async single-request throughput, the
p50/p99 request latency of the dynamic-batcher path, and the admission
shed rate.  The sweep is appended to ``BENCH_serve.json`` at the repository
root (run history, like ``BENCH_runtime.json``), and the multi-worker
scaling over the single-worker baseline is asserted against
``SCALING_FLOOR``.  Every configuration pins one BLAS thread per worker, so
the comparison isolates process-level sharding from library threading.

The scaling assertion needs real hardware parallelism: on a single-core host
(CI sandboxes, cgroup-limited containers) the sweep is still recorded but
the floor is skipped — the slow CI suite runs on multi-core runners where it
is enforced for the largest sweep point the core count supports.

Slow-marked: saturation runs take tens of seconds; the fast suite covers the
serving layer's correctness (including SIGKILL fault injection and shed
semantics) in ``tests/test_serve.py``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import OFSCIL, OFSCILConfig
from repro.report import append_bench_record
from repro.serve import Server, ServerOverloaded

pytestmark = pytest.mark.slow

BACKBONE = "mobilenetv2_x4_tiny"
WORKER_SWEEP = (1, 2, 4)
SCALING_FLOOR = 1.5
SATURATION_SAMPLES = 768
ASYNC_REQUESTS = 256
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"


@pytest.fixture(scope="module")
def bench_model():
    model = OFSCIL.from_registry(BACKBONE, OFSCILConfig(backbone=BACKBONE),
                                 seed=0)
    model.freeze_feature_extractor()
    rng = np.random.default_rng(0)
    shots = rng.standard_normal((40, 3, 16, 16)).astype(np.float32)
    for class_id in range(8):
        model.learn_class(shots[class_id * 5:(class_id + 1) * 5], class_id)
    return model


def _percentile_ms(latencies_s, fraction: float) -> float:
    """Nearest-rank percentile of a latency sample, in milliseconds."""
    ordered = sorted(latencies_s)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered)) - 1))
    return ordered[rank] * 1e3


def _tracing_off_cost_s(iterations: int = 50_000) -> float:
    """Per-request cost of the tracing-off telemetry path, measured directly.

    One serving request with tracing disabled pays: the sampling draw
    (``start_trace`` returning ``None``), the admission counters, and the
    dispatch/latency instruments.  A single request never pays the full
    dispatch set (those are per *batch*), so charging all of them per
    request overestimates — the guard is conservative.  Measuring the
    instrument path in a tight loop, instead of diffing two noisy
    end-to-end runs, keeps the 2% assertion stable on loaded CI hosts.
    """
    from repro.obs.trace import Tracer
    from repro.serve.stats import ServeStats

    tracer = Tracer(sample_rate=0.0)
    stats = ServeStats()
    start = time.perf_counter()
    for _ in range(iterations):
        tracer.start_trace("server.submit")
        stats.observe_submit(3)
        stats.observe_dispatch(8)
        stats.observe_batch_latency(0.004)
    return (time.perf_counter() - start) / iterations


def _sweep_point(model, num_workers: int, images: np.ndarray) -> dict:
    """Measure one worker count: sync throughput + async latency profile."""
    with Server(model, num_workers=num_workers) as server:
        server.predict(images[:64])                    # warm caches + queues

        start = time.perf_counter()
        server.predict(images)
        sync_rate = images.shape[0] / (time.perf_counter() - start)

        # Dynamic batcher under a saturating single-sample request flood;
        # per-request latency is submit -> done-callback (the callback runs
        # at resolution time, so waiting on future N does not inflate the
        # measurement of future N+1).  Requests the admission controller
        # sheds under the flood are counted, not fatal — the shed rate is
        # part of the recorded saturation profile.
        completions = [None] * ASYNC_REQUESTS

        def _stamp(index):
            return lambda future: completions.__setitem__(
                index, time.perf_counter())

        start = time.perf_counter()
        submitted = []
        for index, image in enumerate(images[:ASYNC_REQUESTS]):
            began = time.perf_counter()
            try:
                future = server.submit(image)
            except ServerOverloaded:
                continue
            future.add_done_callback(_stamp(index))
            submitted.append((index, began, future))
        for _, _, future in submitted:
            future.result(timeout=300)
        async_elapsed = time.perf_counter() - start
        latencies = [completions[index] - began
                     for index, began, _ in submitted]
        report = server.stats.as_dict()

    assert max(report["batch_size_histogram"]) > 1, (
        f"no dynamic batching at {num_workers} workers: "
        f"{report['batch_size_histogram']}")
    return {
        "workers": num_workers,
        "sync_samples_per_s": round(sync_rate, 1),
        "async_samples_per_s": round(len(submitted) / async_elapsed, 1),
        "latency_p50_ms": round(_percentile_ms(latencies, 0.50), 2),
        "latency_p99_ms": round(_percentile_ms(latencies, 0.99), 2),
        "requests_shed": report["requests_shed"],
        "shed_rate": round(report["shed_rate"], 4),
    }


def test_worker_sweep_scaling_beats_single_worker(bench_model):
    cores = len(os.sched_getaffinity(0))
    rng = np.random.default_rng(1)
    images = rng.standard_normal(
        (SATURATION_SAMPLES, 3, 16, 16)).astype(np.float32)

    # Sanity: sharding must not change results before we time anything.
    reference = bench_model.runtime_predictor().predict(images[:128])
    with Server(bench_model, num_workers=2) as server:
        np.testing.assert_array_equal(server.predict(images[:128]), reference)

    sweep = [_sweep_point(bench_model, workers, images)
             for workers in WORKER_SWEEP]

    single_rate = sweep[0]["sync_samples_per_s"]
    # Enforce the floor at the largest sweep point the host can actually
    # parallelise; wider points are still recorded for trend tracking.
    enforceable = [point for point in sweep[1:] if point["workers"] <= cores]
    best = max(enforceable or sweep[1:],
               key=lambda point: point["sync_samples_per_s"])
    scaling = best["sync_samples_per_s"] / single_rate

    # Tracing-off telemetry overhead, as a fraction of the *fastest*
    # measured per-request service time of the sweep (fastest = the most
    # overhead-sensitive point).
    fastest_async = max(point["async_samples_per_s"] for point in sweep)
    obs_overhead = _tracing_off_cost_s() * fastest_async

    record = {
        "backbone": BACKBONE,
        "cores": cores,
        "saturation_samples": SATURATION_SAMPLES,
        "async_requests": ASYNC_REQUESTS,
        "sweep": sweep,
        "single_worker_samples_per_s": single_rate,
        "multi_worker_samples_per_s": best["sync_samples_per_s"],
        "multi_workers": best["workers"],
        "scaling": round(scaling, 2),
        "scaling_floor": SCALING_FLOOR,
        "scaling_enforced": cores >= 2 and bool(enforceable),
        "obs_overhead": round(obs_overhead, 5),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    append_bench_record(BENCH_PATH, record)

    assert obs_overhead < 0.02, (
        f"tracing-off telemetry costs {obs_overhead * 100:.2f}% of the "
        f"fastest per-request service time (budget: 2%)")

    if cores < 2:
        pytest.skip(f"only {cores} core(s) available: multi-worker scaling "
                    f"cannot beat a single worker without hardware "
                    f"parallelism (measured {scaling:.2f}x; recorded in "
                    f"{BENCH_PATH.name})")
    assert scaling >= SCALING_FLOOR, (
        f"{best['workers']}-worker serving is only {scaling:.2f}x a single "
        f"worker (required >= {SCALING_FLOOR}x on {cores} cores); see "
        f"{BENCH_PATH}")


def test_serve_bench_record_is_written_and_valid(bench_model):
    # File-order dependency, mirroring test_runtime_perf: guards the
    # BENCH_serve.json artefact contract.
    data = json.loads(BENCH_PATH.read_text())
    record = data["latest"]
    assert record["backbone"] == BACKBONE
    assert [point["workers"] for point in record["sweep"]] \
        == list(WORKER_SWEEP)
    for point in record["sweep"]:
        assert point["sync_samples_per_s"] > 0
        assert point["async_samples_per_s"] > 0
        assert 0 < point["latency_p50_ms"] <= point["latency_p99_ms"]
        assert 0.0 <= point["shed_rate"] <= 1.0
    assert record["single_worker_samples_per_s"] > 0
    assert record["multi_worker_samples_per_s"] > 0
    assert 0.0 <= record["obs_overhead"] < 0.02
    assert data["history"] and data["history"][-1] == record
