"""Ablation study of the O-FSCIL components (Table III).

Each ablation row toggles one or more of the paper's ingredients:

* **AG** — data augmentation + Mixup/CutMix feature interpolation,
* **OR** — feature orthogonality regularization during pretraining,
* **MM** — multi-margin metalearning,
* **CE** — cross-entropy metalearning (the negative control),
* **FT** — per-session on-device FCR fine-tuning.

The rows produced match the structure of Table III: session-0 accuracy,
session-8 (final) accuracy and the session average.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..data.fscil_split import FSCILBenchmark
from .evaluate import FSCILResult
from .pipeline import OFSCILPipeline, PipelineConfig


@dataclass(frozen=True)
class AblationFlags:
    """Which components are enabled for one ablation configuration."""

    augmentation: bool = False
    orthogonality: bool = False
    multi_margin: bool = False
    cross_entropy: bool = False
    finetune: bool = False

    def label(self) -> str:
        parts = []
        if self.augmentation:
            parts.append("AG")
        if self.orthogonality:
            parts.append("OR")
        if self.multi_margin:
            parts.append("MM")
        if self.cross_entropy:
            parts.append("CE")
        if self.finetune:
            parts.append("FT")
        return "+".join(parts) if parts else "baseline"


# The seven rows of Table III, in order.
TABLE3_ROWS: Sequence[AblationFlags] = (
    AblationFlags(),
    AblationFlags(augmentation=True),
    AblationFlags(augmentation=True, orthogonality=True),
    AblationFlags(augmentation=True, multi_margin=True),
    AblationFlags(augmentation=True, orthogonality=True, multi_margin=True),
    AblationFlags(augmentation=True, orthogonality=True, cross_entropy=True),
    AblationFlags(augmentation=True, orthogonality=True, multi_margin=True,
                  finetune=True),
)


@dataclass
class AblationRow:
    flags: AblationFlags
    result: FSCILResult

    def as_dict(self) -> Dict[str, object]:
        return {
            "config": self.flags.label(),
            "AG": self.flags.augmentation,
            "OR": self.flags.orthogonality,
            "MM": self.flags.multi_margin,
            "CE": self.flags.cross_entropy,
            "FT": self.flags.finetune,
            "session_0": self.result.base_accuracy,
            "session_last": self.result.final_accuracy,
            "average": self.result.average_accuracy,
        }


def pipeline_config_for(flags: AblationFlags, base: PipelineConfig) -> PipelineConfig:
    """Translate ablation flags into a concrete pipeline configuration."""
    pretrain_config = replace(base.pretrain,
                              use_augmentation=flags.augmentation,
                              use_feature_interpolation=flags.augmentation,
                              ortho_weight=base.pretrain.ortho_weight
                              if flags.orthogonality else 0.0)
    use_metalearning = flags.multi_margin or flags.cross_entropy
    metalearn_config = replace(base.metalearn,
                               loss="cross_entropy" if flags.cross_entropy
                               else "multi_margin")
    return base.with_overrides(pretrain=pretrain_config,
                               metalearn=metalearn_config,
                               use_metalearning=use_metalearning,
                               use_finetuning=flags.finetune)


def run_ablation(base_config: PipelineConfig,
                 benchmark: Optional[FSCILBenchmark] = None,
                 rows: Sequence[AblationFlags] = TABLE3_ROWS) -> List[AblationRow]:
    """Run every requested ablation configuration and collect the results."""
    results: List[AblationRow] = []
    for flags in rows:
        config = pipeline_config_for(flags, base_config)
        pipeline = OFSCILPipeline(config, benchmark=benchmark)
        outcome = pipeline.run()
        result = outcome.extras.get("fscil_after_finetune", outcome.fscil) \
            if flags.finetune else outcome.fscil
        result.metadata["ablation"] = flags.label()
        results.append(AblationRow(flags=flags, result=result))
    return results


def format_ablation_table(rows: List[AblationRow]) -> str:
    """Render ablation rows as a Table III-style text table."""
    header = ["AG", "OR", "MM", "CE", "FT", "Session 0", "Session last", "Avg"]
    lines = ["  ".join(h.ljust(12) for h in header)]
    lines.append("-" * len(lines[0]))
    for row in rows:
        data = row.as_dict()
        cells = ["x" if data[key] else " " for key in ("AG", "OR", "MM", "CE", "FT")]
        cells += [f"{100 * data['session_0']:.2f}", f"{100 * data['session_last']:.2f}",
                  f"{100 * data['average']:.2f}"]
        lines.append("  ".join(c.ljust(12) for c in cells))
    return "\n".join(lines)
