"""Property-based tests (hypothesis) of the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor

FLOATS = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False,
                   allow_infinity=False, width=32)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=FLOATS)


@settings(max_examples=25, deadline=None)
@given(arrays((3, 4)), arrays((3, 4)))
def test_addition_gradient_is_ones(a, b):
    x, y = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
    (x + y).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(a))
    np.testing.assert_allclose(y.grad, np.ones_like(b))


@settings(max_examples=25, deadline=None)
@given(arrays((3, 4)), arrays((3, 4)))
def test_product_rule(a, b):
    x, y = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
    (x * y).sum().backward()
    np.testing.assert_allclose(x.grad, b, atol=1e-6)
    np.testing.assert_allclose(y.grad, a, atol=1e-6)


@settings(max_examples=20, deadline=None)
@given(arrays((4, 3)), arrays((3, 5)))
def test_matmul_gradient_shapes_and_values(a, b):
    x, y = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
    (x @ y).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones((4, 5)) @ b.T, atol=1e-5)
    np.testing.assert_allclose(y.grad, a.T @ np.ones((4, 5)), atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(arrays((2, 3, 4)))
def test_sum_then_broadcast_recovers_shape(a):
    x = Tensor(a, requires_grad=True)
    x.sum(axis=1).sum().backward()
    assert x.grad.shape == a.shape
    np.testing.assert_allclose(x.grad, np.ones_like(a))


@settings(max_examples=20, deadline=None)
@given(arrays((3, 5)))
def test_softmax_outputs_are_distributions(a):
    out = F.softmax(Tensor(a), axis=-1).data
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(3), atol=1e-5)
    assert np.all(out >= 0)


@settings(max_examples=20, deadline=None)
@given(arrays((4, 6)))
def test_l2_normalize_produces_unit_vectors(a):
    out = F.l2_normalize(Tensor(a + 0.1), axis=-1).data
    norms = np.linalg.norm(out, axis=-1)
    np.testing.assert_allclose(norms, np.ones(4), atol=1e-4)


@settings(max_examples=20, deadline=None)
@given(arrays((3, 4)), st.floats(min_value=0.1, max_value=2.0))
def test_relu_is_idempotent_and_nonnegative(a, scale):
    once = F.relu(Tensor(a * scale)).data
    twice = F.relu(F.relu(Tensor(a * scale))).data
    np.testing.assert_allclose(once, twice)
    assert np.all(once >= 0)


@settings(max_examples=15, deadline=None)
@given(arrays((2, 2, 4, 4)))
def test_global_avg_pool_matches_numpy_mean(a):
    out = F.global_avg_pool2d(Tensor(a)).data
    np.testing.assert_allclose(out, a.mean(axis=(2, 3)), atol=1e-6)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=2, max_value=5))
def test_cosine_similarity_bounded(batch, dim):
    rng = np.random.default_rng(batch * 10 + dim)
    a = Tensor(rng.standard_normal((batch, dim)) + 0.01)
    b = Tensor(rng.standard_normal((batch, dim)) + 0.01)
    sims = F.cosine_similarity(a, b, axis=-1).data
    assert np.all(sims <= 1.0 + 1e-5) and np.all(sims >= -1.0 - 1e-5)


@settings(max_examples=10, deadline=None)
@given(arrays((4, 4)))
def test_gradcheck_holds_for_composite_expression(a):
    x = Tensor(a, requires_grad=True)

    def fn(x):
        # Smooth composite expression (abs/relu kinks are excluded on purpose:
        # the numerical gradient is undefined at those points).
        return (F.sigmoid(x) * x + (x * x + 0.3).sqrt()).mean()

    assert nn.check_gradients(fn, [x], atol=5e-3)
