"""Memory hierarchy placement and DMA transfer model.

A Dory-style deployment places each layer's weights either in the on-chip L2
or, when the network does not fit, in the external L3 memory, and tiles
activations through the shared L1.  This module decides the placement and
computes the DMA cycle cost of moving tensors between levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..models.graph import LayerSpec
from .soc import GAP9Config, MemoryConfig


@dataclass
class TensorPlacement:
    """Where a layer's tensors live before execution."""

    layer_name: str
    weight_level: str            # "L2" or "L3"
    weight_bytes: int
    activation_bytes: int        # input + output footprint
    l1_tiles: int                # number of L1 tiles the layer is split into


@dataclass
class MemoryPlan:
    """Placement of every layer plus aggregate occupancy."""

    placements: List[TensorPlacement] = field(default_factory=list)
    l2_used_bytes: int = 0
    l3_used_bytes: int = 0

    @property
    def layers_in_l3(self) -> int:
        return sum(1 for p in self.placements if p.weight_level == "L3")

    def placement(self, layer_name: str) -> TensorPlacement:
        for placement in self.placements:
            if placement.layer_name == layer_name:
                return placement
        raise KeyError(f"no placement recorded for layer {layer_name!r}")


def plan_memory(layers: List[LayerSpec], config: GAP9Config,
                weight_bits: int = 8, activation_bits: int = 8,
                l2_reserved_bytes: int = 256 * 1024) -> MemoryPlan:
    """Greedy weight placement: fill L2 first, spill the rest to L3.

    ``l2_reserved_bytes`` keeps space in L2 for activations, the explicit
    memory and runtime buffers (matching Dory's default partitioning).
    """
    memory: MemoryConfig = config.memory
    l2_budget = memory.l2_bytes - l2_reserved_bytes
    plan = MemoryPlan()
    l2_used = 0
    l3_used = 0
    for layer in layers:
        weight_bytes = layer.weight_bytes(weight_bits)
        activation_bytes = layer.input_bytes(activation_bits) + layer.output_bytes(activation_bits)
        if weight_bytes and l2_used + weight_bytes <= l2_budget:
            level = "L2"
            l2_used += weight_bytes
        elif weight_bytes:
            level = "L3"
            l3_used += weight_bytes
        else:
            level = "L2"
        tile_bytes = max(activation_bytes // max(memory.l1_bytes, 1), 0)
        l1_tiles = max(1, tile_bytes + (1 if activation_bytes % max(memory.l1_bytes, 1) else 0))
        plan.placements.append(TensorPlacement(
            layer_name=layer.name, weight_level=level, weight_bytes=weight_bytes,
            activation_bytes=activation_bytes, l1_tiles=l1_tiles))
    plan.l2_used_bytes = l2_used
    plan.l3_used_bytes = l3_used
    return plan


def dma_cycles(bytes_to_move: int, bandwidth_bytes_per_cycle: float,
               setup_cycles: int = 0, num_transfers: int = 1) -> float:
    """Cycle cost of DMA-ing ``bytes_to_move`` at the given bandwidth."""
    if bytes_to_move <= 0:
        return 0.0
    return bytes_to_move / max(bandwidth_bytes_per_cycle, 1e-9) + setup_cycles * num_transfers


def layer_dma_cycles(layer: LayerSpec, placement: TensorPlacement,
                     config: GAP9Config, weight_bits: int = 8,
                     activation_bits: int = 8) -> Dict[str, float]:
    """DMA cycles to stage one layer's tensors into the cluster L1.

    Weights travel either L2->L1 or L3->L1 (through L2, at L3 bandwidth);
    input and output activations always cross the L2<->L1 boundary.
    """
    memory = config.memory
    weight_bw = memory.l2_l1_bandwidth if placement.weight_level == "L2" \
        else memory.l3_l2_bandwidth
    weights = dma_cycles(layer.weight_bytes(weight_bits), weight_bw,
                         memory.dma_setup_cycles, placement.l1_tiles)
    activations = dma_cycles(
        layer.input_bytes(activation_bits) + layer.output_bytes(activation_bits),
        memory.l2_l1_bandwidth, memory.dma_setup_cycles, placement.l1_tiles)
    return {"weights": weights, "activations": activations,
            "total": weights + activations}
