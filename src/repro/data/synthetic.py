"""Synthetic structured image dataset standing in for CIFAR100.

The reproduction environment has no network access, so the CIFAR100 images
used by the paper cannot be downloaded.  This module generates a
*CIFAR100-shaped* dataset that preserves the properties the FSCIL experiments
rely on:

* a configurable number of visually distinct classes (default 100),
* small RGB images (default 32x32, reducible for the laptop profile),
* genuine intra-class variation (geometric jitter, appearance jitter, noise)
  so that few-shot prototypes are imperfect and augmentation matters,
* inter-class structure: classes are clusters in a latent space rendered by a
  fixed non-linear texture decoder, so a learned feature extractor
  substantially outperforms raw-pixel nearest-mean classification.

Each class ``c`` owns a latent code ``z_c``; a sample draws
``z = z_c + sigma * eps`` and renders it through a fixed bank of oriented
sinusoidal (Gabor-like) basis functions, followed by a channel-mixing
non-linearity, random translation/flip, brightness/contrast jitter and pixel
noise.  Everything is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .dataset import ArrayDataset


@dataclass
class SyntheticConfig:
    """Configuration of the synthetic CIFAR100 stand-in."""

    num_classes: int = 100
    image_size: int = 32
    channels: int = 3
    latent_dim: int = 48
    num_basis: int = 48
    #: ratio between the intra-class latent jitter norm and the (unit) class
    #: code norm; 0.35 keeps classes clearly clustered yet non-trivial.
    intra_class_std: float = 0.35
    noise_std: float = 0.05
    max_shift: int = 2
    flip_probability: float = 0.5
    brightness_jitter: float = 0.15
    contrast_jitter: float = 0.2
    seed: int = 2024


class SyntheticImageGenerator:
    """Deterministic renderer from class latents to RGB images."""

    def __init__(self, config: Optional[SyntheticConfig] = None):
        self.config = config or SyntheticConfig()
        cfg = self.config
        master = np.random.default_rng(cfg.seed)

        # Class latent codes: unit-norm so classes are angularly separated.
        codes = master.standard_normal((cfg.num_classes, cfg.latent_dim))
        self.class_codes = (codes / np.linalg.norm(codes, axis=1, keepdims=True)
                            ).astype(np.float32)

        # Fixed Gabor-like rendering basis: (num_basis, H, W).
        size = cfg.image_size
        ys, xs = np.meshgrid(np.linspace(-1, 1, size), np.linspace(-1, 1, size),
                             indexing="ij")
        basis = []
        for _ in range(cfg.num_basis):
            freq = master.uniform(0.8, 4.0)
            theta = master.uniform(0.0, np.pi)
            phase = master.uniform(0.0, 2 * np.pi)
            sigma = master.uniform(0.35, 0.9)
            cx, cy = master.uniform(-0.5, 0.5, size=2)
            rot = xs * np.cos(theta) + ys * np.sin(theta)
            envelope = np.exp(-(((xs - cx) ** 2 + (ys - cy) ** 2) / (2 * sigma ** 2)))
            basis.append(envelope * np.sin(2 * np.pi * freq * rot + phase))
        self.basis = np.stack(basis).astype(np.float32)

        # Latent -> basis-amplitude map (per channel) and channel mixing.
        self.latent_to_basis = master.standard_normal(
            (cfg.channels, cfg.latent_dim, cfg.num_basis)).astype(np.float32)
        self.latent_to_basis /= np.sqrt(cfg.latent_dim)
        self.channel_bias = master.uniform(-0.2, 0.2, size=cfg.channels).astype(np.float32)

    # ------------------------------------------------------------------
    def render(self, latents: np.ndarray) -> np.ndarray:
        """Render a batch of latent codes into images in ``[0, 1]``.

        Args:
            latents: ``(N, latent_dim)`` array.

        Returns:
            ``(N, C, H, W)`` float32 images.
        """
        amplitudes = np.einsum("nl,clb->ncb", latents, self.latent_to_basis)
        images = np.einsum("ncb,bhw->nchw", amplitudes, self.basis)
        images = np.tanh(images + self.channel_bias[None, :, None, None])
        return ((images + 1.0) * 0.5).astype(np.float32)

    def sample_class(self, class_id: int, count: int,
                     rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` images of ``class_id`` with full nuisance variation."""
        cfg = self.config
        eps = rng.standard_normal((count, cfg.latent_dim)).astype(np.float32)
        # Scale the jitter so its expected norm is intra_class_std relative to
        # the unit-norm class code, independently of the latent dimension.
        jitter = cfg.intra_class_std * eps / np.sqrt(cfg.latent_dim)
        latents = self.class_codes[class_id][None, :] + jitter
        images = self.render(latents)

        # Geometric jitter: random integer translation and horizontal flip.
        for index in range(count):
            shift_y, shift_x = rng.integers(-cfg.max_shift, cfg.max_shift + 1, size=2)
            images[index] = np.roll(images[index], (shift_y, shift_x), axis=(1, 2))
            if rng.random() < cfg.flip_probability:
                images[index] = images[index][:, :, ::-1]

        # Appearance jitter: brightness / contrast.
        brightness = rng.uniform(-cfg.brightness_jitter, cfg.brightness_jitter,
                                 size=(count, 1, 1, 1)).astype(np.float32)
        contrast = rng.uniform(1.0 - cfg.contrast_jitter, 1.0 + cfg.contrast_jitter,
                               size=(count, 1, 1, 1)).astype(np.float32)
        mean = images.mean(axis=(1, 2, 3), keepdims=True)
        images = (images - mean) * contrast + mean + brightness

        # Pixel noise.
        images = images + rng.standard_normal(images.shape).astype(np.float32) * cfg.noise_std
        return np.clip(images, 0.0, 1.0)

    def generate(self, samples_per_class: int, seed: int = 0,
                 class_ids: Optional[np.ndarray] = None) -> ArrayDataset:
        """Generate a labelled dataset with ``samples_per_class`` per class."""
        cfg = self.config
        class_ids = np.arange(cfg.num_classes) if class_ids is None else np.asarray(class_ids)
        rng = np.random.default_rng(seed)
        images, labels = [], []
        for class_id in class_ids:
            images.append(self.sample_class(int(class_id), samples_per_class, rng))
            labels.append(np.full(samples_per_class, class_id, dtype=np.int64))
        return ArrayDataset(np.concatenate(images), np.concatenate(labels))


def normalize_images(images: np.ndarray, mean: Optional[np.ndarray] = None,
                     std: Optional[np.ndarray] = None) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Channel-wise standardization; returns (normalized, mean, std)."""
    if mean is None:
        mean = images.mean(axis=(0, 2, 3), keepdims=True)
    if std is None:
        std = images.std(axis=(0, 2, 3), keepdims=True) + 1e-6
    return ((images - mean) / std).astype(np.float32), mean, std
