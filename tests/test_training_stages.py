"""Pretraining, metalearning and on-device FCR fine-tuning."""

import numpy as np
import pytest

from repro.core import (
    FinetuneConfig,
    MetalearnConfig,
    OFSCIL,
    OFSCILConfig,
    PretrainConfig,
    evaluate_classifier,
    finetune_fcr,
    metalearn,
    pretrain,
)

BACKBONE = "mobilenetv2_x4_tiny"


def build_model(seed=0):
    return OFSCIL.from_registry(BACKBONE, OFSCILConfig(backbone=BACKBONE), seed=seed)


class TestPretrain:
    @pytest.fixture(scope="class")
    def pretrained(self, tiny_benchmark):
        model = build_model(seed=11)
        result = pretrain(model.backbone, model.fcr, tiny_benchmark.base_train,
                          num_classes=tiny_benchmark.protocol.base_classes,
                          config=PretrainConfig(epochs=5, batch_size=32,
                                                learning_rate=0.1, seed=0))
        return model, result

    def test_history_has_one_entry_per_epoch(self, pretrained):
        _, result = pretrained
        assert len(result.history) == 5
        assert {"epoch", "loss", "accuracy", "lr"} <= set(result.history[0])

    def test_loss_decreases(self, pretrained):
        _, result = pretrained
        assert result.history[-1]["loss"] < result.history[0]["loss"]

    def test_training_accuracy_improves_over_chance(self, pretrained, tiny_benchmark):
        _, result = pretrained
        chance = 1.0 / tiny_benchmark.protocol.base_classes
        assert result.final_accuracy > chance

    def test_classifier_returned_and_evaluable(self, pretrained, tiny_benchmark):
        model, result = pretrained
        assert result.classifier is not None
        accuracy = evaluate_classifier(model.backbone, model.fcr, result.classifier,
                                       tiny_benchmark.test_upto(0))
        assert 0.0 <= accuracy <= 1.0

    def test_modules_left_in_eval_mode(self, pretrained):
        model, _ = pretrained
        assert not model.backbone.training
        assert not model.fcr.training

    def test_reusing_classifier(self, tiny_benchmark):
        model = build_model(seed=12)
        config = PretrainConfig(epochs=1, batch_size=32, seed=0)
        first = pretrain(model.backbone, model.fcr, tiny_benchmark.base_train,
                         tiny_benchmark.protocol.base_classes, config)
        second = pretrain(model.backbone, model.fcr, tiny_benchmark.base_train,
                          tiny_benchmark.protocol.base_classes, config,
                          classifier=first.classifier)
        assert second.classifier is first.classifier

    def test_ablation_flags_change_behaviour(self, tiny_benchmark):
        """Disabling augmentation/orthogonality must not crash and should give
        a different training trajectory."""
        model_a, model_b = build_model(seed=13), build_model(seed=13)
        base = dict(epochs=1, batch_size=32, seed=0)
        result_a = pretrain(model_a.backbone, model_a.fcr, tiny_benchmark.base_train,
                            tiny_benchmark.protocol.base_classes,
                            PretrainConfig(**base))
        result_b = pretrain(model_b.backbone, model_b.fcr, tiny_benchmark.base_train,
                            tiny_benchmark.protocol.base_classes,
                            PretrainConfig(use_augmentation=False,
                                           use_feature_interpolation=False,
                                           ortho_weight=0.0, **base))
        assert result_a.final_loss != pytest.approx(result_b.final_loss, rel=1e-6)


class TestMetalearn:
    @pytest.fixture(scope="class")
    def metalearned(self, tiny_benchmark):
        model = build_model(seed=21)
        pretrain(model.backbone, model.fcr, tiny_benchmark.base_train,
                 tiny_benchmark.protocol.base_classes,
                 PretrainConfig(epochs=3, batch_size=32, learning_rate=0.1,
                                use_feature_interpolation=False, seed=0))
        result = metalearn(model.backbone, model.fcr, tiny_benchmark.base_train,
                           MetalearnConfig(iterations=6, meta_shots=3,
                                           queries_per_class=2, seed=0))
        return model, result

    def test_history_length(self, metalearned):
        _, result = metalearned
        assert len(result.history) == 6

    def test_losses_are_finite_and_nonnegative(self, metalearned):
        _, result = metalearned
        losses = [entry["loss"] for entry in result.history]
        assert all(np.isfinite(losses)) and all(loss >= 0 for loss in losses)

    def test_episode_uses_all_base_classes_by_default(self, metalearned, tiny_benchmark):
        _, result = metalearned
        assert result.history[0]["episode_classes"] == tiny_benchmark.protocol.base_classes

    def test_classes_per_episode_subsampling(self, tiny_benchmark):
        model = build_model(seed=22)
        result = metalearn(model.backbone, model.fcr, tiny_benchmark.base_train,
                           MetalearnConfig(iterations=2, meta_shots=2,
                                           queries_per_class=1,
                                           classes_per_episode=4, seed=0))
        assert result.history[0]["episode_classes"] == 4

    def test_cross_entropy_variant_runs(self, tiny_benchmark):
        model = build_model(seed=23)
        result = metalearn(model.backbone, model.fcr, tiny_benchmark.base_train,
                           MetalearnConfig(iterations=2, meta_shots=2,
                                           queries_per_class=1,
                                           loss="cross_entropy", seed=0))
        assert len(result.history) == 2

    def test_unknown_loss_raises(self, tiny_benchmark):
        model = build_model(seed=24)
        with pytest.raises(ValueError):
            metalearn(model.backbone, model.fcr, tiny_benchmark.base_train,
                      MetalearnConfig(iterations=1, loss="hinge"))

    def test_metalearning_updates_parameters(self, tiny_benchmark):
        model = build_model(seed=25)
        before = model.fcr.linear.weight.data.copy()
        metalearn(model.backbone, model.fcr, tiny_benchmark.base_train,
                  MetalearnConfig(iterations=2, meta_shots=2, queries_per_class=1,
                                  learning_rate=0.05, seed=0))
        assert not np.allclose(before, model.fcr.linear.weight.data)


class TestFinetune:
    @pytest.fixture()
    def model_with_classes(self, tiny_benchmark):
        model = build_model(seed=31)
        model.learn_base_session(tiny_benchmark.base_train, max_per_class=5)
        return model

    def test_requires_learned_classes(self):
        model = build_model(seed=32)
        with pytest.raises(RuntimeError):
            finetune_fcr(model, FinetuneConfig(iterations=1))

    def test_history_and_loss_decrease(self, model_with_classes):
        result = finetune_fcr(model_with_classes,
                              FinetuneConfig(iterations=30, learning_rate=0.05,
                                             sub_batch_size=4, seed=0))
        assert len(result.history) == 30
        first = np.mean([h["loss"] for h in result.history[:5]])
        last = np.mean([h["loss"] for h in result.history[-5:]])
        assert last < first

    def test_prototypes_recomputed_with_updated_fcr(self, model_with_classes):
        class_id = model_with_classes.memory.class_ids[0]
        before = model_with_classes.memory.prototype(class_id).copy()
        finetune_fcr(model_with_classes,
                     FinetuneConfig(iterations=20, learning_rate=0.05, seed=0))
        after = model_with_classes.memory.prototype(class_id)
        assert not np.allclose(before, after)

    def test_bipolar_prototype_update_mode(self, model_with_classes):
        finetune_fcr(model_with_classes,
                     FinetuneConfig(iterations=5, update_prototypes="bipolar", seed=0))
        prototype = model_with_classes.memory.prototype(
            model_with_classes.memory.class_ids[0])
        assert set(np.unique(prototype)) <= {-1.0, 1.0}

    def test_none_update_mode_keeps_prototypes(self, model_with_classes):
        class_id = model_with_classes.memory.class_ids[0]
        before = model_with_classes.memory.prototype(class_id).copy()
        finetune_fcr(model_with_classes,
                     FinetuneConfig(iterations=5, update_prototypes="none", seed=0))
        np.testing.assert_array_equal(before, model_with_classes.memory.prototype(class_id))

    def test_mse_loss_variant(self, model_with_classes):
        result = finetune_fcr(model_with_classes,
                              FinetuneConfig(iterations=5, loss="mse", seed=0))
        assert np.isfinite(result.final_loss)

    def test_invalid_options_raise(self, model_with_classes):
        with pytest.raises(ValueError):
            finetune_fcr(model_with_classes, FinetuneConfig(iterations=1, loss="bad"))
        with pytest.raises(ValueError):
            finetune_fcr(model_with_classes,
                         FinetuneConfig(iterations=1, update_prototypes="bad"))

    def test_backbone_untouched_by_finetune(self, model_with_classes):
        before = {name: p.data.copy()
                  for name, p in model_with_classes.backbone.named_parameters()}
        finetune_fcr(model_with_classes, FinetuneConfig(iterations=5, seed=0))
        for name, param in model_with_classes.backbone.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])

    def test_improves_alignment_with_bipolar_targets(self, model_with_classes):
        from repro.core.explicit_memory import bipolarize
        class_ids = sorted(model_with_classes.activation_memory)
        activations = np.stack([model_with_classes.activation_memory[c]
                                for c in class_ids])
        targets = bipolarize(model_with_classes.memory.prototype_matrix(class_ids)[0])

        def mean_cosine():
            projected = model_with_classes.project(activations)
            num = (projected * targets).sum(axis=1)
            den = np.linalg.norm(projected, axis=1) * np.linalg.norm(targets, axis=1)
            return float((num / den).mean())

        before = mean_cosine()
        finetune_fcr(model_with_classes,
                     FinetuneConfig(iterations=60, learning_rate=0.05,
                                    update_prototypes="none", seed=0))
        assert mean_cosine() > before
