"""ArrayDataset, DataLoader and the FSCIL split protocol."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DataLoader,
    FSCILProtocol,
    build_protocol,
    build_synthetic_fscil,
    split_dataset,
    train_test_split,
)


def toy_dataset(num_classes=4, per_class=6, seed=0):
    rng = np.random.default_rng(seed)
    images = rng.uniform(0, 1, (num_classes * per_class, 3, 4, 4)).astype(np.float32)
    labels = np.repeat(np.arange(num_classes), per_class)
    return ArrayDataset(images, labels)


class TestArrayDataset:
    def test_length_and_indexing(self):
        dataset = toy_dataset()
        assert len(dataset) == 24
        image, label = dataset[3]
        assert image.shape == (3, 4, 4)
        assert label == 0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros(4))

    def test_classes_and_num_classes(self):
        dataset = toy_dataset()
        assert dataset.num_classes == 4
        np.testing.assert_array_equal(dataset.classes, [0, 1, 2, 3])

    def test_filter_classes(self):
        subset = toy_dataset().filter_classes([1, 3])
        assert set(subset.labels.tolist()) == {1, 3}
        assert len(subset) == 12

    def test_sample_per_class(self):
        dataset = toy_dataset()
        sampled = dataset.sample_per_class(2, np.random.default_rng(0))
        assert len(sampled) == 8
        counts = np.bincount(sampled.labels)
        np.testing.assert_array_equal(counts, [2, 2, 2, 2])

    def test_sample_per_class_insufficient_raises(self):
        with pytest.raises(ValueError):
            toy_dataset(per_class=1).sample_per_class(3, np.random.default_rng(0))

    def test_subset_and_concat(self):
        dataset = toy_dataset()
        first = dataset.subset([0, 1, 2])
        combined = first.concat(dataset.subset([3, 4]))
        assert len(combined) == 5

    def test_train_test_split_keeps_counts(self):
        train, test = train_test_split(toy_dataset(), test_per_class=2,
                                       rng=np.random.default_rng(0))
        assert len(test) == 8
        assert len(train) == 16
        np.testing.assert_array_equal(np.bincount(test.labels), [2, 2, 2, 2])


class TestDataLoader:
    def test_batch_shapes(self):
        loader = DataLoader(toy_dataset(), batch_size=5)
        batches = list(loader)
        assert len(batches) == 5           # 24 samples -> 4 full + 1 partial
        assert batches[0][0].shape == (5, 3, 4, 4)
        assert batches[-1][0].shape == (4, 3, 4, 4)

    def test_drop_last(self):
        loader = DataLoader(toy_dataset(), batch_size=5, drop_last=True)
        assert len(list(loader)) == 4
        assert len(loader) == 4

    def test_shuffle_changes_order_but_not_content(self):
        dataset = toy_dataset()
        loader = DataLoader(dataset, batch_size=24, shuffle=True, seed=0)
        images, labels = next(iter(loader))
        assert sorted(labels.tolist()) == sorted(dataset.labels.tolist())
        assert not np.array_equal(labels, dataset.labels)

    def test_no_shuffle_preserves_order(self):
        dataset = toy_dataset()
        _, labels = next(iter(DataLoader(dataset, batch_size=24)))
        np.testing.assert_array_equal(labels, dataset.labels)


class TestFSCILProtocol:
    def test_paper_protocol_shape(self):
        protocol = build_protocol("paper")
        assert protocol.base_classes == 60
        assert protocol.ways == 5 and protocol.shots == 5
        assert protocol.num_sessions == 8
        assert protocol.total_sessions == 9

    def test_session_classes_are_disjoint_and_cover_everything(self):
        protocol = build_protocol("test")
        seen = set()
        for session in range(protocol.num_sessions + 1):
            classes = set(protocol.session_classes(session).tolist())
            assert not (classes & seen)
            seen |= classes
        assert seen == set(range(protocol.base_classes +
                                 protocol.ways * protocol.num_sessions))

    def test_seen_classes_grow_monotonically(self):
        protocol = build_protocol("test")
        previous = set()
        for session in range(protocol.num_sessions + 1):
            current = set(protocol.seen_classes(session).tolist())
            assert previous <= current
            previous = current

    def test_invalid_protocol_raises(self):
        with pytest.raises(ValueError):
            FSCILProtocol(num_classes=10, base_classes=8, ways=5, num_sessions=3)

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            build_protocol("imaginary")

    def test_overrides(self):
        protocol = build_protocol("test", ways=2, num_sessions=3)
        assert protocol.ways == 2 and protocol.num_sessions == 3


class TestBenchmarkConstruction:
    @pytest.fixture(scope="class")
    def fscil_benchmark(self):
        return build_synthetic_fscil("test", seed=1)

    def test_base_session_only_contains_base_classes(self, fscil_benchmark):
        base_classes = set(fscil_benchmark.protocol.session_classes(0).tolist())
        assert set(fscil_benchmark.base_train.labels.tolist()) <= base_classes

    def test_incremental_sessions_have_exact_shots(self, fscil_benchmark):
        for session in fscil_benchmark.sessions:
            counts = {c: int((session.support.labels == c).sum())
                      for c in session.class_ids}
            assert all(count == fscil_benchmark.protocol.shots for count in counts.values())

    def test_support_classes_match_protocol(self, fscil_benchmark):
        for session in fscil_benchmark.sessions:
            expected = set(fscil_benchmark.protocol.session_classes(session.index).tolist())
            assert set(session.support.labels.tolist()) == expected

    def test_test_upto_grows_with_sessions(self, fscil_benchmark):
        sizes = [len(fscil_benchmark.test_upto(s))
                 for s in range(fscil_benchmark.num_sessions + 1)]
        assert all(a < b for a, b in zip(sizes, sizes[1:]))

    def test_session_index_bounds(self, fscil_benchmark):
        with pytest.raises(IndexError):
            fscil_benchmark.session(0)
        with pytest.raises(IndexError):
            fscil_benchmark.session(fscil_benchmark.num_sessions + 1)

    def test_normalization_applied(self, fscil_benchmark):
        assert fscil_benchmark.normalization is not None
        base = fscil_benchmark.base_train.images
        assert abs(base.mean()) < 0.2

    def test_split_dataset_with_external_data(self):
        protocol = build_protocol("test")
        rng = np.random.default_rng(0)
        images = rng.uniform(0, 1, (protocol.num_classes * 10, 3, 8, 8)).astype(np.float32)
        labels = np.repeat(np.arange(protocol.num_classes), 10)
        train = ArrayDataset(images, labels)
        test = ArrayDataset(images.copy(), labels.copy())
        split = split_dataset(protocol, train, test)
        assert split.num_sessions == protocol.num_sessions
        assert len(split.sessions) == protocol.num_sessions
