"""Capped exponential backoff with jitter for the shard supervisor.

Respawning a crashed worker immediately is the wrong move twice over: a
crash caused by transient pressure (OOM, a full disk, a saturated host)
recurs instantly, and a pool of shards all dying to the same cause would
respawn in lockstep — the classic thundering-herd retry.  The supervisor
therefore waits ``base * multiplier**(attempt-1)`` seconds, capped at
``cap``, and *jitters* the wait downward by up to ``jitter`` of its span so
simultaneous respawns decorrelate.

The schedule object owns its RNG so tests can seed it and assert the exact
delays the supervisor will use — determinism is what makes the crash-loop
regression test exact instead of sleep-and-hope.
"""

from __future__ import annotations

import random
from typing import Optional

#: Default first-retry delay (seconds).
DEFAULT_BASE_S = 0.25

#: Default delay cap (seconds): respawn attempts never wait longer than
#: this, so a recovering-but-flaky shard rejoins within a bounded window.
DEFAULT_CAP_S = 5.0

#: Default per-attempt growth factor.
DEFAULT_MULTIPLIER = 2.0

#: Default jitter fraction: each delay is drawn uniformly from
#: ``[delay * (1 - jitter), delay]``.
DEFAULT_JITTER = 0.5


class BackoffSchedule:
    """Deterministic-under-seed capped exponential backoff with jitter."""

    def __init__(self, base_s: float = DEFAULT_BASE_S,
                 cap_s: float = DEFAULT_CAP_S,
                 multiplier: float = DEFAULT_MULTIPLIER,
                 jitter: float = DEFAULT_JITTER,
                 seed: Optional[int] = None):
        if base_s <= 0:
            raise ValueError("base_s must be positive")
        if cap_s < base_s:
            raise ValueError("cap_s must be >= base_s")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1 (backoff never "
                             "shrinks with attempts)")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.base_s = float(base_s)
        self.cap_s = float(cap_s)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        self._rng = random.Random(seed)

    def raw_delay(self, attempt: int) -> float:
        """The un-jittered delay for ``attempt`` (1-based), capped."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        return min(self.cap_s,
                   self.base_s * self.multiplier ** (attempt - 1))

    def delay(self, attempt: int) -> float:
        """The jittered delay for ``attempt``: uniform in
        ``[raw * (1 - jitter), raw]`` (jitter pulls *down* only, so the
        cap is a true upper bound on every wait)."""
        raw = self.raw_delay(attempt)
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 - self.jitter * self._rng.random())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BackoffSchedule(base_s={self.base_s}, cap_s={self.cap_s}, "
                f"multiplier={self.multiplier}, jitter={self.jitter})")
