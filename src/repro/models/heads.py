"""Projection and classification heads of O-FSCIL.

* :class:`FullyConnectedReductor` (FCR) projects the backbone embedding
  ``theta_a`` to the prototypical feature ``theta_p``.
* :class:`FullyConnectedClassifier` (FCC) replaces the explicit memory during
  pretraining, turning ``theta_p`` into base-class logits.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor
from .graph import LayerSpec, linear_spec


class FullyConnectedReductor(nn.Module):
    """The FCR: a single affine projection from ``d_a`` to ``d_p`` features.

    The paper keeps the FCR frozen after metalearning; it may optionally be
    fine-tuned on device (Section V-B), which is handled by
    :mod:`repro.core.finetune`.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.linear = nn.Linear(in_features, out_features, bias=bias, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.linear(x)

    def layer_specs(self) -> List[LayerSpec]:
        return [linear_spec("fcr", self.in_features, self.out_features,
                            bias=self.linear.bias is not None)]


class FullyConnectedClassifier(nn.Module):
    """The FCC used only during pretraining (maps ``theta_p`` to base logits)."""

    def __init__(self, in_features: int, num_classes: int, bias: bool = True,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.in_features = in_features
        self.num_classes = num_classes
        self.linear = nn.Linear(in_features, num_classes, bias=bias, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.linear(x)

    def layer_specs(self) -> List[LayerSpec]:
        return [linear_spec("fcc", self.in_features, self.num_classes,
                            bias=self.linear.bias is not None)]


class CosineClassifier(nn.Module):
    """Cosine-similarity classifier over a fixed or learnable weight matrix.

    Used by the NC-FSCIL-style baseline, where the classifier weights are the
    fixed simplex-ETF prototypes, and by ablations that replace the explicit
    memory with a learnable cosine head.
    """

    def __init__(self, in_features: int, num_classes: int, scale: float = 16.0,
                 learnable: bool = True, weights: Optional[np.ndarray] = None,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.in_features = in_features
        self.num_classes = num_classes
        self.scale = scale
        if weights is None:
            weights = rng.standard_normal((num_classes, in_features)).astype(np.float32)
            weights /= np.linalg.norm(weights, axis=1, keepdims=True) + 1e-12
        self.weight = nn.Parameter(np.asarray(weights, dtype=np.float32),
                                   requires_grad=learnable)

    def forward(self, x: Tensor) -> Tensor:
        sims = F.cosine_similarity_matrix(x, self.weight)
        return sims * self.scale

    def layer_specs(self) -> List[LayerSpec]:
        return [linear_spec("cosine_classifier", self.in_features,
                            self.num_classes, bias=False)]


def simplex_etf(num_classes: int, dim: int, seed: int = 0) -> np.ndarray:
    """Generate a simplex equiangular tight frame of ``num_classes`` vectors.

    Used by the NC-FSCIL-style baseline: classifier prototypes are fixed to
    the vertices of a simplex ETF so that all pairwise angles are equal and
    maximally separated.
    """
    if num_classes > dim + 1:
        # Fall back to a random orthonormal-ish frame when the exact ETF does
        # not exist; this keeps the baseline usable for any (C, d).
        rng = np.random.default_rng(seed)
        frame = rng.standard_normal((num_classes, dim))
        frame /= np.linalg.norm(frame, axis=1, keepdims=True)
        return frame.astype(np.float32)
    rng = np.random.default_rng(seed)
    # Random orthogonal basis of size (dim, num_classes).
    random_matrix = rng.standard_normal((dim, num_classes))
    q, _ = np.linalg.qr(random_matrix)
    identity = np.eye(num_classes)
    ones = np.ones((num_classes, num_classes)) / num_classes
    scale = np.sqrt(num_classes / (num_classes - 1))
    etf = scale * (q @ (identity - ones))
    etf = etf.T  # (num_classes, dim)
    norms = np.linalg.norm(etf, axis=1, keepdims=True)
    return (etf / (norms + 1e-12)).astype(np.float32)
