"""Dory-style deployment of a network graph onto GAP9.

The deployment flow mirrors what the Dory code generator does for the paper:
fold BatchNorm into the preceding convolution, decide for every layer whether
its (int8) weights live in L2 or spill to the external L3, tile activations
through the 128 kB L1, and emit a per-layer execution schedule with cycle and
DMA costs.  The result is consumed by the profiler to produce Table IV and
Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..models.graph import LayerSpec
from .kernels import GraphCost, graph_cycles
from .memory import MemoryPlan, plan_memory
from .soc import GAP9Config


def fold_batchnorm(layers: List[LayerSpec]) -> List[LayerSpec]:
    """Remove standalone BatchNorm layers (folded into the preceding conv).

    Dory folds BN scale/shift into the convolution's requantization step, so
    at deployment time BN costs neither extra MACs nor extra weights beyond
    the per-channel bias already accounted for.
    """
    return [layer for layer in layers if layer.op_type != "bn"]


@dataclass
class DeploymentPlan:
    """A network deployed onto GAP9: memory placement + execution schedule."""

    name: str
    layers: List[LayerSpec]
    memory_plan: MemoryPlan
    config: GAP9Config
    weight_bits: int = 8
    activation_bits: int = 8
    costs: Dict[int, GraphCost] = field(default_factory=dict)

    def cost(self, cores: int = 8) -> GraphCost:
        """Cycle cost of one inference at the requested core count (cached)."""
        if cores not in self.costs:
            self.costs[cores] = graph_cycles(self.layers, cores, self.config,
                                             self.memory_plan,
                                             self.weight_bits,
                                             self.activation_bits)
        return self.costs[cores]

    # ------------------------------------------------------------------
    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def weight_bytes(self) -> int:
        return sum(layer.weight_bytes(self.weight_bits) for layer in self.layers)

    def latency_ms(self, cores: int = 8) -> float:
        return self.config.cycles_to_ms(self.cost(cores).total_cycles)

    def macs_per_cycle(self, cores: int = 8) -> float:
        return self.cost(cores).macs_per_cycle

    def utilization(self, cores: int = 8) -> Dict[str, float]:
        """Compute / L3 activity factors used by the power model."""
        cost = self.cost(cores)
        total = cost.total_cycles
        if total <= 0:
            return {"compute": 0.0, "l3": 0.0}
        compute_fraction = min(cost.compute_cycles / total, 1.0)
        l3_cycles = 0.0
        for layer_cost, layer in zip(cost.layers, self.layers):
            placement = self.memory_plan.placement(layer.name)
            if placement.weight_level == "L3":
                l3_cycles += min(layer_cost.dma_cycles, layer_cost.total_cycles)
        return {"compute": compute_fraction, "l3": min(l3_cycles / total, 1.0)}

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "num_layers": len(self.layers),
            "total_macs": self.total_macs,
            "weight_bytes": self.weight_bytes,
            "l2_used_bytes": self.memory_plan.l2_used_bytes,
            "l3_used_bytes": self.memory_plan.l3_used_bytes,
            "layers_in_l3": self.memory_plan.layers_in_l3,
        }


def deploy_graph(name: str, layers: List[LayerSpec],
                 config: Optional[GAP9Config] = None,
                 weight_bits: int = 8, activation_bits: int = 8,
                 fold_bn: bool = True) -> DeploymentPlan:
    """Deploy a layer graph onto GAP9 and return the deployment plan."""
    config = config or GAP9Config()
    layers = fold_batchnorm(layers) if fold_bn else list(layers)
    memory_plan = plan_memory(layers, config, weight_bits, activation_bits)
    return DeploymentPlan(name=name, layers=layers, memory_plan=memory_plan,
                          config=config, weight_bits=weight_bits,
                          activation_bits=activation_bits)


def deploy_backbone(config_name: str, gap9: Optional[GAP9Config] = None,
                    weight_bits: int = 8, activation_bits: int = 8,
                    include_fcr: bool = False) -> DeploymentPlan:
    """Deploy a registered backbone configuration (paper profile) onto GAP9."""
    from ..models.registry import get_config
    backbone_config = get_config(config_name)
    layers = backbone_config.layer_specs(include_fcr=include_fcr)
    return deploy_graph(config_name, layers, gap9, weight_bits, activation_bits)
