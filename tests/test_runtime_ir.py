"""SSA graph IR conformance: round-trips, invariants, rewrites, plan cache.

The optimizer's graph substrate (:mod:`repro.runtime.ir` +
:mod:`repro.runtime.rewrites`) carries the whole bit-exactness contract of
the runtime, so this file pins its load-bearing properties directly:

* ``Graph.from_plan(...).to_plan()`` is lossless — same ops, same register
  names, same attrs, the same array objects — on real backbones and on
  randomly generated DAGs (property test);
* the def-use invariants actually reject malformed plans and illegal
  mutations (``GraphInvariantError``, not silent corruption);
* each rewrite rule's legality precondition holds where it matters (the
  typed quantize∘dequantize identity never fires on untyped registers);
* the pipeline is idempotent and its pass order cannot move an output bit
  (CSE before vs after the fusion group);
* the plan cache in front of the compiler hits for identical configurations,
  revalidates staleness signatures, and snapshots built from cached plans
  restore bit-for-bit.
"""

import dataclasses
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import OFSCIL, OFSCILConfig
from repro.obs import MetricsRegistry
from repro.runtime import (
    BatchedPredictor,
    BufferCache,
    Graph,
    GraphInvariantError,
    InferenceEngine,
    PlanCache,
    compile_backbone,
    eliminate_common_subexpressions,
    fold_identities,
    optimize_plan,
)
from repro.runtime.ir import Value
from repro.runtime.plan import InferencePlan, Step
from repro.runtime.plan_cache import signatures_differ
from repro.runtime.rewrites import (
    FOLD_RULES,
    FUSION_RULES,
    CommonSubexpressionElimination,
    DeadNodeElimination,
    QConvAddSuperfusion,
    run_pipeline,
)
from repro.serve import snapshot_model

sys.path.insert(0, str(Path(__file__).resolve().parent))
from int8_fixtures import (  # noqa: E402
    BACKBONE,
    RESNET_BACKBONE,
    build_quantized_model,
    load_golden,
)


@pytest.fixture(scope="module", params=(BACKBONE, RESNET_BACKBONE))
def int8_case(request):
    golden = load_golden(request.param)
    model, _ = build_quantized_model(request.param)
    return model, golden


def structure(plan: InferencePlan):
    """Comparable structural fingerprint of a plan (arrays by identity)."""
    return [(step.op, step.name, tuple(step.inputs), step.output,
             sorted(step.attrs.items(), key=lambda kv: kv[0]),
             tuple(sorted((key, id(array))
                          for key, array in step.arrays.items())))
            for step in plan.steps]


# ---------------------------------------------------------------------------
# Construction, lowering, invariants
# ---------------------------------------------------------------------------
class TestGraphRoundTrip:
    @pytest.mark.parametrize("mode", ["float32", "int8"])
    def test_backbone_plan_round_trips_losslessly(self, mode):
        if mode == "int8":
            model, _ = build_quantized_model(BACKBONE)
        else:
            model = OFSCIL.from_registry(
                BACKBONE, OFSCILConfig(backbone=BACKBONE), seed=0)
        plan = compile_backbone(model.backbone, mode=mode)
        lowered = Graph.from_plan(plan).to_plan()
        assert structure(lowered) == structure(plan)
        assert lowered.input_register == plan.input_register
        assert lowered.output_register == plan.output_register
        assert lowered.optimized == plan.optimized

    def test_round_trip_executes_bit_identically(self, int8_case):
        model, golden = int8_case
        plan = compile_backbone(model.backbone, mode="int8")
        lowered = Graph.from_plan(plan).to_plan()
        out = InferenceEngine(lowered, optimize=False).run(golden["images"])
        np.testing.assert_array_equal(out, golden["theta_a"])

    def test_type_inference_on_the_int8_plan(self, int8_case):
        model, _ = int8_case
        graph = Graph.from_plan(compile_backbone(model.backbone, mode="int8"))
        graph.validate()
        dtypes = {node.output.name: node.output.dtype
                  for node in graph.nodes}
        ops = {node.output.name: node.op for node in graph.nodes}
        assert graph.input.dtype == "float32"
        for name, op in ops.items():
            if op == "quantize":
                assert dtypes[name] == "int8"
                producer = next(node for node in graph.nodes
                                if node.output.name == name)
                assert producer.output.scale == producer.attrs["scale"]
            elif op in ("dequantize", "requantize", "qconv_dequant"):
                assert dtypes[name] == "float32"
            elif op == "qconv":
                assert dtypes[name] == "int8"
                assert next(node for node in graph.nodes
                            if node.output.name == name).output.scale is None

    def test_read_before_definition_is_rejected(self):
        plan = InferencePlan(
            steps=[Step(op="act", name="a", inputs=("%ghost",), output="%y",
                        attrs={"act": None})],
            output_register="%y")
        with pytest.raises(GraphInvariantError, match="before any step"):
            Graph.from_plan(plan)

    def test_register_redefinition_is_rejected(self):
        steps = [Step(op="act", name="a", inputs=("x",), output="%y",
                      attrs={"act": None}),
                 Step(op="act", name="b", inputs=("x",), output="%y",
                      attrs={"act": None})]
        plan = InferencePlan(steps=steps, output_register="%y")
        with pytest.raises(GraphInvariantError, match="SSA"):
            Graph.from_plan(plan)

    def test_undefined_output_register_is_rejected(self):
        plan = InferencePlan(
            steps=[Step(op="act", name="a", inputs=("x",), output="%y",
                        attrs={"act": None})],
            output_register="%ghost")
        with pytest.raises(GraphInvariantError, match="never"):
            Graph.from_plan(plan)

    def test_use_count_counts_duplicate_edges(self):
        # add reading the same register at both positions = two edges.
        steps = [Step(op="act", name="a", inputs=("x",), output="%y",
                      attrs={"act": None}),
                 Step(op="add", name="s", inputs=("%y", "%y"), output="%z",
                      attrs={"act": None})]
        graph = Graph.from_plan(InferencePlan(steps=steps,
                                              output_register="%z"))
        value = graph.nodes[0].output
        assert graph.use_count(value) == 2
        assert graph.use_count(graph.output) == 1    # the output itself

    def test_erase_node_refuses_live_outputs(self):
        steps = [Step(op="act", name="a", inputs=("x",), output="%y",
                      attrs={"act": None}),
                 Step(op="act", name="b", inputs=("%y",), output="%z",
                      attrs={"act": None})]
        graph = Graph.from_plan(InferencePlan(steps=steps,
                                              output_register="%z"))
        with pytest.raises(GraphInvariantError, match="use"):
            graph.erase_node(graph.nodes[0])

    def test_redirect_uses_refuses_the_graph_output(self):
        steps = [Step(op="act", name="a", inputs=("x",), output="%y",
                      attrs={"act": None})]
        graph = Graph.from_plan(InferencePlan(steps=steps,
                                              output_register="%y"))
        with pytest.raises(GraphInvariantError, match="output"):
            graph.redirect_uses(graph.output, graph.input)

    def test_validate_catches_manual_edge_corruption(self):
        steps = [Step(op="act", name="a", inputs=("x",), output="%y",
                      attrs={"act": None}),
                 Step(op="act", name="b", inputs=("%y",), output="%z",
                      attrs={"act": None})]
        graph = Graph.from_plan(InferencePlan(steps=steps,
                                              output_register="%z"))
        graph.validate()
        graph.nodes[0].output.consumers.clear()     # corrupt an edge list
        with pytest.raises(GraphInvariantError, match="consumer"):
            graph.validate()

    def test_validate_catches_dangling_consumer(self):
        steps = [Step(op="act", name="a", inputs=("x",), output="%y",
                      attrs={"act": None})]
        graph = Graph.from_plan(InferencePlan(steps=steps,
                                              output_register="%y"))
        stray = Value(name="%stray")
        graph.input.consumers.append(
            type(graph.nodes[0])(op="act", name="ghost", inputs=[],
                                 output=stray))
        with pytest.raises(GraphInvariantError):
            graph.validate()


# ---------------------------------------------------------------------------
# Property test: random valid DAGs
# ---------------------------------------------------------------------------
def random_dag_plan(rng, channels=3, depth_range=(3, 10)):
    """A random valid SSA plan over conv/act/add ops on (C, H, W) maps."""
    registers = ["x"]
    steps = []
    depth = int(rng.integers(*depth_range))
    for index in range(depth):
        out = f"%v{index}"
        kind = rng.choice(["conv", "act", "add"])
        if kind == "conv":
            weight = rng.standard_normal(
                (channels, channels, 1, 1)).astype(np.float32)
            steps.append(Step(
                op="conv", name=f"conv{index}",
                inputs=(str(rng.choice(registers)),), output=out,
                arrays={"weight": weight,
                        "bias": rng.standard_normal(channels)
                        .astype(np.float32)},
                attrs={"stride": 1, "padding": 0, "groups": 1,
                       "act": None}))
        elif kind == "act":
            steps.append(Step(
                op="act", name=f"act{index}",
                inputs=(str(rng.choice(registers)),), output=out,
                attrs={"act": "relu" if rng.integers(0, 2) else None}))
        else:
            first, second = rng.choice(registers, size=2)
            steps.append(Step(op="add", name=f"add{index}",
                              inputs=(str(first), str(second)), output=out,
                              attrs={"act": None}))
        registers.append(out)
    return InferencePlan(steps=steps, output_register=registers[-1],
                         name="random-dag")


class TestRandomDagProperty:
    def test_round_trip_is_structurally_identical_and_bit_exact(self, rng):
        for trial in range(25):
            plan = random_dag_plan(rng)
            graph = Graph.from_plan(plan)
            graph.validate()
            lowered = graph.to_plan()
            assert structure(lowered) == structure(plan)
            # And a second promotion of the lowered plan matches the first
            # graph edge for edge.
            again = Graph.from_plan(lowered)
            assert [(n.op, n.name, [v.name for v in n.inputs],
                     n.output.name) for n in again.nodes] == \
                   [(n.op, n.name, [v.name for v in n.inputs],
                     n.output.name) for n in graph.nodes]
            images = rng.standard_normal((2, 3, 5, 5)).astype(np.float32)
            np.testing.assert_array_equal(
                plan.execute(images, BufferCache()),
                lowered.execute(images, BufferCache()))

    def test_optimized_random_dags_stay_bit_exact(self, rng):
        for trial in range(10):
            plan = random_dag_plan(rng)
            optimized = optimize_plan(plan)
            images = rng.standard_normal((2, 3, 5, 5)).astype(np.float32)
            np.testing.assert_array_equal(
                plan.execute(images, BufferCache()),
                optimized.execute(images, BufferCache()))


# ---------------------------------------------------------------------------
# Rewrite rule legality
# ---------------------------------------------------------------------------
class TestRewriteLegality:
    def test_quantize_dequantize_identity_needs_typed_codes(self, rng):
        # Typed case: codes produced by a quantize ARE known to be clamped
        # to [-127, 127]; the round-trip folds and the bits cannot move.
        scale = 0.0625
        steps = [Step(op="quantize", name="q1", inputs=("x",), output="%q",
                      attrs={"scale": scale}),
                 Step(op="dequantize", name="dq", inputs=("%q",),
                      output="%f", attrs={"scale": scale}),
                 Step(op="quantize", name="q2", inputs=("%f",), output="%q2",
                      attrs={"scale": scale}),
                 Step(op="dequantize", name="out", inputs=("%q2",),
                      output="%out", attrs={"scale": scale})]
        plan = InferencePlan(steps=steps, output_register="%out")
        folded = fold_identities(plan)
        assert folded is not plan
        ops = [step.op for step in folded.steps]
        assert ops.count("quantize") == 1
        x = (rng.standard_normal((4, 3, 5, 5)) * 3).astype(np.float32)
        np.testing.assert_array_equal(plan.execute(x, BufferCache()),
                                      folded.execute(x, BufferCache()))

    def test_untyped_input_codes_never_fold(self):
        # The raw plan input is NOT typed int8 — it could carry -128, which
        # the quantize clamp would move to -127 — so the identity must not
        # fire even though the scales match.
        scale = 0.0625
        steps = [Step(op="dequantize", name="dq", inputs=("x",), output="%f",
                      attrs={"scale": scale}),
                 Step(op="quantize", name="q", inputs=("%f",), output="%q",
                      attrs={"scale": scale}),
                 Step(op="dequantize", name="out", inputs=("%q",),
                      output="%out", attrs={"scale": scale})]
        plan = InferencePlan(steps=steps, output_register="%out")
        assert fold_identities(plan) is plan

    def test_act_folds_into_producer_and_keeps_the_register(self, rng):
        weight = rng.standard_normal((3, 3, 1, 1)).astype(np.float32)
        steps = [Step(op="conv", name="conv", inputs=("x",), output="%c",
                      arrays={"weight": weight,
                              "bias": np.zeros(3, dtype=np.float32)},
                      attrs={"stride": 1, "padding": 0, "groups": 1,
                             "act": None}),
                 Step(op="act", name="relu", inputs=("%c",), output="%r",
                      attrs={"act": "relu"}),
                 Step(op="global_pool", name="pool", inputs=("%r",),
                      output="%p")]
        plan = InferencePlan(steps=steps, output_register="%p")
        folded = fold_identities(plan)
        assert [step.op for step in folded.steps] == ["conv", "global_pool"]
        conv = folded.steps[0]
        assert conv.attrs["act"] == "relu"
        assert conv.output == "%r"          # the act's register survives
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        np.testing.assert_array_equal(plan.execute(x, BufferCache()),
                                      folded.execute(x, BufferCache()))

    def test_cse_merges_equal_dequantizes_across_a_fork(self, rng):
        steps = [Step(op="quantize", name="q", inputs=("x",), output="%q",
                      attrs={"scale": 0.125}),
                 Step(op="dequantize", name="left", inputs=("%q",),
                      output="%l", attrs={"scale": 0.125}),
                 Step(op="dequantize", name="right", inputs=("%q",),
                      output="%r", attrs={"scale": 0.125}),
                 Step(op="add", name="join", inputs=("%l", "%r"),
                      output="%s", attrs={"act": None})]
        plan = InferencePlan(steps=steps, output_register="%s")
        merged = eliminate_common_subexpressions(plan)
        assert [step.op for step in merged.steps].count("dequantize") == 1
        assert merged.steps[-1].inputs == ("%l", "%l")
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        np.testing.assert_array_equal(plan.execute(x, BufferCache()),
                                      merged.execute(x, BufferCache()))

    def test_cse_respects_attr_and_array_differences(self, rng):
        steps = [Step(op="quantize", name="q", inputs=("x",), output="%q",
                      attrs={"scale": 0.125}),
                 Step(op="dequantize", name="left", inputs=("%q",),
                      output="%l", attrs={"scale": 0.125}),
                 Step(op="dequantize", name="right", inputs=("%q",),
                      output="%r", attrs={"scale": 0.25}),
                 Step(op="add", name="join", inputs=("%l", "%r"),
                      output="%s", attrs={"act": None})]
        plan = InferencePlan(steps=steps, output_register="%s")
        assert eliminate_common_subexpressions(plan) is plan

    def test_superfusion_requires_a_single_use_conv(self, int8_case):
        # Every qconv_add in the optimized plan consumed a conv whose float
        # output had exactly one use; a conv feeding two branches must stay.
        model, golden = int8_case
        raw = compile_backbone(model.backbone, mode="int8")
        graph = Graph.from_plan(raw)
        run_pipeline(graph)
        for node in graph.nodes:
            assert node.op != "qconv_dequant" or \
                graph.use_count(node.output) >= 1
        out = InferenceEngine(graph.to_plan(), optimize=False) \
            .run(golden["images"])
        np.testing.assert_array_equal(out, golden["theta_a"])

    def test_illegal_rewrites_fail_loudly(self):
        # A rule that lies about legality must be caught by validate().
        class BrokenRule(DeadNodeElimination):
            name = "broken"

            def precondition(self, node, graph):
                return True                  # erase live nodes!

            def rewrite(self, node, graph):
                graph.nodes.remove(node)     # no edge cleanup
                return True

        steps = [Step(op="act", name="a", inputs=("x",), output="%y",
                      attrs={"act": None}),
                 Step(op="act", name="b", inputs=("%y",), output="%z",
                      attrs={"act": None})]
        graph = Graph.from_plan(InferencePlan(steps=steps,
                                              output_register="%z"))
        with pytest.raises(GraphInvariantError):
            BrokenRule().run(graph)


# ---------------------------------------------------------------------------
# Pipeline properties: idempotence and pass-order commutation
# ---------------------------------------------------------------------------
class TestPipelineProperties:
    def test_reoptimization_is_structurally_identical(self, int8_case):
        model, _ = int8_case
        once = optimize_plan(compile_backbone(model.backbone, mode="int8"))
        # Clear the short-circuit flag: the passes themselves must be
        # idempotent, not only guarded by `plan.optimized`.
        twice = optimize_plan(dataclasses.replace(once, optimized=False))
        assert structure(twice) == structure(once)

    def test_cse_order_cannot_move_bits(self, int8_case):
        # CSE before the fusion group vs after it: application counts may
        # differ (that is why the pipeline fixes an order), but bits cannot.
        model, golden = int8_case
        raw = compile_backbone(model.backbone, mode="int8")
        orders = (
            (DeadNodeElimination, CommonSubexpressionElimination)
            + FOLD_RULES + FUSION_RULES
            + (QConvAddSuperfusion, DeadNodeElimination),
            (DeadNodeElimination,) + FOLD_RULES + FUSION_RULES
            + (CommonSubexpressionElimination, QConvAddSuperfusion,
               DeadNodeElimination),
        )
        for rules in orders:
            graph = Graph.from_plan(raw)
            run_pipeline(graph, rules=rules)
            out = InferenceEngine(graph.to_plan(), optimize=False) \
                .run(golden["images"])
            np.testing.assert_array_equal(out, golden["theta_a"])

    def test_fold_fusion_order_cannot_move_bits(self, int8_case):
        model, golden = int8_case
        raw = compile_backbone(model.backbone, mode="int8")
        reordered = ((DeadNodeElimination,) + FUSION_RULES + FOLD_RULES
                     + (CommonSubexpressionElimination, QConvAddSuperfusion,
                        DeadNodeElimination))
        graph = Graph.from_plan(raw)
        run_pipeline(graph, rules=reordered)
        out = InferenceEngine(graph.to_plan(), optimize=False) \
            .run(golden["images"])
        np.testing.assert_array_equal(out, golden["theta_a"])


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------
class TestPlanCache:
    def test_identical_configurations_hit(self, int8_case):
        model, golden = int8_case
        cache = PlanCache()
        first = BatchedPredictor(model, mode="int8", plan_cache=cache)
        reference = first.embed(golden["images"])
        second = BatchedPredictor(model, mode="int8", plan_cache=cache)
        assert second.backbone_engine.plan is first.backbone_engine.plan
        assert second.fcr_engine.plan is first.fcr_engine.plan
        stats = cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 2
        np.testing.assert_array_equal(second.embed(golden["images"]),
                                      reference)

    def test_weight_rebind_invalidates(self, int8_case):
        model, _ = int8_case
        cache = PlanCache()
        first = BatchedPredictor(model, mode="int8", plan_cache=cache)
        plan = first.backbone_engine.plan
        parameter = list(model.backbone.parameters())[0]
        # Rebind to a bit-identical copy: the contents cannot change any
        # output, but the identity-based staleness signature must notice.
        parameter.data = parameter.data.copy()
        second = BatchedPredictor(model, mode="int8", plan_cache=cache)
        assert second.backbone_engine.plan is not plan
        assert cache.invalidations >= 1
        assert len(cache) <= cache.capacity

    def test_lru_eviction_is_bounded(self):
        cache = PlanCache(capacity=1)
        cache.get_or_compile(("a",), [1], lambda: "plan-a")
        cache.get_or_compile(("b",), [1], lambda: "plan-b")
        assert cache.evictions == 1 and len(cache) == 1
        # 'a' was evicted: recompiles.
        assert cache.get_or_compile(("a",), [1], lambda: "plan-a2") == \
            "plan-a2"

    def test_signature_comparison_semantics(self):
        array = np.zeros(3)
        assert not signatures_differ([[array], 2], [[array], 2])
        assert signatures_differ([[array.copy()], 2], [[array], 2])
        assert signatures_differ([[array], 3], [[array], 2])
        assert signatures_differ([[array]], [])

    def test_cache_counters_reach_the_metrics_registry(self, int8_case):
        model, _ = int8_case
        cache = PlanCache()
        registry = MetricsRegistry()
        predictor = BatchedPredictor(model, mode="int8", registry=registry,
                                     plan_cache=cache)
        assert predictor.backbone_engine is not None
        again = BatchedPredictor(model, mode="int8", registry=registry,
                                 plan_cache=cache)
        assert again.backbone_engine is not None
        scrape = registry.scrape()
        assert scrape["plan_cache.hits"]["value"] >= 1
        assert scrape["plan_cache.entries"]["value"] >= 1
        assert 0.0 < scrape["plan_cache.hit_rate"]["value"] <= 1.0
        # The engines also publish the rewrite-pipeline statistics.
        assert scrape["engine.backbone.opt_rule_applications"]["value"] > 0

    def test_snapshot_from_cached_plan_restores_bit_for_bit(self, int8_case):
        model, golden = int8_case
        predictor = model.runtime_predictor()
        reference = predictor.extract_backbone_features(golden["images"])
        snapshot = snapshot_model(model)
        assert snapshot.backbone.optimized
        assert snapshot.backbone.pass_stats            # stats ride along
        restored = snapshot.backbone.restore()
        assert restored.pass_stats == snapshot.backbone.pass_stats
        engine = InferenceEngine(
            restored, memory_plan=snapshot.backbone.restore_memory_plan(),
            micro_batch=snapshot.micro_batch)
        np.testing.assert_array_equal(engine.run(golden["images"]),
                                      reference)


# ---------------------------------------------------------------------------
# Graphviz dump
# ---------------------------------------------------------------------------
class TestDot:
    def test_dot_labels_nodes_and_edges(self, int8_case):
        model, _ = int8_case
        plan = optimize_plan(compile_backbone(model.backbone, mode="int8"))
        dot = Graph.from_plan(plan).to_dot()
        assert dot.startswith("digraph")
        assert "qconv_add" in dot
        # Node labels carry op + step name; edge labels register + dtype.
        assert any(f'label="{step.op}\\n{step.name}"' in dot
                   for step in plan.steps)
        assert "int8@" in dot                  # a scaled int8 edge
        assert f'{plan.input_register} float32' in dot
        assert 'out [label="output", shape=ellipse];' in dot

    def test_dot_shapes_come_from_the_recorded_memory_plan(self, int8_case):
        model, golden = int8_case
        engine = InferenceEngine(compile_backbone(model.backbone,
                                                  mode="int8"))
        engine.run(golden["images"])
        shapes = dict(engine.memory_plan.shapes)
        dot = Graph.from_plan(engine.plan, shapes=shapes).to_dot()
        assert any("x".join(str(d) for d in shape) in dot
                   for shape in shapes.values())

    def test_plan_stats_dot_flag(self, capsys):
        from repro.runtime.plan_stats import main

        assert main(["mobilenetv2_x4_tiny", "float32", "--dot"]) == 0
        printed = capsys.readouterr().out
        assert printed.startswith("digraph")
        assert "conv" in printed

    def test_plan_stats_step_gate(self, capsys):
        from repro.runtime.plan_stats import main

        assert main(["mobilenetv2_x4_tiny", "float32",
                     "--assert-max-steps", "1"]) == 1
        assert main(["mobilenetv2_x4_tiny", "float32",
                     "--assert-max-steps", "500"]) == 0
        assert main(["--assert-max-steps"]) == 2
