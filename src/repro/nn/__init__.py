"""NumPy-based neural-network substrate (tensors, autograd, layers, losses).

This package provides everything the O-FSCIL reproduction needs to train and
run the backbone, FCR and classifier heads without any external deep-learning
framework.
"""

from . import functional
from . import init
from . import losses
from . import optim
from .calibration import batchnorm_modules, recalibrate_batchnorm
from .conv import col2im, conv_output_size, im2col
from .gradcheck import check_gradients, numerical_gradient
from .modules import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    ReLU6,
    Sequential,
    Sigmoid,
)
from .tensor import (
    Tensor,
    concatenate,
    enable_grad,
    is_grad_enabled,
    no_grad,
    ones,
    randn,
    stack,
    tensor,
    zeros,
)

__all__ = [
    "functional",
    "init",
    "losses",
    "optim",
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "stack",
    "concatenate",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "Sigmoid",
    "Dropout",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Identity",
    "im2col",
    "col2im",
    "conv_output_size",
    "check_gradients",
    "numerical_gradient",
    "recalibrate_batchnorm",
    "batchnorm_modules",
]
