"""Trained-Quantization-Thresholds (TQT)-style threshold selection.

The paper quantizes weights and activations to 8-bit integers with the TQT
algorithm of Quantlib: thresholds are constrained to powers of two and
*trained*.  Without a full gradient pipeline over thresholds, this module
reproduces the essential behaviour by **searching** the power-of-two
threshold that minimizes the quantization mean-squared error on calibration
data — the fixed point the TQT training converges to — and exposes the same
interface (per-tensor thresholds, power-of-two constraint, int8 grids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from .fake_quant import quantization_error, quantize_dequantize, scale_from_threshold


def power_of_two_candidates(max_abs: float, num_down: int = 6, num_up: int = 1):
    """Power-of-two thresholds surrounding ``max_abs`` (from below and above)."""
    if max_abs <= 0:
        return [1e-6]
    exponent = int(np.ceil(np.log2(max_abs)))
    return [2.0 ** e for e in range(exponent - num_down, exponent + num_up + 1)]


def select_threshold(values: np.ndarray, bits: int = 8,
                     power_of_two: bool = True,
                     method: str = "mse") -> float:
    """Choose a quantization threshold for ``values``.

    Args:
        values: calibration tensor.
        bits: target bit width.
        power_of_two: restrict the threshold to powers of two (TQT constraint).
        method: ``"mse"`` picks the candidate minimizing reconstruction MSE
            (the TQT fixed point); ``"maxabs"`` uses the maximum magnitude.
    """
    values = np.asarray(values)
    max_abs = float(np.max(np.abs(values))) if values.size else 1.0
    if method == "maxabs":
        if not power_of_two:
            return max(max_abs, 1e-12)
        return float(2.0 ** np.ceil(np.log2(max(max_abs, 1e-12))))
    if method != "mse":
        raise ValueError(f"unknown threshold selection method {method!r}")
    candidates = power_of_two_candidates(max_abs) if power_of_two else \
        [max_abs * factor for factor in (0.25, 0.5, 0.75, 1.0)]
    errors = [quantization_error(values, candidate, bits) for candidate in candidates]
    return float(candidates[int(np.argmin(errors))])


@dataclass
class TQTQuantizer:
    """Per-tensor symmetric quantizer with a (power-of-two) trained threshold."""

    bits: int = 8
    power_of_two: bool = True
    method: str = "mse"
    threshold: Optional[float] = None

    def calibrate(self, values: np.ndarray) -> "TQTQuantizer":
        self.threshold = select_threshold(values, bits=self.bits,
                                          power_of_two=self.power_of_two,
                                          method=self.method)
        return self

    @property
    def calibrated(self) -> bool:
        return self.threshold is not None

    @property
    def scale(self) -> float:
        if not self.calibrated:
            raise RuntimeError("quantizer is not calibrated")
        return scale_from_threshold(self.threshold, self.bits)

    def __call__(self, values: np.ndarray) -> np.ndarray:
        """Quantize-dequantize ``values`` with the calibrated threshold."""
        if not self.calibrated:
            raise RuntimeError("quantizer is not calibrated")
        return quantize_dequantize(np.asarray(values, dtype=np.float32),
                                   self.threshold, self.bits)

    def to_integers(self, values: np.ndarray) -> np.ndarray:
        """Return the integer codes of ``values`` (no dequantization)."""
        if not self.calibrated:
            raise RuntimeError("quantizer is not calibrated")
        from .fake_quant import quantize
        return quantize(np.asarray(values, dtype=np.float32), self.scale, self.bits)


def calibrate_many(tensors: Iterable[np.ndarray], bits: int = 8,
                   power_of_two: bool = True) -> list:
    """Calibrate one :class:`TQTQuantizer` per tensor in ``tensors``."""
    return [TQTQuantizer(bits=bits, power_of_two=power_of_two).calibrate(tensor)
            for tensor in tensors]
