"""Trace-driven load + systematic chaos injection for the serving stack.

The scenario harness is the serving layer's end-to-end correctness gate
under failure: deterministic, seeded workloads (:mod:`.loadgen`) drive a
live :class:`~repro.serve.server.Server` while scripted faults
(:mod:`.chaos`) kill, hang, slow, corrupt and starve its shards — and
every scenario asserts **degraded-but-correct** behaviour: answered
requests are bit-identical to the single-process reference, unanswered
ones fail with typed errors, and the stats/trace surfaces stay coherent.

Run the full matrix (and append per-scenario trend records to
``BENCH_scenarios.json``)::

    python -m repro.scenarios --seed 0

or a single scenario::

    python -m repro.scenarios --seed 0 --scenario kill_shard

Programmatic use::

    from repro.scenarios import run_matrix, run_scenario, SCENARIOS

    records = run_matrix(seed=0, write_bench=False)
"""

from .chaos import ChaosController, ChaosInjector
from .loadgen import (
    ARRIVALS,
    Op,
    Workload,
    bursty_arrival_times,
    diurnal_arrival_times,
    generate_workload,
    poisson_arrival_times,
)
from .runner import (
    DEFAULT_BENCH_PATH,
    SCENARIOS,
    ScenarioFailure,
    ScenarioRun,
    build_model,
    drive_workload,
    run_matrix,
    run_scenario,
)

__all__ = [
    "ARRIVALS",
    "ChaosController",
    "ChaosInjector",
    "DEFAULT_BENCH_PATH",
    "Op",
    "SCENARIOS",
    "ScenarioFailure",
    "ScenarioRun",
    "Workload",
    "build_model",
    "bursty_arrival_times",
    "diurnal_arrival_times",
    "drive_workload",
    "generate_workload",
    "poisson_arrival_times",
    "run_matrix",
    "run_scenario",
]
