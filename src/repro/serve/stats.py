"""Serving statistics served from the :mod:`repro.obs` metrics registry.

Every counter the server exposes is a named instrument in a per-server
:class:`~repro.obs.metrics.MetricsRegistry`:

==================================  ========================================
instrument                          meaning
==================================  ========================================
``serve.requests_total``            single-sample submits admitted
``serve.batch_requests_total``      synchronous batch API calls
``serve.samples_total``             samples served (both paths)
``serve.batches_dispatched_total``  coalesced batches handed to the engine
``serve.shed_total``                submits rejected by admission control
``serve.broadcasts_total``          prototype broadcasts to the workers
``serve.queue_depth``               admission-queue depth at last submit
``serve.max_queue_depth``           peak admission-queue depth
``serve.batch_latency_s``           dispatch→resolution latency histogram
``serve.batch_size``                exact coalesced-batch-size histogram
``serve.worker_failures_total``     shards declared failed by the watchdog
``serve.worker_restarts_total``     supervisor respawns that rejoined
``serve.hang_escalations_total``    heartbeat-silent shards SIGKILLed
``serve.respawns_abandoned_total``  shards given up after the crash budget
``serve.recovery_latency_s``        failure-detected→serving-again histogram
==================================  ========================================

The batch-latency percentiles come from the fixed-bucket histogram through
the shared quantile helper (:func:`repro.obs.metrics.quantile_from_counts`)
— the former hand-rolled sorted-sample window is gone, so the stats surface
and any registry scrape can never disagree about what p50/p99 means.

The EMA batch-latency estimate survives as plain state: it is the admission
controller's *control signal* (read per submit, smoothed by
:data:`EMA_ALPHA`), not a reporting metric.  It **decays while idle**: after
a grace of one half-life with no completed batch, the estimate halves every
:data:`DEFAULT_EMA_HALFLIFE_S` seconds.  Without the decay a transient slow
burst was sticky — the SLO gate kept shedding on the stale estimate, no new
batch ever completed to refresh it, and a now-healthy server shed forever.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from ..obs.metrics import MetricsRegistry

#: Smoothing factor of the exponential moving average the admission
#: controller's SLO estimate reads (higher = reacts faster to load shifts).
EMA_ALPHA = 0.2

#: Default idle half-life of the EMA batch-latency estimate: after one
#: half-life with no completed batch the estimate starts halving per
#: half-life, so a stale slow-burst reading cannot shed a healthy server
#: forever (the shedding itself starves the EMA of fresh observations).
DEFAULT_EMA_HALFLIFE_S = 2.0

#: Bucket upper bounds (seconds) of ``serve.batch_latency_s``: geometric
#: from 1 ms to 60 s, resolving the dynamic batcher's typical single-digit
#: millisecond dispatch latencies without wasting buckets on the far tail.
BATCH_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

#: Bucket upper bounds (seconds) of ``serve.recovery_latency_s``: recovery
#: spans watchdog detection through backoff, respawn (interpreter startup +
#: replica restore) and prototype resync — tenths of a second to minutes.
RECOVERY_LATENCY_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)


class ServeStats:
    """Instrumented counters for one :class:`~repro.serve.server.Server`.

    The ``serve.batch_size`` histogram is the dynamic batcher's report card:
    a saturating workload should pile mass at ``max_batch``, a trickle of
    single requests should sit at 1 with ``max_latency`` bounding the wait.
    ``serve.shed_total`` against admitted requests is the overload report
    card.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 ema_halflife_s: float = DEFAULT_EMA_HALFLIFE_S):
        if ema_halflife_s <= 0:
            raise ValueError("ema_halflife_s must be positive")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.ema_halflife_s = float(ema_halflife_s)
        self._requests = self.registry.counter("serve.requests_total")
        self._batch_requests = self.registry.counter(
            "serve.batch_requests_total")
        self._samples = self.registry.counter("serve.samples_total")
        self._batches = self.registry.counter(
            "serve.batches_dispatched_total")
        self._shed = self.registry.counter("serve.shed_total")
        self._broadcasts = self.registry.counter("serve.broadcasts_total")
        self._queue_depth = self.registry.gauge("serve.queue_depth")
        self._max_queue_depth = self.registry.gauge("serve.max_queue_depth")
        self._batch_latency = self.registry.histogram(
            "serve.batch_latency_s", BATCH_LATENCY_BUCKETS)
        self._batch_sizes = self.registry.int_histogram("serve.batch_size")
        self._worker_failures = self.registry.counter(
            "serve.worker_failures_total")
        self._worker_restarts = self.registry.counter(
            "serve.worker_restarts_total")
        self._hang_escalations = self.registry.counter(
            "serve.hang_escalations_total")
        self._respawns_abandoned = self.registry.counter(
            "serve.respawns_abandoned_total")
        self._recovery_latency = self.registry.histogram(
            "serve.recovery_latency_s", RECOVERY_LATENCY_BUCKETS)
        self._last_recovery_latency_s: Optional[float] = None
        self.started_at = time.perf_counter()
        self._ema_lock = threading.Lock()
        self._ema_batch_latency_s = 0.0
        self._ema_updated_at: Optional[float] = None

    # ------------------------------------------------------------------
    def observe_submit(self, queue_depth: int) -> None:
        self._requests.inc()
        self._queue_depth.set(queue_depth)
        self._max_queue_depth.set_max(queue_depth)

    def observe_batch_request(self, num_samples: int) -> None:
        self._batch_requests.inc()
        self._samples.inc(num_samples)

    def observe_dispatch(self, batch_size: int) -> None:
        self._batches.inc()
        self._samples.inc(batch_size)
        self._batch_sizes.observe(batch_size)

    def observe_broadcast(self) -> None:
        self._broadcasts.inc()

    def observe_shed(self) -> None:
        self._shed.inc()

    def observe_recovery_event(self, event: dict) -> None:
        """Instrument one engine recovery lifecycle event (the server wires
        this as the engine's ``recovery_listener``).  Unknown event kinds
        are ignored so the stats layer never constrains the engine."""
        kind = event.get("event")
        if kind == "worker_failed":
            self._worker_failures.inc()
        elif kind == "hang_escalated":
            self._hang_escalations.inc()
        elif kind == "gave_up":
            self._respawns_abandoned.inc()
        elif kind == "respawned":
            self._worker_restarts.inc()
            latency = event.get("recovery_latency_s")
            if latency is not None:
                self._recovery_latency.observe(float(latency))
                with self._ema_lock:
                    self._last_recovery_latency_s = float(latency)

    def observe_batch_latency(self, seconds: float) -> None:
        self._batch_latency.observe(seconds)
        now = time.monotonic()
        with self._ema_lock:
            current = self._decayed_ema_locked(now)
            if current <= 0.0:
                self._ema_batch_latency_s = seconds
            else:
                self._ema_batch_latency_s = (
                    EMA_ALPHA * seconds + (1.0 - EMA_ALPHA) * current)
            self._ema_updated_at = now

    # ------------------------------------------------------------------
    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self.started_at

    @property
    def samples_per_s(self) -> float:
        elapsed = self.elapsed_s
        return self._samples.value / elapsed if elapsed > 0 else 0.0

    def _decayed_ema_locked(self, now: float) -> float:
        """The EMA after idle decay: the raw value for up to one half-life
        since the last completed batch (so a *serving* server reads the
        plain EMA), then halving per half-life of further idleness."""
        if self._ema_batch_latency_s <= 0.0 or self._ema_updated_at is None:
            return self._ema_batch_latency_s
        idle = now - self._ema_updated_at - self.ema_halflife_s
        if idle <= 0.0:
            return self._ema_batch_latency_s
        return self._ema_batch_latency_s * 0.5 ** (idle / self.ema_halflife_s)

    @property
    def ema_batch_latency_s(self) -> float:
        with self._ema_lock:
            return self._decayed_ema_locked(time.monotonic())

    @property
    def shed_rate(self) -> float:
        """Fraction of submit attempts rejected by admission control."""
        shed = self._shed.value
        attempts = self._requests.value + shed
        return shed / attempts if attempts else 0.0

    def batch_latency_percentiles_ms(self) -> Dict[str, float]:
        """p50/p99 of the batch-latency histogram (shared quantile math)."""
        return {"p50": self._batch_latency.quantile(0.50) * 1e3,
                "p99": self._batch_latency.quantile(0.99) * 1e3}

    def scrape(self) -> Dict[str, dict]:
        """Raw instrument scrape of this server's registry."""
        return self.registry.scrape()

    def as_dict(self) -> dict:
        percentiles = self.batch_latency_percentiles_ms()
        requests = int(self._requests.value)
        shed = int(self._shed.value)
        attempts = requests + shed
        return {
            "single_requests": requests,
            "batch_requests": int(self._batch_requests.value),
            "samples": int(self._samples.value),
            "batches_dispatched": int(self._batches.value),
            "batch_size_histogram": self._batch_sizes.as_dict(),
            "max_queue_depth": int(self._max_queue_depth.value),
            "prototype_broadcasts": int(self._broadcasts.value),
            "requests_shed": shed,
            "shed_rate": shed / attempts if attempts else 0.0,
            "batch_latency_p50_ms": round(percentiles["p50"], 3),
            "batch_latency_p99_ms": round(percentiles["p99"], 3),
            "ema_batch_latency_s": self.ema_batch_latency_s,
            "elapsed_s": self.elapsed_s,
            "samples_per_s": self.samples_per_s,
            "worker_failures": int(self._worker_failures.value),
            "worker_restarts": int(self._worker_restarts.value),
            "hang_escalations": int(self._hang_escalations.value),
            "respawns_abandoned": int(self._respawns_abandoned.value),
            "last_recovery_latency_s": self._last_recovery_latency_s,
        }
