"""Print optimizer + memory-plan statistics for a registry backbone.

CI runs this after the fast suite (``python -m repro.runtime.plan_stats``)
so plan-shape or memory-plan regressions — more steps, fewer fused
epilogues, more arena slots, a bigger peak — are visible in the job log of
every push, not only when a perf floor finally trips.

``python -m repro.runtime.plan_stats <backbone> int8`` reports the integer
plan instead: the model is put through the deterministic PTQ recipe (seeded
init, calibration on the synthetic base session, no QAT stages — the same
construction the conformance fixtures use), so the int8 step/fusion/arena
counts of both backbone families are pinned in the job log too.

``--profile`` additionally executes the warm-up batch under a
:class:`~repro.obs.planprof.PlanProfiler` and appends the per-op profile
table — wall time, call counts, bytes moved and effective bandwidth per
compiled step, plus the aggregate per op kind.
"""

from __future__ import annotations

import sys

import numpy as np

DEFAULT_BACKBONE = "mobilenetv2_x4_tiny"
WARMUP_SAMPLES = 8


def _build_model(backbone: str, mode: str):
    from ..core import OFSCIL, OFSCILConfig

    model = OFSCIL.from_registry(backbone, OFSCILConfig(backbone=backbone),
                                 seed=0)
    if mode == "int8":
        from ..data import build_synthetic_fscil
        from ..quant import QuantizationConfig, quantize_ofscil_model

        benchmark = build_synthetic_fscil("test", seed=0)
        model, _report = quantize_ofscil_model(
            model, benchmark.base_train,
            config=QuantizationConfig(qat_pretrain_epochs=0,
                                      qat_metalearn_iterations=0,
                                      calibration_batches=2,
                                      calibration_batch_size=32))
    elif mode != "float32":
        raise ValueError(f"unknown mode {mode!r}; expected float32 or int8")
    return model


def plan_stats(backbone: str = DEFAULT_BACKBONE,
               mode: str = "float32", profile: bool = False) -> dict:
    """Compile the backbone, serve one batch, and report plan/arena stats."""
    from ..models import get_config
    from .predictor import BatchedPredictor

    model = _build_model(backbone, mode)
    predictor = BatchedPredictor(model,
                                 micro_batch=model.config.feature_batch_size,
                                 mode=getattr(model.config, "runtime_mode",
                                              mode),
                                 profile=profile)
    size = get_config(backbone).input_size
    # One real batch materialises the recorded-shape memory plan.
    predictor.embed(np.zeros((WARMUP_SAMPLES, 3, size, size),
                             dtype=np.float32))
    engine = predictor.backbone_engine
    plan = engine.plan
    memory_plan = engine.memory_plan
    peak = memory_plan.peak_bytes(engine.micro_batch)
    unplanned = memory_plan.unplanned_bytes(engine.micro_batch)
    return {
        "backbone": backbone,
        "mode": predictor.mode,
        "plan_steps": len(plan),
        "fused_steps": plan.num_fused(),
        "integer_steps": plan.num_integer(),
        "arena_slots": memory_plan.num_slots,
        "arena_peak_bytes": peak,
        "arena_unplanned_bytes": unplanned,
        "peak_reduction": round(1.0 - peak / unplanned, 3) if unplanned else 0.0,
        "micro_batch": engine.micro_batch,
        "num_threads": engine.num_threads,
        "profiler": predictor.profiler,
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    profile = "--profile" in argv
    argv = [arg for arg in argv if arg != "--profile"]
    backbone = argv[0] if argv else DEFAULT_BACKBONE
    mode = argv[1] if len(argv) > 1 else "float32"
    stats = plan_stats(backbone, mode, profile=profile)
    profiler = stats.pop("profiler")
    width = max(len(key) for key in stats)
    for key, value in stats.items():
        print(f"{key:<{width}}  {value}")
    if profiler is not None:
        print()
        print(profiler.table())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
