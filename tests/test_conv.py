"""Convolution and pooling: correctness against a naive reference + gradients."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.conv import col2im, conv_output_size, im2col
from repro.nn.tensor import Tensor


def naive_conv2d(x, weight, stride=1, padding=0, groups=1):
    """Direct (slow) convolution used as ground truth."""
    n, c, h, w = x.shape
    out_c, c_per_group, kh, kw = weight.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    out = np.zeros((n, out_c, out_h, out_w), dtype=x.dtype)
    group_in = c // groups
    group_out = out_c // groups
    for b in range(n):
        for oc in range(out_c):
            g = oc // group_out
            for i in range(out_h):
                for j in range(out_w):
                    patch = x[b, g * group_in:(g + 1) * group_in,
                              i * stride:i * stride + kh, j * stride:j * stride + kw]
                    out[b, oc, i, j] = (patch * weight[oc]).sum()
    return out


class TestIm2Col:
    def test_output_size(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 3, 2, 1) == 16
        assert conv_output_size(5, 3, 1, 0) == 3

    def test_im2col_shape(self):
        x = np.random.default_rng(0).standard_normal((2, 3, 8, 8)).astype(np.float32)
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2, 3, 3, 3, 8, 8)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> (the two must be adjoint maps)."""
        x = rng.standard_normal((2, 3, 6, 6))
        y = rng.standard_normal((2, 3, 3, 3, 3, 3))
        cols = im2col(x, 3, 3, 2, 1)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, 2, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-6)

    def test_im2col_identity_for_1x1(self, rng):
        x = rng.standard_normal((1, 2, 4, 4))
        cols = im2col(x, 1, 1, 1, 0)
        np.testing.assert_allclose(cols[:, :, 0, 0], x)


class TestConvCorrectness:
    @pytest.mark.parametrize("stride,padding,groups,in_c,out_c,kernel", [
        (1, 0, 1, 3, 4, 3),
        (1, 1, 1, 3, 4, 3),
        (2, 1, 1, 3, 8, 3),
        (1, 0, 1, 4, 6, 1),      # pointwise fast path
        (1, 1, 4, 4, 4, 3),      # depthwise
        (2, 1, 4, 4, 4, 3),      # strided depthwise
        (1, 1, 2, 4, 6, 3),      # grouped
    ])
    def test_matches_naive_reference(self, rng, stride, padding, groups, in_c, out_c, kernel):
        x = rng.standard_normal((2, in_c, 7, 7)).astype(np.float64)
        w = rng.standard_normal((out_c, in_c // groups, kernel, kernel)).astype(np.float64)
        out = F.conv2d(Tensor(x), Tensor(w), stride=stride, padding=padding,
                       groups=groups).data
        expected = naive_conv2d(x, w, stride, padding, groups)
        np.testing.assert_allclose(out, expected, atol=1e-8)

    def test_bias_is_added_per_channel(self, rng):
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        w = rng.standard_normal((3, 2, 1, 1)).astype(np.float32)
        b = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b)).data
        base = F.conv2d(Tensor(x), Tensor(w)).data
        np.testing.assert_allclose(out, base + b[None, :, None, None], rtol=1e-6)

    def test_incompatible_channels_raise(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 4, 4)))
        w = Tensor(rng.standard_normal((4, 2, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w, groups=1)

    @pytest.mark.parametrize("stride,padding,groups", [
        (1, 1, 1), (2, 1, 1), (1, 0, 1), (1, 1, 4), (2, 1, 2),
    ])
    def test_gradients(self, rng, stride, padding, groups):
        in_c, out_c = 4, 4
        x = Tensor(rng.standard_normal((2, in_c, 6, 6)), requires_grad=True)
        w = Tensor(rng.standard_normal((out_c, in_c // groups, 3, 3)) * 0.3,
                   requires_grad=True)

        def fn(x, w):
            return (F.conv2d(x, w, stride=stride, padding=padding, groups=groups) ** 2).mean()

        assert nn.check_gradients(fn, [x, w])

    def test_pointwise_gradients(self, rng):
        x = Tensor(rng.standard_normal((2, 5, 4, 4)), requires_grad=True)
        w = Tensor(rng.standard_normal((7, 5, 1, 1)) * 0.3, requires_grad=True)
        assert nn.check_gradients(lambda x, w: (F.conv2d(x, w) ** 2).mean(), [x, w])


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 5, 5)).astype(np.float32)
        out = F.global_avg_pool2d(Tensor(x)).data
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)), rtol=1e-6)

    def test_max_pool_gradient(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 6, 6)), requires_grad=True)
        assert nn.check_gradients(lambda x: (F.max_pool2d(x, 2) ** 2).sum(), [x])

    def test_avg_pool_gradient(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 6, 6)), requires_grad=True)
        assert nn.check_gradients(lambda x: (F.avg_pool2d(x, 3, 3) ** 2).sum(), [x])

    def test_strided_pooling_shapes(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 8, 8)).astype(np.float32))
        assert F.max_pool2d(x, 2, 2).shape == (1, 1, 4, 4)
        assert F.avg_pool2d(x, 4, 4).shape == (1, 1, 2, 2)
