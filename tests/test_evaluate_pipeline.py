"""FSCIL evaluation protocol, pipeline orchestration, ablation and baselines."""

import numpy as np
import pytest

from repro.core import (
    AblationFlags,
    FSCILResult,
    FinetuneConfig,
    MetalearnConfig,
    OFSCILPipeline,
    PipelineConfig,
    PretrainConfig,
    TABLE3_ROWS,
    evaluate_fscil,
    evaluate_with_predictor,
    format_ablation_table,
    format_session_table,
    pipeline_config_for,
    raw_pixel_ncm,
    PAPER_TABLE2_REFERENCE,
)

BACKBONE = "mobilenetv2_x4_tiny"


class TestFSCILResult:
    def test_average_and_forgetting(self):
        result = FSCILResult(method="m", backbone="b",
                             session_accuracy=[0.8, 0.6, 0.4])
        assert result.average_accuracy == pytest.approx(0.6)
        assert result.base_accuracy == pytest.approx(0.8)
        assert result.final_accuracy == pytest.approx(0.4)
        assert result.forgetting == pytest.approx(0.4)

    def test_empty_result(self):
        result = FSCILResult(method="m", backbone="b")
        assert np.isnan(result.average_accuracy)

    def test_as_row(self):
        result = FSCILResult(method="m", backbone="b", session_accuracy=[0.5, 0.25])
        row = result.as_row()
        assert row["session_0"] == 0.5 and row["session_1"] == 0.25
        assert row["average"] == pytest.approx(0.375)

    def test_format_session_table(self):
        results = [FSCILResult(method="a", backbone="bb", session_accuracy=[0.5, 0.4]),
                   FSCILResult(method="b", backbone="bb", session_accuracy=[0.6, 0.3])]
        table = format_session_table(results)
        assert "Method" in table and "Avg." in table and "a" in table


class TestEvaluateFSCIL:
    def test_protocol_produces_one_accuracy_per_session(self, trained_model,
                                                        tiny_benchmark):
        result = evaluate_fscil(trained_model, tiny_benchmark, method="O-FSCIL")
        assert len(result.session_accuracy) == tiny_benchmark.num_sessions + 1
        assert all(0.0 <= acc <= 1.0 for acc in result.session_accuracy)

    def test_all_classes_learned_at_the_end(self, trained_model, tiny_benchmark):
        result = evaluate_fscil(trained_model, tiny_benchmark)
        assert result.metadata["num_classes_final"] == tiny_benchmark.protocol.num_classes

    def test_accuracy_beats_chance_everywhere(self, trained_model, tiny_benchmark):
        result = evaluate_fscil(trained_model, tiny_benchmark)
        for session, accuracy in enumerate(result.session_accuracy):
            chance = 1.0 / len(tiny_benchmark.protocol.seen_classes(session))
            assert accuracy > chance

    def test_session_callback_invoked(self, trained_model, tiny_benchmark):
        calls = []
        evaluate_fscil(trained_model, tiny_benchmark,
                       session_callback=lambda s, a: calls.append((s, a)))
        assert len(calls) == tiny_benchmark.num_sessions + 1

    def test_evaluation_is_deterministic(self, trained_model, tiny_benchmark):
        first = evaluate_fscil(trained_model, tiny_benchmark)
        second = evaluate_fscil(trained_model, tiny_benchmark)
        np.testing.assert_allclose(first.session_accuracy, second.session_accuracy)

    def test_evaluate_with_predictor(self, tiny_benchmark):
        rng = np.random.default_rng(0)

        def random_predictor(images, allowed):
            return rng.choice(allowed, size=len(images))

        result = evaluate_with_predictor(random_predictor, tiny_benchmark, "random")
        assert len(result.session_accuracy) == tiny_benchmark.num_sessions + 1


# Building and training a pipeline takes seconds; module scope ensures the
# trained result is shared by every test in this file instead of being
# rebuilt per test class.
@pytest.fixture(scope="module")
def quick_config():
    return PipelineConfig(
        backbone=BACKBONE, profile="test",
        pretrain=PretrainConfig(epochs=2, batch_size=32, learning_rate=0.1, seed=0),
        metalearn=MetalearnConfig(iterations=2, meta_shots=3, queries_per_class=1,
                                  seed=0),
        finetune=FinetuneConfig(iterations=5, seed=0),
        seed=0)


@pytest.fixture(scope="module")
def pipeline_result(quick_config, tiny_benchmark):
    return OFSCILPipeline(quick_config, benchmark=tiny_benchmark).run()


class TestPipeline:

    def test_result_structure(self, pipeline_result, tiny_benchmark):
        assert len(pipeline_result.fscil.session_accuracy) == \
            tiny_benchmark.num_sessions + 1
        assert pipeline_result.pretrain.history
        assert pipeline_result.metalearn is not None

    def test_method_name(self, pipeline_result):
        assert pipeline_result.fscil.method.startswith("O-FSCIL")

    def test_no_metalearning_variant(self, quick_config, tiny_benchmark):
        config = quick_config.with_overrides(use_metalearning=False)
        result = OFSCILPipeline(config, benchmark=tiny_benchmark).run()
        assert result.metalearn is None
        assert "no metalearning" in result.fscil.method

    def test_finetuning_variant_adds_extra_result(self, quick_config, tiny_benchmark):
        config = quick_config.with_overrides(use_finetuning=True)
        result = OFSCILPipeline(config, benchmark=tiny_benchmark).run()
        assert "fscil_after_finetune" in result.extras
        ft_result = result.extras["fscil_after_finetune"]
        assert ft_result.metadata["finetuned"]

    def test_pipeline_builds_benchmark_from_profile(self, quick_config):
        pipeline = OFSCILPipeline(quick_config)
        assert pipeline.benchmark.protocol.base_classes == 8


class TestAblationMapping:
    def test_table3_has_seven_rows(self):
        assert len(TABLE3_ROWS) == 7

    def test_labels(self):
        assert AblationFlags().label() == "baseline"
        assert AblationFlags(augmentation=True, orthogonality=True).label() == "AG+OR"

    def test_flags_translate_to_pipeline_config(self):
        base = PipelineConfig(backbone=BACKBONE, profile="test")
        config = pipeline_config_for(
            AblationFlags(augmentation=True, orthogonality=True, multi_margin=True),
            base)
        assert config.pretrain.use_augmentation
        assert config.pretrain.ortho_weight > 0
        assert config.use_metalearning
        assert config.metalearn.loss == "multi_margin"

    def test_baseline_flags_disable_everything(self):
        base = PipelineConfig(backbone=BACKBONE, profile="test")
        config = pipeline_config_for(AblationFlags(), base)
        assert not config.pretrain.use_augmentation
        assert config.pretrain.ortho_weight == 0.0
        assert not config.use_metalearning

    def test_ce_flag_selects_cross_entropy(self):
        base = PipelineConfig(backbone=BACKBONE, profile="test")
        config = pipeline_config_for(
            AblationFlags(augmentation=True, orthogonality=True, cross_entropy=True),
            base)
        assert config.metalearn.loss == "cross_entropy"

    def test_format_ablation_table_runs_on_fake_rows(self):
        from repro.core.ablation import AblationRow
        rows = [AblationRow(flags=AblationFlags(augmentation=True),
                            result=FSCILResult(method="x", backbone="b",
                                               session_accuracy=[0.5, 0.4]))]
        table = format_ablation_table(rows)
        assert "AG" in table and "Avg" in table


class TestBaselines:
    def test_raw_pixel_ncm_beats_chance(self, tiny_benchmark):
        result = raw_pixel_ncm(tiny_benchmark)
        chance = 1.0 / tiny_benchmark.protocol.base_classes
        assert result.base_accuracy > chance
        assert len(result.session_accuracy) == tiny_benchmark.num_sessions + 1

    def test_paper_reference_table_consistency(self):
        for method, record in PAPER_TABLE2_REFERENCE.items():
            sessions = record["sessions"]
            assert len(sessions) == 9
            assert np.mean(sessions) == pytest.approx(record["average"], abs=0.05)

    def test_paper_reference_ofscil_is_best(self):
        averages = {m: r["average"] for m, r in PAPER_TABLE2_REFERENCE.items()}
        assert max(averages, key=averages.get) == "O-FSCIL+FT"
