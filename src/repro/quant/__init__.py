"""Quantization: TQT-style int8 weights/activations and EM precision sweeps."""

from .activation_quant import (
    ActivationQuantizationPass,
    ActivationQuantizationReport,
    ActivationQuantizer,
)
from .fake_quant import (
    FakeQuant,
    dequantize,
    fake_quantize,
    integer_bounds,
    quantization_error,
    quantize,
    quantize_dequantize,
    scale_from_threshold,
)
from .observer import (
    MinMaxObserver,
    MovingAverageObserver,
    PercentileObserver,
    QuantizationRange,
    make_observer,
)
from .prototype_quant import (
    FIG3_BIT_WIDTHS,
    PrecisionSweepRow,
    em_memory_kb,
    format_precision_table,
    prototype_precision_sweep,
)
from .tqt import TQTQuantizer, calibrate_many, power_of_two_candidates, select_threshold
from .weight_quant import (
    WeightQuantizationReport,
    integer_weight_size_bytes,
    quantizable_layers,
    quantize_weights,
)
from .workflow import QuantizationConfig, QuantizationReport, quantize_ofscil_model

__all__ = [
    "integer_bounds",
    "scale_from_threshold",
    "quantize",
    "dequantize",
    "quantize_dequantize",
    "quantization_error",
    "FakeQuant",
    "fake_quantize",
    "MinMaxObserver",
    "MovingAverageObserver",
    "PercentileObserver",
    "QuantizationRange",
    "make_observer",
    "TQTQuantizer",
    "select_threshold",
    "power_of_two_candidates",
    "calibrate_many",
    "ActivationQuantizer",
    "ActivationQuantizationPass",
    "ActivationQuantizationReport",
    "WeightQuantizationReport",
    "quantize_weights",
    "quantizable_layers",
    "integer_weight_size_bytes",
    "QuantizationConfig",
    "QuantizationReport",
    "quantize_ofscil_model",
    "FIG3_BIT_WIDTHS",
    "PrecisionSweepRow",
    "em_memory_kb",
    "prototype_precision_sweep",
    "format_precision_table",
]
