"""Dataset and data-loading primitives.

Images are stored as ``float32`` arrays in NCHW layout; labels are ``int64``
vectors.  The :class:`DataLoader` yields plain NumPy batches — the training
loops wrap them into tensors as needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np


@dataclass
class ArrayDataset:
    """In-memory dataset of images and integer labels."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self):
        self.images = np.asarray(self.images, dtype=np.float32)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if len(self.images) != len(self.labels):
            raise ValueError("images and labels must have the same length")

    def __len__(self) -> int:
        return len(self.labels)

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.images[index], self.labels[index]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    @property
    def classes(self) -> np.ndarray:
        return np.unique(self.labels)

    def subset(self, indices: Sequence[int]) -> "ArrayDataset":
        indices = np.asarray(indices)
        return ArrayDataset(self.images[indices], self.labels[indices])

    def filter_classes(self, class_ids: Sequence[int]) -> "ArrayDataset":
        """Return the subset of samples whose label is in ``class_ids``."""
        mask = np.isin(self.labels, np.asarray(class_ids))
        return ArrayDataset(self.images[mask], self.labels[mask])

    def sample_per_class(self, shots: int, rng: np.random.Generator) -> "ArrayDataset":
        """Randomly draw ``shots`` examples of every class present."""
        chosen = []
        for class_id in self.classes:
            indices = np.flatnonzero(self.labels == class_id)
            if len(indices) < shots:
                raise ValueError(
                    f"class {class_id} has only {len(indices)} samples, need {shots}")
            chosen.append(rng.choice(indices, size=shots, replace=False))
        chosen = np.concatenate(chosen)
        return self.subset(chosen)

    def concat(self, other: "ArrayDataset") -> "ArrayDataset":
        return ArrayDataset(np.concatenate([self.images, other.images]),
                            np.concatenate([self.labels, other.labels]))


class DataLoader:
    """Mini-batch iterator over an :class:`ArrayDataset`."""

    def __init__(self, dataset: ArrayDataset, batch_size: int = 32,
                 shuffle: bool = False, drop_last: bool = False,
                 seed: Optional[int] = None):
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch_idx = indices[start:start + self.batch_size]
            if self.drop_last and len(batch_idx) < self.batch_size:
                break
            images, labels = self.dataset[batch_idx]
            yield images, labels


def train_test_split(dataset: ArrayDataset, test_per_class: int,
                     rng: np.random.Generator) -> Tuple[ArrayDataset, ArrayDataset]:
    """Split a dataset into train/test keeping ``test_per_class`` per class."""
    train_indices, test_indices = [], []
    for class_id in dataset.classes:
        indices = np.flatnonzero(dataset.labels == class_id)
        indices = rng.permutation(indices)
        test_indices.append(indices[:test_per_class])
        train_indices.append(indices[test_per_class:])
    return (dataset.subset(np.concatenate(train_indices)),
            dataset.subset(np.concatenate(test_indices)))
