"""Write-ahead journal for online ``learn_class`` updates.

The paper's product surface is classes a user teaches online — and until
now those lived only in the coordinator's ``ExplicitMemory`` and died with
the process.  The journal makes them durable: ``Server.learn_class``
appends a checksummed record of *(version, class id, projected features)*
**before** applying the update to the in-memory prototype store, so a
restarted server (or a worker respawned mid-broadcast) can replay the log
and reconstruct the exact memory, bit for bit.

Why features instead of the resulting prototype?  ``ExplicitMemory``
prototypes are running means over every feature batch ever presented for a
class (see ``update_class``).  Re-presenting the identical float32 feature
batches in the identical order re-executes the identical arithmetic, so
replay reproduces prototypes *and* per-class counts exactly — storing only
the post-update prototype would lose the counts and make the next
``learn_class`` after a restart diverge.

On-disk format (little-endian):

    magic: 8 bytes ``b"REPROJ1\\0"``
    record: ``<II`` (payload length, CRC32 of payload) + pickled payload
            ``{"version": int, "class_id": int, "features": float32 array}``

The reader tolerates a *torn tail* — a record cut short by the crash that
the journal exists to survive — by discarding the partial record.  A CRC
mismatch or short record in the *middle* of the file is real corruption
and raises ``JournalCorruptError`` instead of silently dropping updates.

Durability is a knob (``fsync=``): ``"always"`` fsyncs every append (each
acknowledged ``learn_class`` survives power loss), ``"interval"`` fsyncs at
most once per ``fsync_interval_s`` (bounded loss window, much cheaper under
learn storms), ``"never"`` leaves flushing to the OS (survives process
death, not power loss).
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import time
import zlib
from pathlib import Path
from typing import Iterator, List, NamedTuple, Optional, Union

import numpy as np

MAGIC = b"REPROJ1\x00"
_HEADER = struct.Struct("<II")  # payload length, CRC32(payload)

FSYNC_POLICIES = ("always", "interval", "never")

#: Default flush cadence for ``fsync="interval"`` (seconds).
DEFAULT_FSYNC_INTERVAL_S = 0.5


class JournalError(RuntimeError):
    """Base class for journal failures."""


class JournalCorruptError(JournalError):
    """A record in the middle of the journal failed its checksum."""


class JournalReplayError(JournalError):
    """The journal cannot be applied to the given memory (version gap)."""


class JournalRecord(NamedTuple):
    """One durable ``learn_class``: the memory version *after* applying it."""

    version: int
    class_id: int
    features: np.ndarray


class LearnJournal:
    """Append-only, checksummed log of ``learn_class`` updates.

    Single-writer: the coordinator's ``learn_class`` path is already
    serialised by the server's prototype lock, so the journal does no
    locking of its own.
    """

    def __init__(self, path: Union[str, Path], fsync: str = "always",
                 fsync_interval_s: float = DEFAULT_FSYNC_INTERVAL_S):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if fsync_interval_s <= 0:
            raise ValueError("fsync_interval_s must be positive")
        self.path = Path(path)
        self.fsync = fsync
        self.fsync_interval_s = float(fsync_interval_s)
        self._last_fsync = 0.0
        self._closed = False
        # Validate + position: an existing journal is opened for append (its
        # records are preserved), anything else gets a fresh header.
        existing = self.path.exists() and self.path.stat().st_size > 0
        if existing:
            # Read-validate so a corrupt file fails at open, not at restore.
            list(read_journal(self.path))
            self._file = open(self.path, "ab")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "wb")
            self._file.write(MAGIC)
            self._file.flush()
            os.fsync(self._file.fileno())
            self._last_fsync = time.monotonic()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def append(self, class_id: int, features: np.ndarray, version: int) -> None:
        """Durably record one ``learn_class`` before it is applied.

        ``version`` is the memory version *after* the update (i.e.
        ``memory.version + 1`` at call time) — replay applies a record only
        when the memory sits exactly one version behind it.
        """
        if self._closed:
            raise JournalError("journal is closed")
        features = np.ascontiguousarray(features, dtype=np.float32)
        payload = pickle.dumps(
            {"version": int(version), "class_id": int(class_id),
             "features": features},
            protocol=pickle.HIGHEST_PROTOCOL)
        self._file.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
        self._file.write(payload)
        self._file.flush()
        if self.fsync == "always":
            os.fsync(self._file.fileno())
        elif self.fsync == "interval":
            now = time.monotonic()
            if now - self._last_fsync >= self.fsync_interval_s:
                os.fsync(self._file.fileno())
                self._last_fsync = now

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.flush()
            if self.fsync != "never":
                os.fsync(self._file.fileno())
        finally:
            self._file.close()

    def __enter__(self) -> "LearnJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Read / replay path
# ----------------------------------------------------------------------
def read_journal(path: Union[str, Path]) -> Iterator[JournalRecord]:
    """Yield every intact record from ``path``.

    A partial record at the very end of the file (torn write from a crash)
    is silently discarded; a bad checksum or truncation *before* the end
    raises :class:`JournalCorruptError`.
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) < len(MAGIC) or data[:len(MAGIC)] != MAGIC:
        raise JournalCorruptError(f"{path}: missing journal magic header")
    stream = io.BytesIO(data)
    stream.seek(len(MAGIC))
    size = len(data)
    while True:
        offset = stream.tell()
        header = stream.read(_HEADER.size)
        if not header:
            return
        if len(header) < _HEADER.size:
            # Torn header at EOF: the crash interrupted the final append.
            return
        length, crc = _HEADER.unpack(header)
        payload = stream.read(length)
        if len(payload) < length:
            if stream.tell() >= size:
                return  # torn payload at EOF
            raise JournalCorruptError(
                f"{path}: short record at offset {offset}")
        if zlib.crc32(payload) != crc:
            if stream.tell() >= size:
                # The torn tail can also manifest as a half-written payload
                # whose declared length happened to fit: same crash, same
                # treatment — but only for the *last* record.
                return
            raise JournalCorruptError(
                f"{path}: checksum mismatch at offset {offset}")
        record = pickle.loads(payload)
        yield JournalRecord(version=int(record["version"]),
                           class_id=int(record["class_id"]),
                           features=np.asarray(record["features"],
                                               dtype=np.float32))


def replay(path: Union[str, Path], memory) -> List[JournalRecord]:
    """Apply journalled updates to ``memory``; return the applied records.

    Records at or below the memory's current version are skipped (already
    applied — replay is idempotent), a record exactly one version ahead is
    applied via ``memory.update_class`` (bit-identical arithmetic to the
    original call), and a larger gap means the journal does not match this
    memory and raises :class:`JournalReplayError`.
    """
    applied: List[JournalRecord] = []
    for record in read_journal(path):
        if record.version <= memory.version:
            continue
        if record.version != memory.version + 1:
            raise JournalReplayError(
                f"journal record v{record.version} cannot follow memory "
                f"v{memory.version}: missing intermediate updates (was the "
                f"journal written against a different memory?)")
        memory.update_class(record.class_id, record.features)
        if memory.version != record.version:
            raise JournalReplayError(
                f"replaying class {record.class_id} moved the memory to "
                f"v{memory.version}, journal expected v{record.version}")
        applied.append(record)
    return applied


__all__ = [
    "LearnJournal", "JournalRecord", "JournalError", "JournalCorruptError",
    "JournalReplayError", "read_journal", "replay", "FSYNC_POLICIES",
    "DEFAULT_FSYNC_INTERVAL_S", "MAGIC",
]
