"""Parity checking between the batched runtime and the eager autograd path.

The runtime is only worth trusting if it computes the same function as the
module tree it was compiled from; these helpers make that check one call.
They are used by the test suite and can be run against a deployed model as a
self-check (``assert_parity(model, calibration_images)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from .predictor import BatchedPredictor

#: Tolerance used by default; fused float32 kernels reorder additions, so
#: exact bit equality is not expected, but 1e-5 holds across the backbones.
DEFAULT_ATOL = 1e-5


def normalized_error(actual: np.ndarray, reference: np.ndarray) -> float:
    """Max absolute error normalised by the reference dynamic range.

    ``max |a - r| / (1 + max |r|)``: a plain max-absolute error is
    meaningless across feature scales (an untrained ResNet emits activations
    of magnitude ~50, where float32 rounding alone produces ~1e-5 absolute
    deviations); dividing by the tensor's own scale makes one threshold
    meaningful for similarities (O(1)) and raw features alike.
    """
    if actual.size == 0:
        return 0.0
    scale = 1.0 + float(np.max(np.abs(reference)))
    return float(np.max(np.abs(actual - reference)) / scale)


@dataclass
class ParityReport:
    """Outcome of one runtime-vs-eager comparison."""

    num_samples: int
    max_feature_error: float
    max_similarity_error: float
    prediction_agreement: float
    atol: float

    @property
    def features_match(self) -> bool:
        return self.max_feature_error <= self.atol

    @property
    def similarities_match(self) -> bool:
        return np.isnan(self.max_similarity_error) or \
            self.max_similarity_error <= self.atol

    @property
    def ok(self) -> bool:
        return self.features_match and self.similarities_match

    def summary(self) -> str:
        return (f"parity over {self.num_samples} samples: "
                f"max |theta_p| err {self.max_feature_error:.2e}, "
                f"max |sims| err {self.max_similarity_error:.2e}, "
                f"prediction agreement {self.prediction_agreement:.3f} "
                f"(atol {self.atol:.0e})")


def compare_with_eager(model, images: np.ndarray,
                       class_ids: Optional[Iterable[int]] = None,
                       predictor: Optional[BatchedPredictor] = None,
                       atol: float = DEFAULT_ATOL) -> ParityReport:
    """Run ``images`` through both paths and measure the divergence.

    Features are always compared; similarities and predictions are compared
    only when the model's explicit memory holds at least one prototype.
    """
    images = np.asarray(images, dtype=np.float32)
    predictor = predictor or BatchedPredictor(model)

    eager_features = model.embed(images, use_runtime=False)
    runtime_features = predictor.embed(images)
    feature_error = normalized_error(runtime_features, eager_features)

    if model.memory.num_classes > 0:
        eager_sims, eager_ids = model.memory.similarities(eager_features,
                                                          class_ids)
        runtime_sims, runtime_ids = predictor.similarities_from_features(
            runtime_features, class_ids)
        np.testing.assert_array_equal(eager_ids, runtime_ids)
        similarity_error = normalized_error(runtime_sims, eager_sims)
        eager_pred = eager_ids[np.argmax(eager_sims, axis=1)]
        runtime_pred = runtime_ids[np.argmax(runtime_sims, axis=1)]
        agreement = float((eager_pred == runtime_pred).mean())
    else:
        similarity_error = float("nan")
        agreement = 1.0

    return ParityReport(num_samples=int(len(images)),
                        max_feature_error=feature_error,
                        max_similarity_error=similarity_error,
                        prediction_agreement=agreement, atol=atol)


def assert_parity(model, images: np.ndarray,
                  class_ids: Optional[Iterable[int]] = None,
                  predictor: Optional[BatchedPredictor] = None,
                  atol: float = DEFAULT_ATOL) -> ParityReport:
    """Raise ``AssertionError`` unless runtime and eager paths agree."""
    report = compare_with_eager(model, images, class_ids=class_ids,
                                predictor=predictor, atol=atol)
    if not report.ok:
        raise AssertionError(f"runtime/eager divergence: {report.summary()}")
    return report
