"""Batched deploy-time predictor over the inference runtime.

:class:`BatchedPredictor` is the serving façade of an O-FSCIL model: it owns
a compiled backbone plan, micro-batches incoming samples through it, caches
the (quantized) prototype matrix of the :class:`ExplicitMemory` between
calls, and answers ``predict`` / ``similarities`` for whole sessions with a
single GEMM against the cached prototypes.

The prototype cache is invalidated through the memory's ``version`` counter,
so learning a new class online is immediately visible to the predictor; the
FCR projection reads its weights from the live module, so in-place
fine-tuning needs no recompilation either.  Only backbone weights are frozen
into the plan (they are frozen in the deployment configuration anyway) — use
:meth:`refresh` after mutating them.

Compiled+optimized plans are fronted by a process-wide
:class:`~repro.runtime.plan_cache.PlanCache` keyed by
``(component, arch, mode, input_shape, optimize)``: a second predictor over
the same (unchanged) model — a respawned worker, a fresh ``plan_stats``
probe — reuses the cached plan instead of re-running the compiler and the
graph rewrite pipeline.  The cache revalidates the predictor's staleness
signature on every lookup, so mutated weights miss and recompile.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..obs.planprof import PlanProfiler
from .compiler import MODES, compile_backbone, compile_module
from .engine import DEFAULT_MICRO_BATCH, InferenceEngine
from .kernels import (
    cosine_similarities,
    int8_cosine_similarities,
    normalize_prototypes,
    quantize_unit_rows,
)
from .optimizer import optimize_plan
from .plan_cache import PlanCache, default_plan_cache, signatures_differ


class BatchedPredictor:
    """Inference-only, batched view of an O-FSCIL model.

    ``mode="int8"`` compiles the backbone and FCR with the integer lowering
    (requires a model prepared by ``quantize_ofscil_model``: calibrated
    activation quantizer hooks plus input quantizers) and answers prototype
    matching with an int8 GEMM rescaled to float at the end.
    """

    def __init__(self, model, micro_batch: int = DEFAULT_MICRO_BATCH,
                 mode: str = "float32", num_threads: Optional[int] = None,
                 cache_budget: Optional[int] = None,
                 registry=None, profile: bool = False,
                 plan_cache: Optional[PlanCache] = None):
        if mode not in MODES:
            raise ValueError(f"unknown runtime mode {mode!r}; "
                             f"expected one of {MODES}")
        self.model = model
        self.micro_batch = micro_batch
        self.mode = mode
        self.num_threads = num_threads
        self.cache_budget = cache_budget
        #: Compiled-plan cache; defaults to the process-wide instance so
        #: predictors over the same unchanged model share optimized plans.
        self.plan_cache = plan_cache if plan_cache is not None \
            else default_plan_cache()
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry` the engines
        #: publish their gauges into (callback-valued, free per request).
        self.registry = registry
        self.plan_cache.bind_registry(registry)
        #: One profiler shared by backbone and FCR plans (``profile=True``),
        #: so ``plan_stats --profile`` reads both from a single table.
        self.profiler = PlanProfiler(registry=registry) if profile else None
        self._backbone_engine: Optional[InferenceEngine] = None
        self._backbone_state: list = []
        self._fcr_engine: Optional[InferenceEngine] = None
        self._fcr_state: list = []
        # (memory version, class-id selection) -> (normalised matrix, ids)
        self._proto_cache: Dict[Tuple, Tuple[np.ndarray, np.ndarray]] = {}

    #: Cap on cached class-id selections per memory version.  Long-lived
    #: frozen deployments (no learning, so no version bumps) can see an
    #: unbounded variety of per-request selections; beyond this many, the
    #: oldest selection is dropped FIFO.
    MAX_CACHED_SELECTIONS = 16

    # ------------------------------------------------------------------
    # Engines
    # ------------------------------------------------------------------
    @staticmethod
    def _quantizer_signature(module) -> tuple:
        """Frozen thresholds of the activation quantizer hooks on ``module``.

        The int8 lowering bakes the hook thresholds into the plan, so a
        recalibration (which changes ``quantizer.threshold`` without touching
        weights or hook counts) must also read as staleness.
        """
        from ..quant.activation_quant import ActivationQuantizer

        signature = []
        for sub in module.modules():
            for hook in sub._forward_hooks:
                if isinstance(hook, ActivationQuantizer):
                    signature.append((hook.mode,
                                      None if hook.quantizer is None
                                      else hook.quantizer.threshold))
        quantizer = getattr(module, "input_quantizer", None)
        if quantizer is not None:
            signature.append(("input", quantizer.threshold))
        return tuple(signature)

    def _current_backbone_state(self) -> list:
        """Identity snapshot of everything the compiled plan froze in.

        All weight mutations in the codebase rebind ``param.data`` (optimizer
        steps, weight quantization) or the BN buffers (``update_buffer``), so
        comparing array identities detects staleness without touching the
        values.  Hook attachment/removal flips layers between fused and
        opaque lowering, so the hook count participates too; in int8 mode the
        quantizer thresholds are part of the compiled plan and join the
        signature.
        """
        backbone = self.model.backbone
        arrays = [parameter.data for parameter in backbone.parameters()]
        arrays.extend(buffer for _, buffer in backbone.named_buffers())
        hook_count = sum(len(module._forward_hooks)
                         for module in backbone.modules())
        quantizers = self._quantizer_signature(backbone) \
            if self.mode == "int8" else ()
        return [arrays, hook_count, quantizers]

    def _current_fcr_state(self) -> list:
        """Staleness signature of the FCR plan.

        In float mode the ``linear`` step reads weights from the live module
        (so only hook changes matter for staleness), but the compiled plan is
        thereby *bound to that module object* — its identity joins the
        signature so the plan cache never serves one model's live-weight plan
        to another model of the same architecture.  The int8 lowering freezes
        quantized weights into the plan, so weight identities and quantizer
        thresholds participate as well.
        """
        fcr = self.model.fcr
        hooks = sum(len(module._forward_hooks) for module in fcr.modules())
        if self.mode != "int8":
            return [hooks, fcr]
        arrays = [parameter.data for parameter in fcr.parameters()]
        return [hooks, arrays, self._quantizer_signature(fcr)]

    #: Plan-staleness comparison, shared with the plan cache's signature
    #: revalidation so both layers agree on what counts as "changed".
    _state_differs = staticmethod(signatures_differ)

    def _plan_cache_key(self, component: str) -> tuple:
        """``(component, arch, mode, input_shape, optimize)`` cache key.

        The input shape is the spatial resolution the architecture is
        defined for (plans are batch-agnostic); for the FCR the feature
        dimensionality plays that role.
        """
        arch = getattr(self.model.config, "backbone",
                       type(self.model.backbone).__name__)
        if component == "fcr":
            shape = (getattr(self.model.fcr, "in_features", None),)
        else:
            try:
                from ..models.registry import get_config
                size = get_config(arch).input_size
                shape = (3, size, size)
            except KeyError:
                shape = None
        return (component, arch, self.mode, shape, True)

    @property
    def backbone_engine(self) -> InferenceEngine:
        state = self._current_backbone_state()
        if self._backbone_engine is None or \
                self._state_differs(state, self._backbone_state):
            plan = self.plan_cache.get_or_compile(
                self._plan_cache_key("backbone"), state,
                lambda: optimize_plan(
                    compile_backbone(self.model.backbone, mode=self.mode)))
            self._backbone_engine = InferenceEngine(
                plan,
                micro_batch=self.micro_batch, num_threads=self.num_threads,
                cache_budget=self.cache_budget, registry=self.registry,
                metrics_prefix="engine.backbone", profiler=self.profiler)
            self._backbone_state = state
        return self._backbone_engine

    @property
    def fcr_engine(self) -> InferenceEngine:
        state = self._current_fcr_state()
        if self._fcr_engine is None or \
                self._state_differs(state, self._fcr_state):
            plan = self.plan_cache.get_or_compile(
                self._plan_cache_key("fcr"), state,
                lambda: optimize_plan(
                    compile_module(self.model.fcr, "fcr", mode=self.mode)))
            self._fcr_engine = InferenceEngine(
                plan,
                micro_batch=max(self.micro_batch, 512),
                num_threads=self.num_threads,
                cache_budget=self.cache_budget, registry=self.registry,
                metrics_prefix="engine.fcr", profiler=self.profiler)
            self._fcr_state = state
        return self._fcr_engine

    def refresh(self) -> None:
        """Drop compiled plans and caches.

        Weight rebinds and hook changes are detected automatically; calling
        this is only needed after mutating arrays *in place* (``data[...] =``),
        which nothing in the codebase currently does.
        """
        self._backbone_engine = None
        self._backbone_state = []
        self._fcr_engine = None
        self._fcr_state = []
        self._proto_cache.clear()

    # ------------------------------------------------------------------
    # Feature path (mirrors the eager OFSCIL API)
    # ------------------------------------------------------------------
    def extract_backbone_features(self, images: np.ndarray) -> np.ndarray:
        """Images -> ``theta_a`` through the compiled backbone plan."""
        return self.backbone_engine.run(images)

    def project(self, theta_a: np.ndarray) -> np.ndarray:
        """``theta_a`` -> ``theta_p`` through the live FCR weights."""
        theta_a = np.asarray(theta_a, dtype=np.float32)
        if theta_a.ndim == 1:               # a single feature vector
            return self.fcr_engine.run(theta_a[None])[0]
        return self.fcr_engine.run(theta_a)

    def embed(self, images: np.ndarray) -> np.ndarray:
        """Full feature path: images -> ``theta_p``."""
        return self.project(self.extract_backbone_features(images))

    # ------------------------------------------------------------------
    # Prototype cache
    # ------------------------------------------------------------------
    def prototypes(self, class_ids: Optional[Iterable[int]] = None
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """L2-normalised prototype matrix + ids, cached per memory version."""
        matrix, ids, _codes = self._cached_prototypes(class_ids)
        return matrix, ids

    def _cached_prototypes(self, class_ids: Optional[Iterable[int]] = None
                           ) -> Tuple[np.ndarray, np.ndarray,
                                      Optional[np.ndarray]]:
        """(normalised matrix, ids, int8 codes-or-None), version-cached.

        The int8 codes of the unit rows are a pure function of the matrix, so
        they are quantized once per (memory version, selection) instead of on
        every similarity call.
        """
        memory = self.model.memory
        selection = tuple(int(c) for c in class_ids) \
            if class_ids is not None else None
        key = (memory.version, selection)
        cached = self._proto_cache.get(key)
        if cached is None:
            matrix, ids = memory.prototype_matrix(
                selection if selection is not None else None)
            matrix = normalize_prototypes(matrix)
            codes = quantize_unit_rows(matrix) if self.mode == "int8" else None
            cached = (matrix, ids, codes)
            # Evict entries from stale memory versions (useless after any
            # learning step) while keeping other class-id selections of the
            # current version, e.g. session-restricted evaluation views.
            self._proto_cache = {k: v for k, v in self._proto_cache.items()
                                 if k[0] == key[0]}
            self._proto_cache[key] = cached
            while len(self._proto_cache) > self.MAX_CACHED_SELECTIONS:
                self._proto_cache.pop(next(iter(self._proto_cache)))
        return cached

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def similarities_from_features(self, theta_p: np.ndarray,
                                   class_ids: Optional[Iterable[int]] = None
                                   ) -> Tuple[np.ndarray, np.ndarray]:
        matrix, ids, codes = self._cached_prototypes(class_ids)
        theta_p = np.asarray(theta_p, dtype=np.float32)
        if theta_p.ndim == 1:
            theta_p = theta_p[None, :]
        if self.mode == "int8":
            # Prototype matching as an int8 GEMM with a float rescale: unit
            # rows quantized at the fixed 1/127 grid, exact integer product.
            return int8_cosine_similarities(theta_p, codes), ids
        return cosine_similarities(theta_p, matrix), ids

    def predict_features(self, theta_p: np.ndarray,
                         class_ids: Optional[Iterable[int]] = None
                         ) -> np.ndarray:
        sims, ids = self.similarities_from_features(theta_p, class_ids)
        if ids.size == 0:
            raise ValueError("cannot predict with an empty explicit memory; "
                             "learn at least one class first")
        return ids[np.argmax(sims, axis=1)]

    def predict(self, images: np.ndarray,
                class_ids: Optional[Iterable[int]] = None) -> np.ndarray:
        """Classify images against the cached prototype matrix."""
        return self.predict_features(self.embed(images), class_ids)

    def similarities(self, images: np.ndarray,
                     class_ids: Optional[Iterable[int]] = None
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Similarity scores, with the model's ReLU sharpening applied."""
        sims, ids = self.similarities_from_features(self.embed(images),
                                                    class_ids)
        if getattr(self.model.config, "relu_sharpening", False):
            sims = np.maximum(sims, 0.0)
        return sims, ids

    def accuracy(self, dataset,
                 class_ids: Optional[Iterable[int]] = None) -> float:
        """Top-1 accuracy of batched nearest-prototype classification."""
        if len(dataset) == 0:
            return float("nan")
        predictions = self.predict(dataset.images, class_ids)
        return float((predictions == dataset.labels).mean())

    # ------------------------------------------------------------------
    @property
    def samples_served(self) -> int:
        engine = self._backbone_engine
        return engine.samples_run if engine is not None else 0

    def runtime_stats(self) -> dict:
        """Execution-resource counters of the compiled engines.

        ``arena_peak_bytes`` is the planned-arena footprint at the configured
        micro-batch (0 until the first batch has been served);
        ``cache_bytes`` sums every scratch/arena buffer currently cached.
        """
        engines = [engine for engine in (self._backbone_engine,
                                         self._fcr_engine)
                   if engine is not None]
        stats = {
            "cache_bytes": sum(engine.cache_bytes for engine in engines),
            "arena_slots": sum(engine.arena_slots for engine in engines),
            "arena_peak_bytes": sum(engine.arena_peak_bytes
                                    for engine in engines),
            "arena_unplanned_bytes": sum(engine.arena_unplanned_bytes
                                         for engine in engines),
            "samples_served": self.samples_served,
        }
        if self.profiler is not None:
            stats["profile"] = self.profiler.as_dict()
        return stats
