"""Synthetic dataset generator: determinism, structure, learnability."""

import numpy as np
import pytest

from repro.data import SyntheticConfig, SyntheticImageGenerator, normalize_images


@pytest.fixture(scope="module")
def generator():
    return SyntheticImageGenerator(SyntheticConfig(num_classes=12, image_size=16,
                                                   seed=7))


class TestGenerator:
    def test_images_shape_and_range(self, generator):
        dataset = generator.generate(samples_per_class=4, seed=1)
        assert dataset.images.shape == (48, 3, 16, 16)
        assert dataset.images.dtype == np.float32
        assert dataset.images.min() >= 0.0 and dataset.images.max() <= 1.0

    def test_labels_cover_all_classes(self, generator):
        dataset = generator.generate(samples_per_class=3, seed=1)
        assert set(dataset.labels.tolist()) == set(range(12))

    def test_determinism_same_seed(self, generator):
        a = generator.generate(samples_per_class=2, seed=5)
        b = generator.generate(samples_per_class=2, seed=5)
        np.testing.assert_array_equal(a.images, b.images)

    def test_different_seed_different_samples(self, generator):
        a = generator.generate(samples_per_class=2, seed=5)
        b = generator.generate(samples_per_class=2, seed=6)
        assert not np.array_equal(a.images, b.images)

    def test_same_generator_config_reproducible(self):
        config = SyntheticConfig(num_classes=5, image_size=16, seed=3)
        a = SyntheticImageGenerator(config).generate(2, seed=1)
        b = SyntheticImageGenerator(config).generate(2, seed=1)
        np.testing.assert_array_equal(a.images, b.images)

    def test_class_codes_unit_norm(self, generator):
        norms = np.linalg.norm(generator.class_codes, axis=1)
        np.testing.assert_allclose(norms, np.ones(12), atol=1e-5)

    def test_subset_of_classes(self, generator):
        dataset = generator.generate(samples_per_class=2, seed=1,
                                     class_ids=np.array([3, 7]))
        assert set(dataset.labels.tolist()) == {3, 7}

    def test_intra_class_variation_exists(self, generator):
        dataset = generator.generate(samples_per_class=8, seed=2)
        images = dataset.images[dataset.labels == 0]
        assert np.std(images, axis=0).mean() > 1e-3

    def test_classes_are_separable_above_chance(self, generator):
        """Nearest-class-mean in pixel space must beat chance by a clear margin
        — the dataset has to carry learnable class structure."""
        train = generator.generate(samples_per_class=15, seed=3)
        test = generator.generate(samples_per_class=10, seed=4)
        prototypes = np.stack([
            train.images[train.labels == c].reshape(15, -1).mean(axis=0)
            for c in range(12)])
        prototypes /= np.linalg.norm(prototypes, axis=1, keepdims=True) + 1e-9
        queries = test.images.reshape(len(test), -1)
        queries /= np.linalg.norm(queries, axis=1, keepdims=True) + 1e-9
        predictions = np.argmax(queries @ prototypes.T, axis=1)
        accuracy = (predictions == test.labels).mean()
        assert accuracy > 2.5 / 12.0   # > 2.5x chance

    def test_render_is_deterministic_function_of_latents(self, generator):
        latents = np.random.default_rng(0).standard_normal((3, generator.config.latent_dim)).astype(np.float32)
        np.testing.assert_array_equal(generator.render(latents), generator.render(latents))


class TestNormalization:
    def test_normalize_images_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        images = rng.uniform(0, 1, (64, 3, 8, 8)).astype(np.float32)
        normalized, mean, std = normalize_images(images)
        assert abs(normalized.mean()) < 1e-4
        assert normalized.std() == pytest.approx(1.0, abs=1e-2)

    def test_normalize_with_given_statistics(self):
        rng = np.random.default_rng(0)
        images = rng.uniform(0, 1, (16, 3, 8, 8)).astype(np.float32)
        _, mean, std = normalize_images(images)
        other = rng.uniform(0, 1, (8, 3, 8, 8)).astype(np.float32)
        normalized, _, _ = normalize_images(other, mean, std)
        assert normalized.shape == other.shape
