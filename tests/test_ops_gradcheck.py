"""Numerical gradient checks for every differentiable primitive."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn import ops
from repro.nn.tensor import Tensor


def make(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape).astype(np.float64) * scale,
                  requires_grad=True)


@pytest.mark.parametrize("fn,shapes", [
    (lambda a, b: (a + b).sum(), [(3, 4), (3, 4)]),
    (lambda a, b: (a - b).sum(), [(3, 4), (3, 4)]),
    (lambda a, b: ((a * b) ** 2).mean(), [(3, 4), (3, 4)]),
    (lambda a, b: (a / (b.abs() + 1.0)).sum(), [(3, 4), (3, 4)]),
    (lambda a, b: (a + b).sum(), [(3, 4), (4,)]),          # broadcasting
    (lambda a, b: (a * b).sum(), [(2, 3, 4), (1, 3, 1)]),  # broadcasting
    (lambda a, b: (a @ b).sum(), [(3, 4), (4, 5)]),
    (lambda a, b: ((a @ b) ** 2).mean(), [(2, 3, 4), (2, 4, 5)]),  # batched matmul
])
def test_binary_op_gradients(fn, shapes):
    inputs = [make(shape, seed=index + 1) for index, shape in enumerate(shapes)]
    assert nn.check_gradients(fn, inputs)


@pytest.mark.parametrize("fn,shape", [
    (lambda a: (-a).sum(), (3, 4)),
    (lambda a: (a ** 3).mean(), (3, 4)),
    (lambda a: a.exp().sum(), (3, 3)),
    (lambda a: (a.abs() + 1.0).log().sum(), (3, 3)),
    (lambda a: (a.abs() + 0.5).sqrt().sum(), (3, 3)),
    (lambda a: a.sum(axis=1).sum(), (4, 5)),
    (lambda a: a.sum(axis=(0, 2), keepdims=True).sum(), (2, 3, 4)),
    (lambda a: a.mean(axis=0).sum(), (4, 5)),
    (lambda a: a.mean().sum(), (4, 5)),
    (lambda a: a.reshape(20).sum(), (4, 5)),
    (lambda a: a.transpose().sum(), (4, 5)),
    (lambda a: a.flatten(1).mean(), (2, 3, 4)),
    (lambda a: (a.clip(-0.5, 0.5) ** 2).sum(), (5, 5)),
    (lambda a: F.relu(a).sum(), (5, 5)),
    (lambda a: F.relu6(a * 4.0).sum(), (5, 5)),
    (lambda a: F.sigmoid(a).sum(), (4, 4)),
    (lambda a: F.tanh(a).sum(), (4, 4)),
    (lambda a: (F.softmax(a, axis=-1) ** 2).sum(), (3, 6)),
    (lambda a: (F.log_softmax(a, axis=-1) ** 2).mean(), (3, 6)),
    (lambda a: F.l2_normalize(a, axis=-1).sum(), (4, 6)),
    (lambda a: F.pad2d(a, 2).sum(), (2, 3, 4, 4)),
    (lambda a: F.global_avg_pool2d(a).sum(), (2, 3, 4, 4)),
])
def test_unary_op_gradients(fn, shape):
    assert nn.check_gradients(fn, [make(shape, seed=7)])


def test_abs_gradient_away_from_zero():
    x = Tensor(np.array([1.5, -2.0, 3.0]), requires_grad=True)
    assert nn.check_gradients(lambda a: a.abs().sum(), [x])


def test_max_gradient():
    x = make((4, 5), seed=11)
    assert nn.check_gradients(lambda a: a.max(axis=1).sum(), [x])


def test_slice_gradient():
    x = make((4, 5), seed=13)
    assert nn.check_gradients(lambda a: (a[1:3, ::2] ** 2).sum(), [x])


def test_stack_concat_gradients():
    a, b = make((3, 4), seed=1), make((3, 4), seed=2)
    assert nn.check_gradients(lambda a, b: (nn.stack([a, b], axis=0) ** 2).sum(), [a, b])
    assert nn.check_gradients(
        lambda a, b: (nn.concatenate([a, b], axis=1) ** 2).sum(), [a, b])


def test_cosine_similarity_gradients():
    a, b = make((4, 6), seed=3), make((4, 6), seed=4)
    assert nn.check_gradients(
        lambda a, b: F.cosine_similarity(a, b, axis=-1).sum(), [a, b])


def test_cosine_similarity_matrix_gradients():
    queries, prototypes = make((3, 5), seed=5), make((4, 5), seed=6)
    assert nn.check_gradients(
        lambda q, p: (F.cosine_similarity_matrix(q, p) ** 2).sum(),
        [queries, prototypes])


def test_linear_gradients():
    x, w, b = make((4, 6), seed=8), make((3, 6), seed=9), make((3,), seed=10)
    assert nn.check_gradients(lambda x, w, b: (F.linear(x, w, b) ** 2).mean(), [x, w, b])


def test_dropout_gradient_scales_by_mask():
    x = make((8, 8), seed=12)
    out = F.dropout(x, p=0.5, training=True, seed=3)
    out.sum().backward()
    mask = (out.data != 0).astype(np.float64)
    np.testing.assert_allclose(x.grad, mask * 2.0, atol=1e-6)


def test_softmax_rows_sum_to_one():
    x = make((5, 7), seed=21)
    np.testing.assert_allclose(F.softmax(x, axis=-1).data.sum(axis=-1), np.ones(5),
                               atol=1e-6)


def test_log_softmax_matches_softmax():
    x = make((5, 7), seed=22)
    np.testing.assert_allclose(F.log_softmax(x, axis=-1).data,
                               np.log(F.softmax(x, axis=-1).data), atol=1e-6)


def test_one_hot():
    out = F.one_hot(np.array([0, 2, 1]), 4)
    assert out.shape == (3, 4)
    np.testing.assert_allclose(out.sum(axis=1), np.ones(3))
    assert out[1, 2] == 1.0


def test_embedding_gather_and_backward():
    weight = make((6, 4), seed=30)
    indices = np.array([0, 2, 2, 5])
    out = ops.Embedding.apply(weight, indices)
    assert out.shape == (4, 4)
    out.sum().backward()
    # Row 2 is gathered twice so it accumulates a gradient of 2.
    np.testing.assert_allclose(weight.grad[2], np.full(4, 2.0))
    np.testing.assert_allclose(weight.grad[1], np.zeros(4))


def test_batchnorm_function_gradients():
    x = make((6, 3, 4, 4), seed=31, scale=2.0)
    weight = make((3,), seed=32)
    bias = make((3,), seed=33)

    def fn(x, weight, bias):
        return (ops.BatchNormTrain.apply(x, weight, bias, 1e-5) ** 2).mean()

    assert nn.check_gradients(fn, [x, weight, bias])
