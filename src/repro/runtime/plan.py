"""Flat op plans for the inference runtime.

A plan is a linear sequence of :class:`Step` objects operating on a small
register file (plain dict of arrays).  There is no ``Function`` tape and no
gradient bookkeeping: each step reads its input registers, writes one output
register, and the executor frees registers after their last use so residual
branches do not pin activations longer than needed.

Plans are produced by :mod:`repro.runtime.compiler` (which folds batch norm
into the preceding convolution and fuses activations into their producer)
and executed by :class:`repro.runtime.engine.InferenceEngine`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.modules import Module
from ..nn.tensor import Tensor, no_grad
from . import kernels


@dataclass
class Step:
    """One operation of a flat inference plan."""

    op: str                       # conv | linear | bn | act | add | global_pool |
                                  # max_pool | avg_pool | flatten | opaque |
                                  # quantize | dequantize | requantize |
                                  # qrequantize | qconv | qconv_dequant |
                                  # qlinear | qglobal_pool | qconv_add
    name: str                     # human-readable layer name (for debugging)
    inputs: Tuple[str, ...]       # register names read by the step
    output: str                   # register name written by the step
    #: static ndarray attributes (folded weights, biases, bn scale/shift)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    #: scalar attributes (stride, padding, groups, kernel_size, act, ...)
    attrs: Dict[str, object] = field(default_factory=dict)
    #: live module references (``linear`` reads weights at execution time so
    #: in-place fine-tuning is picked up; ``opaque`` calls the module eagerly)
    module: Optional[Module] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Step({self.op!r}, {self.name!r}, "
                f"{','.join(self.inputs)} -> {self.output})")


@dataclass
class InferencePlan:
    """A compiled, autograd-free forward pass."""

    steps: List[Step]
    input_register: str = "x"
    output_register: str = ""
    name: str = "plan"
    #: set by :func:`repro.runtime.optimizer.optimize_plan`; optimized plans
    #: are not re-optimized when handed to another engine (or a worker).
    optimized: bool = False
    #: per-rewrite-rule application counts recorded by the graph pipeline
    #: (``{rule name: times applied}``); empty on raw plans.
    pass_stats: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        if not self.output_register and self.steps:
            self.output_register = self.steps[-1].output

    def __len__(self) -> int:
        return len(self.steps)

    # ------------------------------------------------------------------
    def last_use(self) -> Dict[str, int]:
        """Index of the final step reading each register (for freeing)."""
        uses: Dict[str, int] = {}
        for index, step in enumerate(self.steps):
            for register in step.inputs:
                uses[register] = index
        # The plan output must survive the whole execution.
        uses[self.output_register] = len(self.steps)
        return uses

    def describe(self, memory_plan=None) -> str:
        """Human-readable plan listing (one line per step).

        With a :class:`~repro.runtime.optimizer.MemoryPlan` the listing is
        followed by the arena summary: slot count, ``peak_bytes`` per sample
        and the registers hosted by each slot.
        """
        lines = [f"# plan {self.name!r}: {len(self.steps)} steps"]
        for step in self.steps:
            attrs = ", ".join(f"{k}={v}" for k, v in sorted(step.attrs.items())
                              if v is not None)
            lines.append(f"{step.output:>8} = {step.op}({', '.join(step.inputs)}"
                         f"{'; ' + attrs if attrs else ''})  # {step.name}")
        if memory_plan is not None:
            lines.append(memory_plan.describe())
        return "\n".join(lines)

    def num_fused(self) -> int:
        """Number of conv/linear steps carrying a fused activation."""
        return sum(1 for step in self.steps
                   if step.op in ("conv", "linear")
                   and step.attrs.get("act") is not None)

    def num_integer(self) -> int:
        """Number of steps executing on int8 inputs with int32 accumulation."""
        return sum(1 for step in self.steps
                   if step.op in ("qconv", "qconv_dequant", "qlinear",
                                  "qconv_add"))

    def storage_bytes(self) -> int:
        """Deployable parameter storage with true per-step dtype accounting.

        Int8 steps count one byte per weight plus four bytes per output
        channel for the int32 bias and four for the requantization factor
        (shipped as an int32 multiplier + shift on the target, even though
        the host plan holds them as float64).  Float steps count their arrays
        at the stored width; ``linear`` steps that read a live module count
        the module parameters at float32.
        """
        total = 0
        for step in self.steps:
            if step.op in ("qconv", "qconv_dequant", "qlinear", "qconv_add"):
                weight = step.arrays["weight"]
                out_channels = weight.shape[0]
                total += weight.size                     # int8 weights
                total += 4 * out_channels                # int32 bias
                total += 4 * out_channels                # requant multiplier
            elif step.op == "linear" and step.module is not None:
                total += step.module.weight.data.size * 4
                if step.module.bias is not None:
                    total += step.module.bias.data.size * 4
            else:
                total += sum(array.nbytes for array in step.arrays.values())
        return total

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray,
                cache: Optional[kernels.BufferCache] = None,
                memory_plan=None, record: Optional[Dict] = None,
                profiler=None) -> np.ndarray:
        """Run the plan on one micro-batch of raw arrays.

        With a matching :class:`~repro.runtime.optimizer.MemoryPlan` (and a
        cache to own the arena buffers) every managed step writes its result
        into a pre-assigned arena slot through the kernel ``out=`` paths —
        same arithmetic, no per-step allocation.  ``record``, when given, is
        filled with each step output's ``(shape, dtype string)`` — the
        engine's way of collecting the shapes a memory plan needs without a
        synthetic dry run.

        ``profiler`` (a :class:`~repro.obs.planprof.PlanProfiler`) records
        each step's wall time and bytes moved (inputs read + output
        written); ``None`` costs one comparison per step.
        """
        registers: Dict[str, np.ndarray] = {self.input_register: x}
        last_use = self.last_use()
        planned = memory_plan is not None and cache is not None \
            and x.ndim >= 1 and memory_plan.matches(x.shape[1:])
        batch = x.shape[0]
        for index, step in enumerate(self.steps):
            started = time.perf_counter() if profiler is not None else 0.0
            if planned and step.output in memory_plan.alias_of:
                source = registers[memory_plan.alias_of[step.output]]
                value = source.reshape(batch, -1)
            else:
                out = memory_plan.out_view(step.output, batch, cache) \
                    if planned else None
                value = _execute_step(step, registers, cache, out)
            if profiler is not None:
                moved = value.nbytes + sum(
                    registers[reg].nbytes for reg in step.inputs
                    if reg in registers)
                profiler.record(self.name, index, step.op, step.name,
                                time.perf_counter() - started, moved)
            registers[step.output] = value
            if record is not None:
                record[step.output] = (value.shape, value.dtype.str)
            for register in step.inputs:
                if last_use.get(register, -1) <= index and \
                        register != self.output_register:
                    registers.pop(register, None)
        return registers[self.output_register]


def _execute_step(step: Step, registers: Dict[str, np.ndarray],
                  cache: Optional[kernels.BufferCache],
                  out: Optional[np.ndarray] = None) -> np.ndarray:
    x = registers[step.inputs[0]]
    op = step.op
    if op == "conv":
        return kernels.fused_conv(
            x, step.arrays["weight"], step.arrays.get("bias"),
            stride=step.attrs.get("stride", 1),
            padding=step.attrs.get("padding", 0),
            groups=step.attrs.get("groups", 1),
            act=step.attrs.get("act"), cache=cache, out=out)
    if op == "linear":
        # Weights are read from the live module so in-place updates (e.g. the
        # on-device FCR fine-tuning) are reflected without recompiling.
        # Serialized plans (repro.serve snapshots) carry no module references;
        # their weights are frozen into the step arrays instead.
        module = step.module
        if module is not None:
            weight = module.weight.data
            bias = module.bias.data if module.bias is not None else None
        else:
            weight = step.arrays["weight"]
            bias = step.arrays.get("bias")
        return kernels.fused_linear(x, weight, bias, act=step.attrs.get("act"),
                                    out=out)
    if op == "qconv":
        return kernels.fused_qconv(
            x, step.arrays["weight"], step.arrays["bias"],
            step.arrays["multiplier"],
            stride=step.attrs.get("stride", 1),
            padding=step.attrs.get("padding", 0),
            groups=step.attrs.get("groups", 1),
            qmin=step.attrs.get("qmin", kernels.INT8_QMIN),
            qmax=step.attrs.get("qmax", kernels.INT8_QMAX),
            cache=cache, acc_bound=step.attrs.get("acc_bound"), out=out)
    if op == "qconv_dequant":
        return kernels.fused_qconv_dequant(
            x, step.arrays["weight"], step.arrays["dequant"],
            step.arrays.get("bias"),
            stride=step.attrs.get("stride", 1),
            padding=step.attrs.get("padding", 0),
            groups=step.attrs.get("groups", 1),
            act=step.attrs.get("act"), cache=cache,
            acc_bound=step.attrs.get("acc_bound"), out=out)
    if op == "qconv_add":
        # Residual superfusion: the projection conv's dequantized result
        # flows straight into the residual add.  Both halves run the exact
        # kernels of the standalone ``qconv_dequant`` and fused ``add``
        # steps, so the superfused step is bit-identical by construction;
        # only the full-size float intermediate register disappears.
        conv = kernels.fused_qconv_dequant(
            x, step.arrays["weight"], step.arrays["dequant"],
            step.arrays.get("bias"),
            stride=step.attrs.get("stride", 1),
            padding=step.attrs.get("padding", 0),
            groups=step.attrs.get("groups", 1),
            act=step.attrs.get("act"), cache=cache,
            acc_bound=step.attrs.get("acc_bound"))
        other = registers[step.inputs[1]]
        other_scale = step.attrs.get("other_scale")
        if step.attrs.get("position", 0) == 0:
            operands = (conv, other)
            scales = (None, other_scale)
        else:
            operands = (other, conv)
            scales = (other_scale, None)
        return kernels.fused_add(
            operands[0], operands[1], in_scale_x=scales[0],
            in_scale_y=scales[1], act=step.attrs.get("add_act"),
            out_scale=step.attrs.get("out_scale"), cache=cache, out=out)
    if op == "qlinear":
        return kernels.fused_qlinear(x, step.arrays["weight"],
                                     step.arrays["dequant"],
                                     step.arrays.get("bias"),
                                     act=step.attrs.get("act"), out=out)
    if op == "quantize":
        return kernels.quantize_int8(x, step.attrs["scale"], out=out)
    if op == "dequantize":
        return kernels.dequantize_int8(x, step.attrs["scale"], out=out)
    if op == "requantize":
        return kernels.requantize_float(x, step.attrs["scale"], out=out)
    if op == "qrequantize":
        return kernels.requantize_codes(x, step.attrs["in_scale"],
                                        step.attrs["scale"], cache=cache,
                                        out=out)
    if op == "bn":
        return kernels.batchnorm_inference(x, step.arrays["scale"],
                                           step.arrays["shift"],
                                           act=step.attrs.get("act"), out=out)
    if op == "act":
        if out is None:
            return kernels.apply_activation(x.copy(), step.attrs["act"])
        np.copyto(out, x)
        return kernels.apply_activation(out, step.attrs["act"])
    if op == "add":
        return kernels.fused_add(
            x, registers[step.inputs[1]],
            in_scale_x=step.attrs.get("in_scale_0"),
            in_scale_y=step.attrs.get("in_scale_1"),
            act=step.attrs.get("act"),
            out_scale=step.attrs.get("out_scale"), cache=cache, out=out)
    if op == "global_pool":
        return kernels.global_avg_pool(x, out=out)
    if op == "qglobal_pool":
        return kernels.int_global_avg_pool(x, step.attrs["scale"], out=out)
    if op == "max_pool":
        return kernels.max_pool(x, step.attrs["kernel_size"],
                                step.attrs["stride"], out=out)
    if op == "avg_pool":
        return kernels.avg_pool(x, step.attrs["kernel_size"],
                                step.attrs["stride"], out=out)
    if op == "flatten":
        return x.reshape(x.shape[0], -1)
    if op == "opaque":
        # Fallback for unknown modules (or modules carrying forward hooks,
        # e.g. activation fake-quantisation): call the module eagerly with
        # gradients off.  Slower, but always correct.
        module = step.module
        was_training = module.training
        module.eval()
        try:
            with no_grad():
                out = module(Tensor(x)).data
        finally:
            module.train(was_training)
        return out
    raise ValueError(f"unknown op {op!r} in step {step.name!r}")
