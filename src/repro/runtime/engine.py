"""Micro-batched executor for compiled (and optimized) inference plans."""

from __future__ import annotations

import dataclasses
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

import numpy as np

from ..nn.modules import Module
from ..obs.trace import ambient_span
from .compiler import compile_module
from .kernels import BufferCache
from .optimizer import MemoryPlan, optimize_plan, plan_memory
from .plan import InferencePlan

#: Default micro-batch size; keeps the im2col working set inside the CPU
#: cache for the laptop-profile backbones while amortising per-layer
#: dispatch overhead across the whole batch.
DEFAULT_MICRO_BATCH = 64

#: Cap on the default chunk-execution thread count.  NumPy releases the GIL
#: inside BLAS and ufunc loops, so a handful of threads covers the
#: non-GEMM work; more mostly fights the BLAS library's own threading.
MAX_DEFAULT_THREADS = 4


def default_num_threads() -> int:
    """Worker threads for chunk execution: min(4, usable cores)."""
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cores = os.cpu_count() or 1
    return max(1, min(MAX_DEFAULT_THREADS, cores))


class InferenceEngine:
    """Executes an :class:`InferencePlan` over arbitrarily large inputs.

    Incoming samples are split into micro-batches; each micro-batch flows
    through the flat op plan with a :class:`BufferCache`, so steady-state
    execution reuses the same im2col / arena buffers for every batch of the
    same shape.

    ``optimize=True`` (the default) runs the post-compile passes of
    :mod:`repro.runtime.optimizer` on the plan and executes through the
    liveness-planned arena: the memory plan is derived from the first real
    chunk the engine runs (recording its shapes — no synthetic dry run) and
    reused for every following chunk of the same per-sample shape.

    When several chunks are ready and the plan has no stateful (``opaque``)
    steps, they execute concurrently on a thread pool with one
    :class:`BufferCache` per thread — bit-identical to serial execution
    because chunks are independent and each thread owns its scratch space.
    Intra-process threading composes with :mod:`repro.serve` process
    sharding: workers receive single micro-batches and stay serial.
    """

    def __init__(self, plan: InferencePlan,
                 micro_batch: int = DEFAULT_MICRO_BATCH,
                 optimize: bool = True,
                 num_threads: Optional[int] = None,
                 cache_budget: Optional[int] = None,
                 memory_plan: Optional[MemoryPlan] = None,
                 registry=None, metrics_prefix: str = "engine",
                 profiler=None):
        if micro_batch < 1:
            raise ValueError("micro_batch must be >= 1")
        self.plan = optimize_plan(plan) if optimize else plan
        self.optimize = optimize
        self.micro_batch = micro_batch
        self.num_threads = num_threads if num_threads is not None \
            else default_num_threads()
        if self.num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.cache_budget = cache_budget
        self.cache = BufferCache(max_bytes=cache_budget)
        # A supplied memory plan maps registers of the plan it was recorded
        # against.  If optimization rewrote the plan above (renaming fused
        # registers), or planned execution is off entirely, the spec no
        # longer applies — drop it and let the first run re-record.  The
        # snapshot path restores plans with ``optimized=True``, which
        # ``optimize_plan`` passes through untouched, so worker replicas
        # keep their shipped arena spec.  The arena capacity is raised to
        # this engine's micro-batch: chunks larger than the shipped
        # ``capacity_batch`` would otherwise key one eviction-exempt buffer
        # per distinct batch size per slot.
        if memory_plan is not None and optimize and plan.optimized:
            shipped = getattr(memory_plan, "capacity_batch", 1)
            if shipped < micro_batch:
                memory_plan = dataclasses.replace(memory_plan,
                                                  capacity_batch=micro_batch)
            self.memory_plan: Optional[MemoryPlan] = memory_plan
        else:
            self.memory_plan = None
        self.batches_run = 0
        self.samples_run = 0
        #: Optional :class:`~repro.obs.planprof.PlanProfiler`; ``None`` costs
        #: one comparison per executed step.
        self.profiler = profiler
        self._parallel_ok = all(step.op != "opaque"
                                for step in self.plan.steps)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._tls = threading.local()
        self._tls.cache = self.cache
        self._caches: List[BufferCache] = [self.cache]
        self._caches_lock = threading.Lock()
        self.metrics_prefix = metrics_prefix
        self._bind_registry(registry)

    def _bind_registry(self, registry) -> None:
        """Register this engine's gauges in ``registry`` (callback-valued).

        Gauges are read lazily at scrape time, so an instrumented engine
        pays nothing per request — the registry only ever calls back into
        the ``cache_bytes`` / ``arena_peak_bytes`` properties when someone
        scrapes it.
        """
        self.registry = registry
        if registry is None:
            return
        prefix = self.metrics_prefix
        registry.gauge(f"{prefix}.samples_run", fn=lambda: self.samples_run)
        registry.gauge(f"{prefix}.batches_run", fn=lambda: self.batches_run)
        registry.gauge(f"{prefix}.cache_bytes", fn=lambda: self.cache_bytes)
        registry.gauge(f"{prefix}.arena_peak_bytes",
                       fn=lambda: self.arena_peak_bytes)
        registry.gauge(f"{prefix}.arena_slots", fn=lambda: self.arena_slots)
        registry.gauge(f"{prefix}.plan_steps", fn=lambda: len(self.plan))
        # Graph-rewrite statistics of the optimized plan (all zero when the
        # engine runs a raw plan): total rule applications plus the CSE
        # count, the two aggregate health signals of the rewrite pipeline.
        registry.gauge(
            f"{prefix}.opt_rule_applications",
            fn=lambda: sum(getattr(self.plan, "pass_stats", {}).values()))
        registry.gauge(
            f"{prefix}.opt_cse_hits",
            fn=lambda: getattr(self.plan, "pass_stats", {}).get(
                "common_subexpression_elimination", 0))

    @classmethod
    def for_module(cls, module: Module,
                   micro_batch: int = DEFAULT_MICRO_BATCH) -> "InferenceEngine":
        """Compile ``module`` and wrap the plan in an engine."""
        return cls(compile_module(module), micro_batch=micro_batch)

    # ------------------------------------------------------------------
    # Thread pools, locks and thread-local caches are runtime-only state:
    # copies (``copy.deepcopy`` of a model holding cached engines) restart
    # with empty caches and a fresh pool.
    def __getstate__(self):
        state = self.__dict__.copy()
        # Telemetry handles (the registry's closures capture ``self``; the
        # profiler holds cross-engine instruments) are process-local too.
        for transient in ("cache", "_pool", "_tls", "_caches",
                          "_caches_lock", "registry", "profiler"):
            state.pop(transient, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.cache = BufferCache(max_bytes=self.cache_budget)
        self._pool = None
        self._tls = threading.local()
        self._tls.cache = self.cache
        self._caches = [self.cache]
        self._caches_lock = threading.Lock()
        self.profiler = None
        self._bind_registry(None)

    # ------------------------------------------------------------------
    def run(self, images: np.ndarray) -> np.ndarray:
        """Run the plan over ``images``, micro-batching as needed.

        When a traced request is ambient (a serving worker activated its
        ``worker.execute`` span around :meth:`handle
        <repro.serve.worker._WorkerState.handle>`), the execution nests an
        ``engine.run`` child span; otherwise the wrapper is one contextvar
        read.
        """
        with ambient_span(f"{self.metrics_prefix}.run",
                          attrs_fn=lambda: {"plan": self.plan.name,
                                            "samples": len(images)}):
            return self._run(images)

    def _run(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float32)
        squeeze = images.ndim == 3
        if squeeze:                       # a single sample without batch dim
            images = images[None]
        total = images.shape[0]
        if total == 0:
            raise ValueError("cannot run the engine on an empty batch")
        chunks = [np.ascontiguousarray(images[start:start + self.micro_batch])
                  for start in range(0, total, self.micro_batch)]
        outputs = []
        if self.optimize and (self.memory_plan is None or
                              not self.memory_plan.matches(chunks[0].shape[1:])):
            # First contact with this input shape: execute the chunk through
            # the classic path while recording output shapes, then plan the
            # arena every later chunk executes in.  A superseded plan's slot
            # buffers are retired from every cache — they can never be
            # requested again under the new plan's slot sizes.
            if self.memory_plan is not None:
                with self._caches_lock:
                    for cache in self._caches:
                        cache.drop_arena()
            record: dict = {}
            outputs.append(self.plan.execute(chunks[0], self.cache,
                                             record=record,
                                             profiler=self.profiler))
            self.batches_run += 1
            self.memory_plan = plan_memory(self.plan, record, chunks[0].shape,
                                           capacity_batch=self.micro_batch)
            chunks = chunks[1:]
        if len(chunks) > 1 and self.num_threads > 1 and self._parallel_ok:
            outputs.extend(self._run_parallel(chunks))
            self.batches_run += len(chunks)
        else:
            for chunk in chunks:
                outputs.append(self._run_chunk(chunk))
                self.batches_run += 1
        self.samples_run += total
        out = outputs[0] if len(outputs) == 1 else np.concatenate(outputs, axis=0)
        return out[0] if squeeze else out

    __call__ = run

    def _run_chunk(self, chunk: np.ndarray) -> np.ndarray:
        cache = getattr(self._tls, "cache", None)
        if cache is None:
            cache = BufferCache(max_bytes=self.cache_budget)
            self._tls.cache = cache
            with self._caches_lock:
                self._caches.append(cache)
        return self.plan.execute(chunk, cache, memory_plan=self.memory_plan,
                                 profiler=self.profiler)

    def _run_parallel(self, chunks: List[np.ndarray]) -> List[np.ndarray]:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.num_threads,
                                            thread_name_prefix="repro-engine")
        futures = [self._pool.submit(self._run_chunk, chunk)
                   for chunk in chunks]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        with self._caches_lock:
            for cache in self._caches:
                cache.clear()

    def close(self) -> None:
        """Shut the chunk thread pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    @property
    def cache_bytes(self) -> int:
        with self._caches_lock:
            return sum(cache.nbytes for cache in self._caches)

    @property
    def arena_slots(self) -> int:
        return self.memory_plan.num_slots if self.memory_plan is not None else 0

    @property
    def arena_peak_bytes(self) -> int:
        """Total arena footprint at the configured micro-batch (0 until planned).

        Each execution context (the engine's own cache plus one per pool
        thread that has run chunks) materialises its own arena, so the
        total is the planned per-arena peak times the number of registered
        caches — the figure an operator should size memory from.
        """
        if self.memory_plan is None:
            return 0
        with self._caches_lock:
            contexts = len(self._caches)
        return self.memory_plan.peak_bytes(self.micro_batch) * contexts

    @property
    def arena_unplanned_bytes(self) -> int:
        """Per-step fresh-allocation bytes the arena replaces (same contexts)."""
        if self.memory_plan is None:
            return 0
        with self._caches_lock:
            contexts = len(self._caches)
        return self.memory_plan.unplanned_bytes(self.micro_batch) * contexts

    def describe(self) -> str:
        return self.plan.describe(self.memory_plan)
