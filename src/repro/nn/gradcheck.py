"""Numerical gradient checking utilities used by the test suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-4) -> np.ndarray:
    """Central-difference gradient of ``fn`` w.r.t. ``inputs[index]``.

    ``fn`` must return a scalar tensor.  Inputs are perturbed in place and
    restored, so the provided tensors are unchanged on return.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data)
        flat[i] = original - eps
        minus = float(fn(*inputs).data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                    eps: float = 1e-4, atol: float = 1e-3, rtol: float = 1e-2) -> bool:
    """Compare analytic and numerical gradients of ``fn`` for every input.

    Returns True when all gradients match within tolerance; raises
    ``AssertionError`` with a diagnostic message otherwise.
    """
    for tensor in inputs:
        tensor.grad = None
    output = fn(*inputs)
    output.backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, inputs, index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            max_err = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs error {max_err:.3e}")
    return True
