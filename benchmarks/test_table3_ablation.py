"""Table III — ablation of augmentation, orthogonality, multi-margin, CE, FT.

Runs the seven rows of Table III on the miniature test profile (so the whole
ablation completes in a few minutes) and checks the qualitative findings of
the paper: augmentation helps, orthogonality regularization helps on top of
it, and the multi-margin metalearning configuration is the best overall.
"""

import os

import numpy as np
import pytest

from repro.core import (
    MetalearnConfig,
    PipelineConfig,
    PretrainConfig,
    TABLE3_ROWS,
    format_ablation_table,
    run_ablation,
)
from repro.data import build_synthetic_fscil

# Full-scale benchmark reproduction: minutes of training; excluded from
# the default (fast) suite by the `slow` marker — run with `pytest -m slow`.
pytestmark = pytest.mark.slow

ABLATION_EPOCHS = int(os.environ.get("REPRO_BENCH_ABLATION_EPOCHS", "12"))


@pytest.fixture(scope="module")
def ablation_rows():
    benchmark_data = build_synthetic_fscil("test", seed=3)
    base_config = PipelineConfig(
        backbone="mobilenetv2_x4_tiny", profile="test",
        pretrain=PretrainConfig(epochs=ABLATION_EPOCHS, batch_size=32,
                                learning_rate=0.12, seed=0),
        metalearn=MetalearnConfig(iterations=10, meta_shots=5, queries_per_class=2,
                                  learning_rate=0.02, seed=0),
        seed=0)
    return run_ablation(base_config, benchmark=benchmark_data, rows=TABLE3_ROWS)


def test_table3_ablation(benchmark, ablation_rows):
    rows = benchmark.pedantic(lambda: ablation_rows, rounds=1, iterations=1)
    print("\nTable III — ablation study (miniature synthetic protocol)")
    print(format_ablation_table(rows))

    by_label = {row.flags.label(): row.result for row in rows}

    assert len(rows) == 7
    # Every configuration produces a full set of session accuracies.
    for row in rows:
        assert len(row.result.session_accuracy) >= 5
        assert all(np.isfinite(row.result.session_accuracy))

    # On the miniature protocol (tiny backbone, 8 base classes, few epochs)
    # not every full-scale ordering of Table III transfers: the strong
    # augmentation + Mixup/CutMix recipe is tuned for CIFAR-scale training
    # budgets and slows convergence here (see EXPERIMENTS.md).  The findings
    # that do transfer — and are asserted — are:
    #  (1) orthogonality regularization improves the augmented configuration,
    #  (2) the optional FCR fine-tuning does not hurt the full method.
    assert by_label["AG+OR"].average_accuracy >= \
        by_label["AG"].average_accuracy - 0.02
    assert by_label["AG+OR+MM+FT"].average_accuracy >= \
        by_label["AG+OR+MM"].average_accuracy - 0.05
    # All ablation rows are evaluated under the identical protocol, so the
    # comparison table itself (printed above) is the reproduced artefact.
    baseline = by_label["baseline"].average_accuracy
    assert all(np.isfinite([baseline]))


def test_table3_orthogonality_contribution(ablation_rows):
    """The paper's key ablation finding: orthogonality regularization boosts
    accuracy on top of augmentation (1.65-2.87 points in the paper)."""
    by_label = {row.flags.label(): row.result for row in ablation_rows}
    print(f"\nAG avg {100 * by_label['AG'].average_accuracy:.2f}% -> "
          f"AG+OR avg {100 * by_label['AG+OR'].average_accuracy:.2f}%")
    assert by_label["AG+OR"].average_accuracy >= by_label["AG"].average_accuracy - 0.02


def test_table3_metalearning_loss_choice(ablation_rows):
    """Both metalearning variants (multi-margin and cross-entropy) must run
    to completion and produce usable models; their relative ordering at the
    miniature scale is reported, the full-scale ordering (MM > CE) is a
    documented deviation in EXPERIMENTS.md."""
    by_label = {row.flags.label(): row.result for row in ablation_rows}
    multi_margin = by_label["AG+OR+MM"].average_accuracy
    cross_entropy = by_label["AG+OR+CE"].average_accuracy
    print(f"\nMM metalearning avg {100 * multi_margin:.2f}% vs "
          f"CE metalearning avg {100 * cross_entropy:.2f}%")
    chance = 1.0 / 20.0
    assert multi_margin > chance * 0.5
    assert cross_entropy > chance * 0.5
