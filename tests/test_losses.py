"""Loss functions: values against manual references and gradient checks."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn import losses
from repro.nn.tensor import Tensor


def make(shape, seed=0):
    return Tensor(np.random.default_rng(seed).standard_normal(shape).astype(np.float64),
                  requires_grad=True)


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = np.array([[2.0, 0.5, -1.0], [0.0, 1.0, 0.0]])
        labels = np.array([0, 1])
        loss = losses.cross_entropy(Tensor(logits), labels)
        log_probs = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        expected = -np.mean([log_probs[0, 0], log_probs[1, 1]])
        assert float(loss.data) == pytest.approx(expected, rel=1e-6)

    def test_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = losses.cross_entropy(Tensor(logits), np.array([0, 1]))
        assert float(loss.data) == pytest.approx(0.0, abs=1e-6)

    def test_soft_targets_match_hard_targets_for_one_hot(self):
        logits = make((4, 5), seed=1)
        labels = np.array([0, 1, 2, 3])
        hard = losses.cross_entropy(logits, labels)
        soft = losses.cross_entropy(logits, F.one_hot(labels, 5))
        assert float(hard.data) == pytest.approx(float(soft.data), rel=1e-6)

    def test_label_smoothing_increases_loss_for_confident_model(self):
        logits = Tensor(np.array([[10.0, -10.0]]))
        labels = np.array([0])
        plain = losses.cross_entropy(logits, labels)
        smoothed = losses.cross_entropy(logits, labels, label_smoothing=0.2)
        assert float(smoothed.data) > float(plain.data)

    def test_gradient(self):
        logits = make((5, 7), seed=2)
        labels = np.random.default_rng(0).integers(0, 7, 5)
        assert nn.check_gradients(lambda l: losses.cross_entropy(l, labels), [logits])


class TestMultiMargin:
    def test_zero_when_margin_satisfied(self):
        sims = Tensor(np.array([[0.9, 0.1, 0.0]]))
        loss = losses.multi_margin_loss(sims, np.array([0]), margin=0.1)
        assert float(loss.data) == pytest.approx(0.0, abs=1e-8)

    def test_penalizes_margin_violations(self):
        sims = Tensor(np.array([[0.5, 0.45, 0.0]]))
        loss = losses.multi_margin_loss(sims, np.array([0]), margin=0.1, num_classes=3)
        # violation = 0.1 - 0.5 + 0.45 = 0.05 -> squared / 3
        assert float(loss.data) == pytest.approx(0.05 ** 2 / 3, rel=1e-5)

    def test_normalizer_uses_num_classes(self):
        sims = Tensor(np.array([[0.5, 0.45, 0.0]]))
        loss_small = losses.multi_margin_loss(sims, np.array([0]), margin=0.1,
                                              num_classes=3)
        loss_large = losses.multi_margin_loss(sims, np.array([0]), margin=0.1,
                                              num_classes=60)
        assert float(loss_small.data) > float(loss_large.data)

    def test_larger_margin_larger_loss(self):
        sims = Tensor(np.random.default_rng(1).uniform(0, 1, (8, 10)))
        labels = np.random.default_rng(2).integers(0, 10, 8)
        small = losses.multi_margin_loss(sims, labels, margin=0.05)
        large = losses.multi_margin_loss(sims, labels, margin=0.3)
        assert float(large.data) >= float(small.data)

    def test_gradient(self):
        sims = make((6, 8), seed=3)
        labels = np.random.default_rng(1).integers(0, 8, 6)
        assert nn.check_gradients(
            lambda s: losses.multi_margin_loss(F.sigmoid(s), labels, margin=0.1), [sims])


class TestOrthogonality:
    def test_orthogonal_features_have_low_covariance_loss(self):
        features = Tensor(np.eye(6, dtype=np.float64)[:4] * 2.0)
        loss = losses.orthogonality_loss(features, mode="covariance")
        # Columns are orthogonal; the only penalty comes from the zero columns.
        assert float(loss.data) <= 6.0 / 36.0 + 1e-6

    def test_identical_features_penalized_more_than_orthogonal(self):
        rng = np.random.default_rng(0)
        orthogonal = Tensor(np.eye(8, dtype=np.float64)[:4])
        collapsed = Tensor(np.tile(rng.standard_normal(8), (4, 1)))
        for mode in ("gram", "covariance"):
            low = losses.orthogonality_loss(orthogonal, mode=mode)
            high = losses.orthogonality_loss(collapsed, mode=mode)
            assert float(high.data) > float(low.data)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            losses.orthogonality_loss(Tensor(np.eye(3)), mode="nonsense")

    def test_gradients_both_modes(self):
        features = make((5, 7), seed=4)
        for mode in ("gram", "covariance"):
            assert nn.check_gradients(
                lambda f, mode=mode: losses.orthogonality_loss(f, mode=mode), [features])


class TestPretrainingLoss:
    def test_reduces_to_ce_when_weight_zero(self):
        logits, features = make((4, 6), seed=5), make((4, 8), seed=6)
        labels = np.array([0, 1, 2, 3])
        combined = losses.pretraining_loss(logits, labels, features, ortho_weight=0.0)
        ce = losses.cross_entropy(logits, labels)
        assert float(combined.data) == pytest.approx(float(ce.data), rel=1e-6)

    def test_adds_weighted_ortho_term(self):
        logits, features = make((4, 6), seed=7), make((4, 8), seed=8)
        labels = np.array([0, 1, 2, 3])
        ce = float(losses.cross_entropy(logits, labels).data)
        ortho = float(losses.orthogonality_loss(features).data)
        combined = float(losses.pretraining_loss(logits, labels, features,
                                                 ortho_weight=0.5).data)
        assert combined == pytest.approx(ce + 0.5 * ortho, rel=1e-5)

    def test_gradient_through_both_terms(self):
        logits, features = make((4, 6), seed=9), make((4, 8), seed=10)
        labels = np.array([0, 1, 2, 3])
        assert nn.check_gradients(
            lambda l, f: losses.pretraining_loss(l, labels, f, ortho_weight=0.3),
            [logits, features])


class TestRegressionLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([[1.0, 2.0]]))
        assert float(losses.mse_loss(pred, np.array([[0.0, 0.0]])).data) == pytest.approx(2.5)

    def test_cosine_embedding_zero_for_parallel_vectors(self):
        pred = Tensor(np.array([[1.0, 1.0], [2.0, 0.0]]))
        target = np.array([[2.0, 2.0], [1.0, 0.0]])
        assert float(losses.cosine_embedding_loss(pred, target).data) == pytest.approx(0.0, abs=1e-6)

    def test_cosine_embedding_max_for_antiparallel(self):
        pred = Tensor(np.array([[1.0, 0.0]]))
        assert float(losses.cosine_embedding_loss(pred, np.array([[-1.0, 0.0]])).data) == \
            pytest.approx(2.0, rel=1e-6)

    def test_gradients(self):
        pred = make((4, 6), seed=11)
        target = np.random.default_rng(3).standard_normal((4, 6))
        assert nn.check_gradients(lambda p: losses.mse_loss(p, target), [pred])
        assert nn.check_gradients(lambda p: losses.cosine_embedding_loss(p, target), [pred])
