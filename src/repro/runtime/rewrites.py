"""Legality-checked graph rewrite rules for plan optimization.

Every optimization the runtime performs is expressed as a
:class:`~repro.runtime.ir.RewriteRule` over the SSA graph of
:mod:`repro.runtime.ir`.  The contract shared by all of them: **a rewrite
never moves an output bit**.  Fusions replay the arithmetic of the fused
steps through the fused kernels (see :mod:`repro.runtime.kernels`, whose
fused paths are written as literal sequences of the standalone kernels), and
the algebraic rules are restricted to transformations that are provably
exact in IEEE arithmetic — which is why e.g. conv+BN *re*-folding or
requantize-chain collapsing at different scales are deliberately absent.
The committed int8 golden fixtures pin the contract per rule on every CI
run.

The rules fall into three groups:

* the legality-checked re-expression of the classic flat-plan passes (dead
  node elimination + the four quantize-chain fusions);
* passes the flat form could not express without re-deriving def-use chains
  per sweep: common-subexpression elimination across residual branches,
  and identity/constant folding of statically-determined chains;
* the int8 residual superfusion ``qconv_dequant -> add [-> requantize]``
  into a single ``qconv_add`` step.

:func:`run_pipeline` runs the standard ordering and returns per-rule
application counts (the ``pass_stats`` threaded through ``plan_stats`` and
the metrics registry).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .ir import Graph, Node, RewriteRule, Value


def _single_use_feeder(value: Value, graph: Graph,
                       op: str) -> Optional[Node]:
    """The producer of ``value`` if it is an ``op`` node whose output has
    exactly this one use (and is not the graph output) — the shared
    precondition of every absorbing fusion."""
    producer = value.producer
    if producer is None or producer.op != op:
        return None
    if graph.use_count(value) != 1:
        return None
    return producer


# ---------------------------------------------------------------------------
# Classic passes, re-expressed
# ---------------------------------------------------------------------------
class DeadNodeElimination(RewriteRule):
    """Erase pure nodes whose output nothing reads.

    Precondition: the node is not ``opaque`` (opaque steps call live modules
    whose forward hooks may observe or mutate state) and its output has zero
    uses.  Visiting in reverse program order lets whole dead chains die in a
    single sweep.
    """

    name = "dead_node_elimination"

    def matches(self, graph: Graph) -> List[Node]:
        return list(reversed(graph.nodes))

    def precondition(self, node: Node, graph: Graph) -> bool:
        return node.op != "opaque" and graph.use_count(node.output) == 0

    def rewrite(self, node: Node, graph: Graph) -> bool:
        graph.erase_node(node)
        return True


class DequantizeIntoAdd(RewriteRule):
    """``dequantize -> add``: dequantize the int8 operand inside the add.

    Precondition (per operand position): the operand is produced by a
    ``dequantize`` whose output has exactly this one use.  The fused kernel
    (:func:`~repro.runtime.kernels.fused_add` with ``in_scale_*``) replays
    :func:`~repro.runtime.kernels.dequantize_int8` verbatim — bit-exact.
    """

    name = "dequantize_into_add"

    def precondition(self, node: Node, graph: Graph) -> bool:
        return node.op == "add" and any(
            _single_use_feeder(value, graph, "dequantize") is not None
            for value in node.inputs)

    def rewrite(self, node: Node, graph: Graph) -> bool:
        changed = False
        for position, value in enumerate(list(node.inputs)):
            feeder = _single_use_feeder(value, graph, "dequantize")
            if feeder is None:
                continue
            node.attrs = dict(node.attrs)
            node.attrs[f"in_scale_{position}"] = feeder.attrs["scale"]
            graph.replace_input(node, position, feeder.inputs[0])
            graph.erase_node(feeder)
            changed = True
        return changed


class AddQuantizeFusion(RewriteRule):
    """``add -> quantize``: the add requantizes its activated sum to int8.

    Precondition: the quantize's input is an ``add`` with a single use and
    no ``out_scale`` yet.  The add takes over the quantize's output value,
    so the fused register keeps the quantize's name (memory plans and
    snapshots recorded downstream stay valid).
    """

    name = "add_quantize_fusion"

    def precondition(self, node: Node, graph: Graph) -> bool:
        if node.op != "quantize":
            return False
        feeder = _single_use_feeder(node.inputs[0], graph, "add")
        return feeder is not None and "out_scale" not in feeder.attrs

    def rewrite(self, node: Node, graph: Graph) -> bool:
        value = node.inputs[0]                 # the add's soon-dead output
        feeder = value.producer
        out_scale = node.attrs["scale"]
        feeder.attrs = dict(feeder.attrs)
        feeder.attrs["out_scale"] = out_scale
        output = node.output
        value.consumers.remove(node)
        node.inputs = []
        graph.nodes.remove(node)
        graph.take_over_output(feeder, output)
        output.dtype, output.scale = "int8", float(out_scale)
        return True


class DequantizeQuantizeToRequantize(RewriteRule):
    """``dequantize -> quantize`` collapses to one ``qrequantize`` node.

    Precondition: the quantize's input is a single-use ``dequantize``.  The
    :func:`~repro.runtime.kernels.requantize_codes` kernel replays the
    dequantize and quantize steps through a scratch buffer — bit-exact.
    """

    name = "dequantize_quantize_to_requantize"

    def precondition(self, node: Node, graph: Graph) -> bool:
        return node.op == "quantize" and \
            _single_use_feeder(node.inputs[0], graph, "dequantize") is not None

    def rewrite(self, node: Node, graph: Graph) -> bool:
        feeder = node.inputs[0].producer
        fused = Node(op="qrequantize", name=node.name,
                     inputs=[feeder.inputs[0]], output=node.output,
                     attrs={"in_scale": feeder.attrs["scale"],
                            "scale": node.attrs["scale"]})
        node.output.producer = fused
        feeder.inputs[0].consumers.append(fused)
        graph.nodes[graph.nodes.index(node)] = fused
        node.inputs[0].consumers.remove(node)
        node.inputs = []
        graph.erase_node(feeder)
        return True


class SameScaleRequantizeCollapse(RewriteRule):
    """``requantize -> quantize`` at the same scale drops the requantize.

    Precondition: scales are exactly equal and the requantize is single-use.
    Exactness: ``round(round(x/s)*s/s) == round(x/s)`` for every int8 code
    magnitude (the inner rounding lands on exact grid multiples whose
    division by ``s`` round-trips in double precision for ``|code| <= 127``).
    """

    name = "same_scale_requantize_collapse"

    def precondition(self, node: Node, graph: Graph) -> bool:
        if node.op != "quantize":
            return False
        feeder = _single_use_feeder(node.inputs[0], graph, "requantize")
        return feeder is not None and \
            feeder.attrs["scale"] == node.attrs["scale"]

    def rewrite(self, node: Node, graph: Graph) -> bool:
        feeder = node.inputs[0].producer
        graph.replace_input(node, 0, feeder.inputs[0])
        graph.erase_node(feeder)
        return True


# ---------------------------------------------------------------------------
# Folding of statically-determined chains (bit-exact subset)
# ---------------------------------------------------------------------------
class IdentityActElimination(RewriteRule):
    """An ``act`` node with ``act=None`` is a pure copy — forward its input.

    Precondition: the node's output is not the graph output (the output
    register name must survive).  Consumers read the identical bytes from
    the act's input value instead.
    """

    name = "identity_act_elimination"

    def precondition(self, node: Node, graph: Graph) -> bool:
        return node.op == "act" and node.attrs.get("act") is None \
            and node.output is not graph.output

    def rewrite(self, node: Node, graph: Graph) -> bool:
        graph.redirect_uses(node.output, node.inputs[0])
        graph.erase_node(node)
        return True


class QuantizeDequantizeIdentity(RewriteRule):
    """``quantize(dequantize(q, s), s)`` forwards the original codes ``q``.

    Exactness needs the typed IR: the rewrite is only legal when ``q`` is
    *known* to carry codes in ``[-127, 127]`` — i.e. its inferred dtype is
    int8, which the type inference only assigns to ops that clamp to the
    symmetric grid.  For those codes ``rint(q*s/s) == q`` exactly (the
    float64 division error is far below 0.5) and the clamp is a no-op, so
    the round-trip is the identity on the bytes.  Raw graph inputs are
    untyped and never match — an int8 input *could* hold -128, which the
    quantize clamp would move to -127.
    """

    name = "quantize_dequantize_identity"

    def precondition(self, node: Node, graph: Graph) -> bool:
        if node.op != "quantize" or node.output is graph.output:
            return False
        feeder = node.inputs[0].producer
        return feeder is not None and feeder.op == "dequantize" \
            and feeder.attrs["scale"] == node.attrs["scale"] \
            and feeder.inputs[0].dtype == "int8"

    def rewrite(self, node: Node, graph: Graph) -> bool:
        codes = node.inputs[0].producer.inputs[0]
        graph.redirect_uses(node.output, codes)
        graph.erase_node(node)        # the dequantize dies via DSE if unused
        return True


class ActIntoProducerFolding(RewriteRule):
    """Fold a standalone ``act`` into the producer's empty ``act`` slot.

    Precondition: the act's input is single-use and produced by a
    ``conv`` / ``linear`` / ``bn`` / ``add`` whose ``act`` attr is None —
    and, for ``add``, no ``out_scale`` (the fused add applies the activation
    *before* requantizing, so an act following an int8-producing add is a
    different computation).  The kernels apply the activation in place on
    the op's result buffer, which is the identical arithmetic to the
    standalone act step — bit-exact.  The producer takes over the act's
    output value, preserving the register name.
    """

    name = "act_into_producer_folding"

    _PRODUCERS = ("conv", "linear", "bn", "add")

    def precondition(self, node: Node, graph: Graph) -> bool:
        if node.op != "act" or node.attrs.get("act") is None:
            return False
        value = node.inputs[0]
        feeder = value.producer
        if feeder is None or feeder.op not in self._PRODUCERS:
            return False
        if graph.use_count(value) != 1:
            return False
        if feeder.attrs.get("act") is not None:
            return False
        if feeder.op == "add" and feeder.attrs.get("out_scale") is not None:
            return False
        return True

    def rewrite(self, node: Node, graph: Graph) -> bool:
        feeder = node.inputs[0].producer
        feeder.attrs = dict(feeder.attrs)
        feeder.attrs["act"] = node.attrs["act"]
        output = node.output
        node.inputs[0].consumers.remove(node)
        node.inputs = []
        graph.nodes.remove(node)
        graph.take_over_output(feeder, output)
        return True


# ---------------------------------------------------------------------------
# Common-subexpression elimination
# ---------------------------------------------------------------------------
class CommonSubexpressionElimination(RewriteRule):
    """Merge pure nodes computing the identical value.

    Two nodes are congruent when they run the same op over the *same* input
    values with equal attrs and element-equal static arrays, carry no live
    module reference, and are not ``opaque`` — every kernel in the plan
    vocabulary is deterministic, so congruent nodes produce identical bytes
    and the later one can forward the earlier one's value.  The classic win
    is residual branches dequantizing the same register at the same scale on
    both sides of a fork.

    Precondition (on the duplicate): its output is not the graph output
    (the output register name must survive).
    """

    name = "common_subexpression_elimination"

    def run(self, graph: Graph) -> int:
        applied = 0
        seen: Dict[tuple, List[Node]] = {}
        for node in list(graph.nodes):
            key = self._key(node)
            if key is None:
                continue
            bucket = seen.setdefault(key, [])
            original = next((cand for cand in bucket
                             if self._arrays_equal(cand, node)), None)
            if original is None or node.output is graph.output:
                bucket.append(node)
                continue
            graph.redirect_uses(node.output, original.output)
            graph.erase_node(node)
            applied += 1
        if applied:
            graph.validate()
        return applied

    # CSE is a whole-graph value-numbering sweep rather than a per-node
    # match/rewrite pair; precondition/rewrite delegate to run().
    def precondition(self, node: Node, graph: Graph) -> bool:  # pragma: no cover
        raise NotImplementedError("CSE matches globally; use run()")

    def rewrite(self, node: Node, graph: Graph) -> bool:  # pragma: no cover
        raise NotImplementedError("CSE matches globally; use run()")

    @staticmethod
    def _key(node: Node) -> Optional[tuple]:
        if node.op == "opaque" or node.module is not None:
            return None
        try:
            attrs = tuple(sorted(node.attrs.items()))
        except TypeError:                      # unhashable attr value
            return None
        arrays = tuple(sorted((key, array.dtype.str, array.shape)
                              for key, array in node.arrays.items()))
        return (node.op, tuple(value.name for value in node.inputs),
                attrs, arrays)

    @staticmethod
    def _arrays_equal(a: Node, b: Node) -> bool:
        for key, array in a.arrays.items():
            other = b.arrays[key]
            if array is not other and not np.array_equal(array, other):
                return False
        return True


# ---------------------------------------------------------------------------
# Residual superfusion
# ---------------------------------------------------------------------------
class QConvAddSuperfusion(RewriteRule):
    """``qconv_dequant -> add [-> requantize]`` becomes one ``qconv_add``.

    The int8 residual pattern: a projection convolution dequantizes its
    int32 accumulator to float and feeds a residual add (whose quantize
    neighbours were already folded in as ``in_scale_*`` / ``out_scale``).
    The fused ``qconv_add`` step runs the identical
    :func:`~repro.runtime.kernels.fused_qconv_dequant` followed by the
    identical :func:`~repro.runtime.kernels.fused_add` — bit-exact by
    construction — and drops the full-size float intermediate register.

    Precondition: one add operand is produced by a single-use
    ``qconv_dequant`` and arrives as float (its position carries no
    ``in_scale`` — verified against the typed value, which must be
    float32).  Only the first matching position fuses (a block whose both
    operands are projections keeps the second as a plain input).
    """

    name = "qconv_add_superfusion"

    def precondition(self, node: Node, graph: Graph) -> bool:
        return node.op == "add" and self._fusable_position(node, graph) is not None

    @staticmethod
    def _fusable_position(node: Node, graph: Graph) -> Optional[int]:
        for position, value in enumerate(node.inputs):
            if node.attrs.get(f"in_scale_{position}") is not None:
                continue
            if value.dtype != "float32":
                continue
            feeder = _single_use_feeder(value, graph, "qconv_dequant")
            if feeder is not None and feeder.module is None:
                return position
        return None

    def rewrite(self, node: Node, graph: Graph) -> bool:
        position = self._fusable_position(node, graph)
        if position is None:                   # pragma: no cover - guarded
            return False
        feeder = node.inputs[position].producer
        other = node.inputs[1 - position]
        attrs = {key: feeder.attrs.get(key)
                 for key in ("stride", "padding", "groups", "act",
                             "acc_bound")}
        attrs.update({
            "conv_name": feeder.name,
            "position": position,
            "add_act": node.attrs.get("act"),
            "other_scale": node.attrs.get(f"in_scale_{1 - position}"),
            "out_scale": node.attrs.get("out_scale"),
        })
        fused = Node(op="qconv_add", name=node.name,
                     inputs=[feeder.inputs[0], other],
                     output=node.output, arrays=feeder.arrays, attrs=attrs)
        node.output.producer = fused
        feeder.inputs[0].consumers.append(fused)
        other.consumers.append(fused)
        graph.nodes[graph.nodes.index(node)] = fused
        for value in node.inputs:
            value.consumers.remove(node)
        node.inputs = []
        graph.erase_node(feeder)
        return True


# ---------------------------------------------------------------------------
# Standard pipeline
# ---------------------------------------------------------------------------
#: The quantize-chain fusion group (the classic ``fuse_quantize_chains``).
FUSION_RULES = (DequantizeIntoAdd, AddQuantizeFusion,
                DequantizeQuantizeToRequantize, SameScaleRequantizeCollapse)

#: Bit-exact folding of statically-determined chains.
FOLD_RULES = (IdentityActElimination, QuantizeDequantizeIdentity,
              ActIntoProducerFolding)

#: Full optimization pipeline, in order.  Folding runs before fusion so
#: same-scale round-trips vanish instead of becoming qrequantize nodes; CSE
#: runs before superfusion so a deduplicated projection conv correctly
#: blocks fusing (it is no longer single-use); a final DSE sweeps up
#: producers orphaned by the folds.
PIPELINE = ((DeadNodeElimination,)
            + FOLD_RULES + FUSION_RULES
            + (CommonSubexpressionElimination, QConvAddSuperfusion,
               DeadNodeElimination))


def run_pipeline(graph: Graph,
                 rules: Tuple[type, ...] = PIPELINE) -> Dict[str, int]:
    """Run ``rules`` over ``graph`` in order; per-rule application counts.

    Rules appearing multiple times (the DSE bookends) accumulate into one
    counter.  Every rule run re-validates the def-use invariants when it
    changed the graph.
    """
    stats: Dict[str, int] = {}
    for rule_cls in rules:
        rule = rule_cls()
        stats[rule.name] = stats.get(rule.name, 0) + rule.run(graph)
    return stats
