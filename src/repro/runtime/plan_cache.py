"""Keyed cache of compiled (and optimized) inference plans.

Compiling a backbone is cheap-ish; optimizing it and proving accumulator
bounds is not free, and serving stacks rebuild predictors far more often
than weights actually change (worker respawns, scenario restarts, repeated
``plan_stats`` invocations).  :class:`PlanCache` makes recompiles of the
same configuration near-free: plans are cached under a structural key
``(component, arch, mode, input_shape, optimize)`` and guarded by a
*staleness signature* — the same identity snapshot
:class:`~repro.runtime.predictor.BatchedPredictor` uses to decide when its
engines are stale (weight array identities, hook counts, quantizer
thresholds).  A key match with a differing signature is a miss that
replaces the entry, so two models of the same architecture can never serve
each other's weights.

The cache is process-local and bounded (LRU).  Plans are shared by
reference between engines: executed steps never mutate a plan, and the
arena :class:`~repro.runtime.optimizer.MemoryPlan` is recorded per engine,
not per plan.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional

#: Default retained entries; a handful of (arch, mode) pairs per process.
DEFAULT_CAPACITY = 16


def signatures_differ(new: list, old: list) -> bool:
    """Compare two staleness signatures (list parts by element identity).

    Mirrors the predictor's engine-staleness rule: list-valued parts hold
    arrays compared with ``is`` (every weight mutation in the codebase
    rebinds ``param.data``), scalar parts compare by equality.
    """
    if not old or len(new) != len(old):
        return True
    for new_part, old_part in zip(new, old):
        if isinstance(new_part, list):
            if not isinstance(old_part, list) or \
                    len(new_part) != len(old_part) or \
                    any(a is not b for a, b in zip(new_part, old_part)):
                return True
        elif new_part != old_part:
            return True
    return False


class PlanCache:
    """LRU cache of compiled plans keyed by configuration + signature."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0          # key matched, signature stale
        self.evictions = 0

    # ------------------------------------------------------------------
    def get_or_compile(self, key: tuple, signature: list,
                       compile_fn: Callable[[], object]) -> object:
        """Return the cached plan for ``key`` or compile and cache one.

        ``signature`` is the staleness snapshot of everything the compiled
        plan would freeze in; an entry whose stored signature differs is
        stale and replaced (counted under ``invalidations`` as well as
        ``misses``).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                stored_signature, plan = entry
                if not signatures_differ(signature, stored_signature):
                    self.hits += 1
                    self._entries.move_to_end(key)
                    return plan
                self.invalidations += 1
            self.misses += 1
        plan = compile_fn()             # compile outside the lock
        with self._lock:
            self._entries[key] = (signature, plan)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return plan

    # ------------------------------------------------------------------
    # A plan cache is process-level infrastructure, not model state:
    # deep copies of a model (quantization clones the float network, tests
    # clone predictors) share the live cache instead of duplicating plans,
    # and pickles (worker snapshots) restart with an empty one — cached
    # plans may hold live module references that cannot cross processes.
    def __deepcopy__(self, memo):
        return self

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_lock", None)
        state["_entries"] = OrderedDict()
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions, "entries": len(self),
                "hit_rate": round(self.hit_rate, 4)}

    def bind_registry(self, registry, prefix: str = "plan_cache") -> None:
        """Expose the cache counters as callback gauges in ``registry``."""
        if registry is None:
            return
        registry.gauge(f"{prefix}.hits", fn=lambda: self.hits)
        registry.gauge(f"{prefix}.misses", fn=lambda: self.misses)
        registry.gauge(f"{prefix}.entries", fn=lambda: len(self))
        registry.gauge(f"{prefix}.hit_rate", fn=lambda: self.hit_rate)


#: Process-wide default cache (predictors share it unless handed their own).
_default_cache: Optional[PlanCache] = None
_default_lock = threading.Lock()


def default_plan_cache() -> PlanCache:
    with _default_lock:
        global _default_cache
        if _default_cache is None:
            _default_cache = PlanCache()
        return _default_cache
