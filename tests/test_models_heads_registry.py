"""FCR / FCC / cosine heads, simplex ETF, and the Table I registry."""

import numpy as np
import pytest

from repro.models import (
    CosineClassifier,
    FullyConnectedClassifier,
    FullyConnectedReductor,
    get_config,
    list_configs,
    simplex_etf,
    table1_rows)
from repro.models.registry import register
from repro.nn.tensor import Tensor


class TestHeads:
    def test_fcr_projects_to_prototype_dim(self, rng):
        fcr = FullyConnectedReductor(32, 16, seed=0)
        out = fcr(Tensor(rng.standard_normal((4, 32)).astype(np.float32)))
        assert out.shape == (4, 16)
        assert fcr.in_features == 32 and fcr.out_features == 16

    def test_fcr_layer_specs(self):
        specs = FullyConnectedReductor(32, 16).layer_specs()
        assert len(specs) == 1
        assert specs[0].macs == 32 * 16

    def test_fcc_logits_shape(self, rng):
        fcc = FullyConnectedClassifier(16, 10, seed=0)
        out = fcc(Tensor(rng.standard_normal((4, 16)).astype(np.float32)))
        assert out.shape == (4, 10)

    def test_cosine_classifier_bounded_by_scale(self, rng):
        head = CosineClassifier(8, 5, scale=16.0, seed=0)
        out = head(Tensor(rng.standard_normal((6, 8)).astype(np.float32)))
        assert np.all(np.abs(out.data) <= 16.0 + 1e-4)

    def test_cosine_classifier_fixed_weights_not_trainable(self):
        weights = np.eye(5, 8, dtype=np.float32)
        head = CosineClassifier(8, 5, weights=weights, learnable=False)
        assert not head.weight.requires_grad
        np.testing.assert_allclose(head.weight.data, weights)


class TestSimplexETF:
    def test_unit_norm(self):
        etf = simplex_etf(10, 32, seed=0)
        np.testing.assert_allclose(np.linalg.norm(etf, axis=1), np.ones(10), atol=1e-5)

    def test_equiangular(self):
        etf = simplex_etf(10, 32, seed=0)
        gram = etf @ etf.T
        off_diagonal = gram[~np.eye(10, dtype=bool)]
        expected = -1.0 / 9.0
        np.testing.assert_allclose(off_diagonal, np.full_like(off_diagonal, expected),
                                   atol=1e-4)

    def test_fallback_when_classes_exceed_dim(self):
        etf = simplex_etf(20, 8, seed=0)
        assert etf.shape == (20, 8)
        np.testing.assert_allclose(np.linalg.norm(etf, axis=1), np.ones(20), atol=1e-5)


class TestRegistry:
    def test_known_configs_present(self):
        names = list_configs()
        for name in ("mobilenetv2", "mobilenetv2_x2", "mobilenetv2_x4", "resnet12",
                     "mobilenetv2_tiny", "resnet12_tiny"):
            assert name in names

    def test_profile_filter(self):
        assert all(get_config(n).profile == "paper" for n in list_configs("paper"))
        assert "mobilenetv2_tiny" in list_configs("laptop")

    def test_unknown_config_raises(self):
        with pytest.raises(KeyError):
            get_config("not-a-backbone")

    def test_duplicate_registration_raises(self):
        config = get_config("mobilenetv2")
        with pytest.raises(ValueError):
            register(config)

    def test_build_returns_module_with_matching_dim(self):
        config = get_config("mobilenetv2_tiny")
        assert config.build().output_dim == config.feature_dim

    def test_build_heads(self):
        config = get_config("mobilenetv2_tiny")
        fcr = config.build_fcr()
        fcc = config.build_fcc(num_classes=12)
        assert fcr.in_features == config.feature_dim
        assert fcr.out_features == config.prototype_dim
        assert fcc.num_classes == 12


class TestTable1:
    """Table I of the paper: parameters and MACs of the four backbones."""

    @pytest.fixture(scope="class")
    def rows(self):
        return {row["name"]: row for row in table1_rows()}

    def test_all_backbones_present(self, rows):
        assert set(rows) == {"mobilenetv2", "mobilenetv2_x2", "mobilenetv2_x4", "resnet12"}

    def test_feature_dims_match_paper(self, rows):
        for name in ("mobilenetv2", "mobilenetv2_x2", "mobilenetv2_x4"):
            assert rows[name]["d_a"] == 1280
            assert rows[name]["d_p"] == 256
        assert rows["resnet12"]["d_a"] == 640
        assert rows["resnet12"]["d_p"] == 512

    @pytest.mark.parametrize("name", ["mobilenetv2", "mobilenetv2_x2",
                                      "mobilenetv2_x4", "resnet12"])
    def test_params_within_5_percent_of_paper(self, rows, name):
        row = rows[name]
        assert row["params_m"] == pytest.approx(row["paper_params_m"], rel=0.05)

    @pytest.mark.parametrize("name", ["mobilenetv2", "mobilenetv2_x2",
                                      "mobilenetv2_x4", "resnet12"])
    def test_macs_within_5_percent_of_paper(self, rows, name):
        row = rows[name]
        assert row["macs_m"] == pytest.approx(row["paper_macs_m"], rel=0.05)

    def test_mac_ordering(self, rows):
        assert rows["mobilenetv2"]["macs_m"] < rows["mobilenetv2_x2"]["macs_m"] \
            < rows["mobilenetv2_x4"]["macs_m"] < rows["resnet12"]["macs_m"]

    def test_paper_claim_compute_reduction_vs_resnet12(self, rows):
        """The paper claims a ~5.2x parameter reduction of MobileNetV2 x4 vs
        ResNet-12; the MAC reduction implied by Table I itself is ~3.5x
        (525.3M vs 149.2M), which is what the reproduction must match."""
        mac_ratio = rows["resnet12"]["macs_m"] / rows["mobilenetv2_x4"]["macs_m"]
        param_ratio = rows["resnet12"]["params_m"] / rows["mobilenetv2_x4"]["params_m"]
        assert mac_ratio == pytest.approx(525.3 / 149.2, rel=0.1)
        assert param_ratio == pytest.approx(5.2, rel=0.15)
