"""Datasets, FSCIL splits and augmentation for the O-FSCIL reproduction."""

from .augment import (
    AugmentationPipeline,
    IdentityAugmentation,
    brightness_contrast,
    gaussian_blur,
    random_crop,
    random_horizontal_flip,
    random_resized_crop,
)
from .dataset import ArrayDataset, DataLoader, train_test_split
from .fscil_split import (
    PROFILES,
    FSCILBenchmark,
    FSCILProtocol,
    IncrementalSession,
    build_protocol,
    build_synthetic_fscil,
    split_dataset,
)
from .mixup import FeatureInterpolation, cutmix_batch, mixup_batch
from .synthetic import (
    SyntheticConfig,
    SyntheticImageGenerator,
    normalize_images,
)

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "train_test_split",
    "SyntheticConfig",
    "SyntheticImageGenerator",
    "normalize_images",
    "AugmentationPipeline",
    "IdentityAugmentation",
    "random_crop",
    "random_horizontal_flip",
    "random_resized_crop",
    "gaussian_blur",
    "brightness_contrast",
    "FeatureInterpolation",
    "mixup_batch",
    "cutmix_batch",
    "FSCILProtocol",
    "FSCILBenchmark",
    "IncrementalSession",
    "PROFILES",
    "build_protocol",
    "build_synthetic_fscil",
    "split_dataset",
]
