"""Dynamic-batching, sharded serving front-end for an O-FSCIL model.

:class:`Server` sits on top of a :class:`~repro.serve.sharded.ShardedEngine`
and exposes the deploy-time API of the model — ``predict`` /
``similarities`` / ``learn_class`` — backed by a pool of worker processes:

* **Synchronous batch path** — whole query batches are split at the same
  micro-batch boundaries the single-process engine uses and round-robinned
  over the shards.  Workers run the conv-heavy backbone; the FCR projection
  and the prototype GEMM run once on the coordinator through the model's own
  :class:`~repro.runtime.BatchedPredictor`.  Backbone kernels are bitwise
  per-sample stable, so ``Server.predict`` matches ``BatchedPredictor.predict``
  *bit-for-bit* regardless of shard count or chunking — sharding is a pure
  throughput decision, never an accuracy one.
* **Asynchronous single-sample path** — :meth:`submit` hands one image to
  the dynamic batcher, which coalesces requests into micro-batches under a
  max-latency budget and dispatches each batch to the least-loaded live
  shard, where the full replica (backbone + FCR + prototype state) answers
  in a single hop.  Admission control bounds the damage of overload: a
  bounded request queue plus an optional latency SLO shed excess traffic
  with a typed :class:`ServerOverloaded` instead of queueing unboundedly,
  and a per-shard in-flight budget backpressures the batcher so no single
  shard's queue grows without bound.
* **Fault tolerance** — the engine's liveness watchdog detects a dead (or,
  with ``hang_silence_s``, heartbeat-silent) worker process, fails that
  shard's pending futures fast with
  :class:`~repro.serve.sharded.RemoteWorkerError`, and routing steers new
  batches around the corpse while the engine's supervisor respawns it with
  backoff, resyncs its prototype state, and rejoins it — up to a
  ``max_respawns`` crash-loop budget, past which the shard degrades
  permanently.  Surviving shards keep answering ``predict``, ``submit``
  and ``stats`` throughout.  With ``journal_path`` set, every
  ``learn_class`` is write-ahead journalled and :meth:`Server.restore`
  rebuilds the exact explicit memory after a full restart.
* **Online learning** — :meth:`learn_class` embeds the shots through the
  shards, updates the coordinator's explicit memory, and broadcasts the new
  prototype state to every worker; staleness is tracked through the
  memory's ``version`` counter, so a broadcast happens only when the memory
  actually changed.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..obs.trace import Span, Tracer
from .journal import DEFAULT_FSYNC_INTERVAL_S, LearnJournal, replay
from .sharded import (
    DEFAULT_MAX_RESPAWNS,
    DEFAULT_RESPAWN_RESET_S,
    DEFAULT_START_METHOD,
    WATCHDOG_INTERVAL_S,
    ShardedEngine,
)
from .snapshot import snapshot_model, snapshot_prototypes
from .stats import DEFAULT_EMA_HALFLIFE_S, ServeStats
from .transport import DEFAULT_RING_SLOTS, DEFAULT_SLOT_BYTES

#: Default time budget the dynamic batcher waits to fill a micro-batch.
DEFAULT_MAX_LATENCY_S = 0.01

#: Default shared deadline for one stats collection (see ``stats_timeout_s``
#: on :class:`Server`).
DEFAULT_STATS_TIMEOUT_S = 10.0

#: Default admission cap, in queued single-sample requests per worker, as a
#: multiple of ``max_batch`` (i.e. roughly how many coalesced batches per
#: shard may wait before new submits are shed).
DEFAULT_ADMISSION_BATCHES_PER_WORKER = 8

#: Default bound on dispatched-but-unresolved batches per shard before the
#: batcher backpressures (stops dispatching until a shard frees budget).
DEFAULT_MAX_INFLIGHT_BATCHES = 4


class ServerClosedError(RuntimeError):
    """The server was closed; raised by new submits and used to fail any
    request still queued at ``close()`` time."""


class ServerOverloaded(RuntimeError):
    """Typed load-shedding rejection: the admission queue is full or the
    estimated queueing delay exceeds the latency SLO.  Callers should back
    off and retry; the alternative — queueing unboundedly — turns overload
    into unbounded latency for *every* request."""


@dataclass
class _PendingRequest:
    image: np.ndarray
    future: Future
    #: root ``server.submit`` span when this request won the sampling draw
    span: Optional[Span] = None


def _resolve_quietly(future: Future, result=None, exception=None) -> None:
    """Complete a request future without ever raising at the resolver.

    A future a client cancelled or that was already failed by ``close()``
    must not take down the batcher thread or an engine callback.
    """
    try:
        if exception is not None:
            future.set_exception(exception)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass


class Server:
    """Serve one O-FSCIL model from a pool of sharded worker replicas."""

    def __init__(self, model, num_workers: int = 2,
                 micro_batch: Optional[int] = None,
                 max_batch: Optional[int] = None,
                 max_latency_s: float = DEFAULT_MAX_LATENCY_S,
                 start_method: str = DEFAULT_START_METHOD,
                 blas_threads_per_worker: Optional[int] = 1,
                 max_pending: Optional[int] = None,
                 latency_slo_s: Optional[float] = None,
                 max_inflight_batches: int = DEFAULT_MAX_INFLIGHT_BATCHES,
                 use_shared_memory: bool = True,
                 ring_slots: int = DEFAULT_RING_SLOTS,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 trace_sample: float = 0.0,
                 trace_exporter=None,
                 stats_timeout_s: float = DEFAULT_STATS_TIMEOUT_S,
                 watchdog_interval_s: float = WATCHDOG_INTERVAL_S,
                 ema_halflife_s: float = DEFAULT_EMA_HALFLIFE_S,
                 max_respawns: int = DEFAULT_MAX_RESPAWNS,
                 respawn_backoff=None,
                 respawn_reset_s: float = DEFAULT_RESPAWN_RESET_S,
                 hang_silence_s: Optional[float] = None,
                 journal_path=None,
                 journal_fsync: str = "always",
                 journal_fsync_interval_s: float = DEFAULT_FSYNC_INTERVAL_S,
                 chaos=None):
        """Args beyond the model/pool shape:

        max_pending: admission cap on *outstanding* (admitted, unresolved)
            single-sample requests; submits beyond it raise
            :class:`ServerOverloaded`.  The count is exact — an atomic
            counter incremented at admission and released when the
            request's future resolves — so concurrent submits cannot
            overshoot the cap the way the old approximate ``qsize`` check
            could.  Defaults to ``DEFAULT_ADMISSION_BATCHES_PER_WORKER *
            max_batch * num_workers``.
        latency_slo_s: optional latency SLO for the async path.  When the
            estimated queueing delay (queued batches plus in-flight batches,
            times the observed batch latency) exceeds it, submits are shed
            with :class:`ServerOverloaded` instead of waiting it out.
        max_inflight_batches: dispatched-but-unresolved batch budget per
            shard; the batcher backpressures (pauses dispatch) while every
            live shard is at budget.
        use_shared_memory: route tensor payloads through the shared-memory
            ring transport (on by default; off forces the pickle fallback —
            results are bit-identical either way).
        ring_slots / slot_bytes: shape of each worker's shared-memory rings
            (payloads that do not fit take the pickle fallback); scenario
            runs shrink ``slot_bytes`` to exercise the overflow path under
            load.
        trace_sample: fraction of :meth:`submit` requests to trace end to
            end (0.0, the default, disables tracing entirely: an unsampled
            request pays one comparison and the wire format is identical to
            the untraced one).
        trace_exporter: span sink for sampled requests, e.g. a
            :class:`~repro.obs.trace.JsonlSpanExporter`; defaults to an
            in-memory buffer on the server's tracer.
        stats_timeout_s: shared deadline for one stats collection across
            all shards (see :meth:`worker_stats`).
        watchdog_interval_s: poll interval of the engine's liveness
            watchdog.
        ema_halflife_s: idle half-life of the SLO latency estimate (see
            :mod:`repro.serve.stats` — a stale slow-burst reading decays
            instead of shedding a healthy server forever).
        max_respawns: per-shard crash-loop budget of the engine's
            supervisor — how many times a failed worker is respawned
            (within ``respawn_reset_s`` of uptime) before the shard is
            given up into permanent degraded mode.  0 disables respawn:
            the pre-supervisor behaviour, typed errors at the corpse and
            survivors serving.
        respawn_backoff: optional
            :class:`~repro.serve.backoff.BackoffSchedule` waited out
            before each respawn attempt (capped exponential with jitter
            by default).
        respawn_reset_s: uptime after which a shard's crash-loop attempt
            counter resets (only rapid death cycles burn the budget).
        hang_silence_s: optional heartbeat-silence threshold; a worker
            whose heartbeat stops advancing this long while still alive by
            ``is_alive()`` (SIGSTOP, swap death) is SIGKILLed and handed
            to the respawn path.  ``None`` (default) disables hang
            detection.
        journal_path: optional path of a write-ahead ``learn_class``
            journal (see :mod:`repro.serve.journal`): every learned class
            is durably appended *before* the in-memory update, and
            :meth:`restore` replays the file into a fresh server's memory
            bit-for-bit.  ``None`` (default) keeps learning memory-only.
        journal_fsync: journal durability policy — ``"always"`` (default;
            every ``learn_class`` survives power loss), ``"interval"``
            (fsync at most once per ``journal_fsync_interval_s``), or
            ``"never"`` (survives process death, not power loss).
        chaos: optional fault-injection hook forwarded to the engine (see
            :class:`~repro.serve.sharded.ShardedEngine` and
            :mod:`repro.scenarios.chaos`).
        """
        self.model = model
        self.predictor = model.runtime_predictor()
        self.micro_batch = micro_batch or self.predictor.micro_batch
        self.tracer = Tracer(sample_rate=trace_sample,
                             exporter=trace_exporter, process="coordinator")
        self.stats_timeout_s = stats_timeout_s
        self.stats = ServeStats(ema_halflife_s=ema_halflife_s)
        # The journal opens before the engine: learn_class durability must
        # not depend on how far pool startup got.
        self.journal = LearnJournal(
            journal_path, fsync=journal_fsync,
            fsync_interval_s=journal_fsync_interval_s) \
            if journal_path is not None else None
        snapshot = snapshot_model(model, micro_batch=self.micro_batch)
        self.engine = ShardedEngine(
            snapshot, num_workers=num_workers, start_method=start_method,
            blas_threads_per_worker=blas_threads_per_worker,
            use_shared_memory=use_shared_memory,
            ring_slots=ring_slots, slot_bytes=slot_bytes,
            watchdog_interval_s=watchdog_interval_s,
            max_respawns=max_respawns, respawn_backoff=respawn_backoff,
            respawn_reset_s=respawn_reset_s, hang_silence_s=hang_silence_s,
            recovery_listener=self.stats.observe_recovery_event,
            tracer=self.tracer, chaos=chaos)
        self.max_batch = max_batch or self.micro_batch
        self.max_latency_s = max_latency_s
        self.max_pending = max_pending if max_pending is not None \
            else (DEFAULT_ADMISSION_BATCHES_PER_WORKER * self.max_batch
                  * num_workers)
        self.latency_slo_s = latency_slo_s
        self.max_inflight_batches = max_inflight_batches
        self._proto_version = snapshot.prototypes.version
        self._proto_lock = threading.Lock()
        # The coordinator-side predictor (FCR projection + prototype GEMM)
        # is one single-process engine stack; concurrent sync callers must
        # not run it in parallel — its arena slots and buffer caches are
        # per-engine, and two interleaved run() calls would scribble over
        # each other's live slots (a bug the scenario harness flushed out:
        # concurrent Server.predict returned corrupted features).  The conv
        # backbone — the heavy part — still fans out over the shards.
        self._predictor_lock = threading.Lock()
        # Exact admission accounting: admitted-but-unresolved submits.
        # qsize() is documented approximate and misses dispatched batches,
        # so concurrent submits could overshoot max_pending.
        self._admission_lock = threading.Lock()
        self._outstanding = 0
        self._requests: "queue.Queue[_PendingRequest]" = queue.Queue()
        self._stop = threading.Event()
        # Serialises submit() against close() so no request can slip into the
        # queue after the close-time drain and hang its caller forever.
        self._lifecycle_lock = threading.Lock()
        self._batcher = threading.Thread(target=self._batch_loop,
                                         name="repro-serve-batcher",
                                         daemon=True)
        self._batcher.start()

    # ------------------------------------------------------------------
    # Prototype synchronisation
    # ------------------------------------------------------------------
    def sync_prototypes(self, force: bool = False) -> int:
        """Broadcast the memory's prototype state to every worker.

        No-op while ``ExplicitMemory.version`` matches the last broadcast
        version, so calling this on every request is cheap.
        """
        with self._proto_lock:
            version = self.model.memory.version
            if force or version != self._proto_version:
                state = snapshot_prototypes(self.model.memory)
                self.engine.set_prototypes(state)
                self._proto_version = state.version
                self.stats.observe_broadcast()
            return self._proto_version

    # ------------------------------------------------------------------
    # Synchronous batch API (bit-for-bit with BatchedPredictor)
    # ------------------------------------------------------------------
    def extract_backbone_features(self, images: np.ndarray) -> np.ndarray:
        """Images -> ``theta_a``, scattered over the worker shards."""
        return self.engine.scatter("backbone", images)

    def embed(self, images: np.ndarray) -> np.ndarray:
        """Images -> ``theta_p`` (backbone on shards, FCR on coordinator)."""
        features = self.extract_backbone_features(images)
        with self._predictor_lock:
            return self.predictor.project(features)

    def predict(self, images: np.ndarray,
                class_ids: Optional[Iterable[int]] = None) -> np.ndarray:
        """Classify a batch; bit-for-bit equal to ``BatchedPredictor.predict``.

        Safe to call from concurrent client threads: the scattered backbone
        runs in parallel across shards, the coordinator's FCR + prototype
        GEMM serialise on the predictor lock.
        """
        features = self.embed(images)
        self.stats.observe_batch_request(features.shape[0])
        with self._predictor_lock:
            return self.predictor.predict_features(features, class_ids)

    def similarities(self, images: np.ndarray,
                     class_ids: Optional[Iterable[int]] = None
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Similarity scores with the model's ReLU sharpening applied."""
        features = self.embed(images)
        self.stats.observe_batch_request(features.shape[0])
        with self._predictor_lock:
            sims, ids = self.predictor.similarities_from_features(features,
                                                                  class_ids)
        if getattr(self.model.config, "relu_sharpening", False):
            sims = np.maximum(sims, 0.0)
        return sims, ids

    def accuracy(self, dataset,
                 class_ids: Optional[Iterable[int]] = None) -> float:
        if len(dataset) == 0:
            return float("nan")
        predictions = self.predict(dataset.images, class_ids)
        return float((predictions == dataset.labels).mean())

    # ------------------------------------------------------------------
    # Online learning
    # ------------------------------------------------------------------
    def learn_class(self, images: np.ndarray, class_id: int) -> np.ndarray:
        """Learn one class from its shots and broadcast the new prototypes.

        Mirrors ``OFSCIL.learn_class`` exactly (same feature path, same
        activation-memory update), then pushes the refreshed prototype state
        to every worker replica.

        With a journal configured, the projected features are appended to it
        *before* the in-memory update (write-ahead): a crash at any later
        point — including mid-broadcast — leaves a journal from which
        :meth:`restore` rebuilds the exact post-update memory, and a crash
        before the append leaves memory and journal consistently without
        the class.
        """
        theta_a = self.extract_backbone_features(
            np.asarray(images, dtype=np.float32))
        with self._predictor_lock:
            theta_p = self.predictor.project(theta_a)
            if self.journal is not None:
                self.journal.append(int(class_id), theta_p,
                                    self.model.memory.version + 1)
            prototype = self.model.memory.update_class(int(class_id), theta_p)
        self.model.activation_memory[int(class_id)] = \
            theta_a.mean(axis=0).astype(np.float32)
        self.sync_prototypes()
        return prototype

    def restore(self, path=None) -> int:
        """Replay a ``learn_class`` journal into this server's memory.

        Applies every journal record the memory has not seen (replay is
        idempotent: records at or below the current version are skipped),
        re-running the identical ``update_class`` arithmetic on the
        identical float32 feature bits — prototypes, per-class counts and
        version all match the pre-crash memory bit-for-bit.  Finishes with
        a forced prototype broadcast so every worker replica serves the
        restored state.

        ``path`` defaults to this server's own journal; passing an explicit
        path restores from a previous incarnation's journal into a server
        that journals elsewhere (or not at all).

        The journal covers the :class:`ExplicitMemory` only — predictions
        depend on nothing else.  The activation-memory side channel (raw
        ``theta_a`` means, used by fine-tuning) is not journalled, since it
        is not reconstructible from the projected features.

        Returns the number of records applied.
        """
        if path is None:
            if self.journal is None:
                raise ValueError("no journal to restore from: the server "
                                 "has no journal_path and none was given")
            path = self.journal.path
        with self._predictor_lock:
            applied = replay(path, self.model.memory)
        self.sync_prototypes(force=True)
        return len(applied)

    # ------------------------------------------------------------------
    # Asynchronous single-sample API (dynamic batching)
    # ------------------------------------------------------------------
    def _estimated_wait_s(self, outstanding: int) -> float:
        """Predicted queueing delay for a request admitted now: every
        admitted-but-unresolved request ahead of it (queued *or* already
        dispatched — the outstanding counter covers both, so in-flight
        batches are no longer double-counted on top of queue depth),
        converted to batches, spread over the live shards, times the
        observed per-batch latency.  Zero until a first batch latency
        exists — the SLO gate never sheds on a cold server."""
        batch_latency = self.stats.ema_batch_latency_s
        if batch_latency <= 0.0:
            return 0.0
        batches_ahead = -(-(outstanding + 1) // self.max_batch)
        live = max(1, len(self.engine.live_workers))
        return batches_ahead / live * batch_latency

    def _release_admission(self, _done: Future) -> None:
        with self._admission_lock:
            self._outstanding -= 1

    def submit(self, image: np.ndarray) -> Future:
        """Enqueue one query image; resolves to its predicted class id.

        Requests are coalesced into micro-batches of up to ``max_batch``
        samples, waiting at most ``max_latency_s`` after the first request
        of a batch, and each batch is answered end-to-end by one shard.

        Raises:
            ServerOverloaded: ``max_pending`` requests are already
                outstanding (admitted, future unresolved), or
                ``latency_slo_s`` is set and the estimated queueing delay
                exceeds it.  The request was NOT enqueued; the caller
                should back off.
            ServerClosedError: the server is closed.
        """
        if self._stop.is_set():
            raise ServerClosedError("server is closed")
        self.sync_prototypes()
        # Admission is decided and accounted under one lock on an exact
        # outstanding-request counter.  The old check read qsize() —
        # documented approximate, blind to requests the batcher had already
        # drained but not resolved — so a burst of concurrent submits could
        # overshoot max_pending arbitrarily.  The counter is released by the
        # future's done callback, whoever resolves it.
        with self._admission_lock:
            outstanding = self._outstanding
            error: Optional[ServerOverloaded] = None
            if outstanding >= self.max_pending:
                error = ServerOverloaded(
                    f"admission queue is full ({outstanding} >= "
                    f"{self.max_pending} outstanding requests)")
            elif self.latency_slo_s is not None:
                estimate = self._estimated_wait_s(outstanding)
                if estimate > self.latency_slo_s:
                    error = ServerOverloaded(
                        f"estimated queueing delay {estimate * 1e3:.1f} ms "
                        f"exceeds the {self.latency_slo_s * 1e3:.1f} ms SLO")
            if error is None:
                self._outstanding = outstanding + 1
        if error is not None:
            self.stats.observe_shed()
            raise error
        try:
            future: Future = Future()
            future.set_running_or_notify_cancel()   # cancel() never races us
            # The root span covers the whole request lifetime — admission to
            # resolved future — and is ended by the future's done callback,
            # whichever thread resolves it.
            span = self.tracer.start_trace("server.submit",
                                           attrs={"queue_depth": outstanding})
            request = _PendingRequest(np.asarray(image, dtype=np.float32),
                                      future, span)
            if span is not None:
                def finish_root(done: Future, span=span) -> None:
                    error = done.exception()
                    if error is not None:
                        self.tracer.end_span(span, status="error",
                                             error=f"{type(error).__name__}: "
                                                   f"{error}")
                    else:
                        self.tracer.end_span(span)
                future.add_done_callback(finish_root)
            with self._lifecycle_lock:
                if self._stop.is_set():
                    raise ServerClosedError("server is closed")
                self._requests.put(request)
        except BaseException:
            # Not enqueued — nothing will ever resolve the future, so the
            # admission slot must be handed back here.
            with self._admission_lock:
                self._outstanding -= 1
            raise
        future.add_done_callback(self._release_admission)
        self.stats.observe_submit(outstanding + 1)
        return request.future

    def predict_one(self, image: np.ndarray, timeout: float = 120.0) -> int:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(image).result(timeout=timeout)

    def _batch_loop(self) -> None:
        carry: Optional[_PendingRequest] = None
        while not self._stop.is_set():
            if carry is not None:
                first, carry = carry, None
            else:
                try:
                    first = self._requests.get(timeout=0.05)
                except queue.Empty:
                    continue
            batch = [first]
            shape = first.image.shape
            coalesce_started = time.time()
            deadline = time.monotonic() + self.max_latency_s
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    request = self._requests.get(timeout=remaining)
                except queue.Empty:
                    break
                if request.image.shape != shape:
                    # A mis-shaped request must not poison the batch it
                    # happened to coalesce with: np.stack over mixed shapes
                    # raised in the batcher and failed every innocent
                    # neighbour.  Close this batch and start the next one
                    # from the odd request — dispatched alone, a genuinely
                    # malformed shape gets its own typed error from the
                    # shard and fails only its sender.
                    carry = request
                    break
                batch.append(request)
            # Backpressure: while every live shard is at its in-flight
            # budget, hold the batch instead of piling more work onto the
            # engine (admission control upstream bounds how much can wait
            # here).  A pool with no live shards falls straight through —
            # the dispatch then fails the batch with the engine's typed
            # error instead of spinning.
            while (not self._stop.is_set()
                   and self.engine.live_workers
                   and self.engine.min_live_inflight()
                   >= self.max_inflight_batches):
                time.sleep(0.001)
            if self._stop.is_set():
                if carry is not None:
                    batch.append(carry)
                for request in batch:
                    _resolve_quietly(request.future,
                                     exception=ServerClosedError(
                                         "server closed"))
                return
            self._dispatch(batch, coalesce_started)
        if carry is not None:            # stop flag won the top-of-loop race
            _resolve_quietly(carry.future,
                             exception=ServerClosedError("server closed"))

    def _dispatch(self, batch: List[_PendingRequest],
                  coalesce_started: Optional[float] = None) -> None:
        self.stats.observe_dispatch(len(batch))
        dispatched_at = time.monotonic()
        # A coalesced batch can hold several traced requests but gets one
        # execution; the batch-level spans parent under the first traced
        # request's root (the batch's other traces keep their root span and
        # its timings — their execution is shared by construction).
        traced = next((request.span for request in batch
                       if request.span is not None), None)
        dispatch_span = None
        if traced is not None:
            coalesce_span = self.tracer.start_span(
                "batcher.coalesce", parent=traced,
                start_s=coalesce_started,
                attrs={"batch_size": len(batch)})
            dispatch_span = self.tracer.start_span("shard.dispatch",
                                                   parent=coalesce_span)
            self.tracer.end_span(coalesce_span)
        try:
            images = np.stack([request.image for request in batch])
            future = self.engine.submit(
                "predict", (images, None),
                trace_ctx=dispatch_span.context
                if dispatch_span is not None else None)
        except Exception as exc:  # noqa: BLE001 - fail the whole batch
            self.tracer.end_span(dispatch_span, status="error",
                                 error=f"{type(exc).__name__}: {exc}")
            for request in batch:
                request.future.set_exception(exc)
            return

        def resolve(done: Future, batch=batch) -> None:
            try:
                labels = done.result()
            except Exception as exc:  # noqa: BLE001
                self.tracer.end_span(dispatch_span, status="error",
                                     error=f"{type(exc).__name__}: {exc}")
                for request in batch:
                    _resolve_quietly(request.future, exception=exc)
                return
            self.tracer.end_span(dispatch_span)
            self.stats.observe_batch_latency(
                time.monotonic() - dispatched_at)
            for request, label in zip(batch, labels):
                _resolve_quietly(request.future, result=int(label))

        future.add_done_callback(resolve)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self.engine.num_workers

    @property
    def outstanding(self) -> int:
        """Admitted single-sample requests whose futures are unresolved —
        the exact quantity ``max_pending`` caps."""
        with self._admission_lock:
            return self._outstanding

    def worker_stats(self, timeout: Optional[float] = None) -> List[dict]:
        """Per-worker replica statistics under a shared deadline.

        The deadline (``stats_timeout_s``, a constructor parameter) bounds
        the whole collection: past it, shards that have not answered degrade
        to flagged records and the caller gets partial stats instead of an
        exception (or a two-minute hang on the default work timeout).  Stats
        items queue FIFO behind pending work, so a saturated-but-healthy
        shard can legitimately miss this budget — that is why only shards
        whose *process is gone* count as dead in :meth:`stats_dict`; a
        missed-deadline shard with ``alive=True`` merely has stale stats.
        """
        return self.engine.stats(timeout=timeout if timeout is not None
                                 else self.stats_timeout_s)

    def stats_dict(self, timeout: Optional[float] = None) -> dict:
        """Server counters plus per-worker replica statistics.

        ``cache_bytes`` / ``arena_peak_bytes`` aggregate the worker
        replicas' buffer-cache footprint and planned-arena footprint (see
        :class:`~repro.runtime.optimizer.MemoryPlan`), so memory regressions
        in the compiled runtime surface in the serving stats.  A shard that
        dies or errors mid-collection degrades to a flagged entry in
        ``workers`` rather than aborting the whole call; the aggregates
        then cover the answering shards.  ``dead_workers`` lists only
        shards whose process is actually gone — a live shard that missed
        the stats deadline (e.g. behind a deep work queue) keeps
        ``alive=True`` in its flagged record and lands in
        ``stale_workers`` instead, marking the aggregates as incomplete.
        """
        report = self.stats.as_dict()
        report["num_workers"] = self.num_workers
        report["live_workers"] = self.engine.live_workers
        report["restart_counts"] = self.engine.restart_counts
        report["gave_up_workers"] = self.engine.gave_up_workers
        report["inflight_per_worker"] = self.engine.inflight_per_worker()
        report["max_pending"] = self.max_pending
        report["latency_slo_s"] = self.latency_slo_s
        report["prototype_version"] = self._proto_version
        workers = self.worker_stats(timeout=timeout)
        report["workers"] = workers
        report["dead_workers"] = [record["worker_id"] for record in workers
                                  if "error" in record
                                  and not record.get("alive", False)]
        # Shards that are alive but missed the deadline: their counters are
        # missing from the aggregates below, so the report says explicitly
        # which shards the sums do NOT cover (a degraded collection must
        # not read as a genuine memory drop).
        report["stale_workers"] = [record["worker_id"] for record in workers
                                   if "error" in record
                                   and record.get("alive", False)]
        report["cache_bytes"] = sum(record.get("cache_bytes", 0)
                                    for record in workers)
        report["arena_peak_bytes"] = sum(record.get("arena_peak_bytes", 0)
                                         for record in workers)
        report["metrics"] = self.stats.scrape()
        return report

    def close(self, timeout: float = 10.0) -> None:
        with self._lifecycle_lock:
            if self._stop.is_set():
                return
            self._stop.set()
        self._batcher.join(timeout=timeout)
        closed = ServerClosedError("server closed with requests pending")
        while True:                      # fail whatever never got dispatched
            try:
                request = self._requests.get_nowait()
            except queue.Empty:
                break
            _resolve_quietly(request.future, exception=closed)
        # Engine close fails any dispatched-but-unresolved batch with
        # EngineClosedError, which the resolve callbacks forward to the
        # per-request futures — nothing a caller holds can block forever.
        self.engine.close(timeout=timeout)
        # Journal after the engine: no learn_class can be in flight once
        # the pool is down, so the final fsync covers every applied update.
        if self.journal is not None:
            self.journal.close()
        # Flush and close the span exporter last: spans for the failing
        # futures above are ended by their done callbacks, and a buffered
        # JSONL exporter that is never flushed silently loses the tail of
        # the trace — exactly the spans covering the shutdown.
        self.tracer.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
