"""Prototype-precision experiments (Fig. 3).

The EM stores one ``d_p``-dimensional prototype per class; reducing its bit
width by right-shifting the integer accumulator shrinks the memory footprint
linearly while cosine-similarity classification is largely unaffected until
very low precision.  This module provides the sweep used to regenerate
Fig. 3 and the memory accounting (9.6 kB for 100 classes at 3 bits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..core.explicit_memory import ExplicitMemory
from ..core.ofscil import OFSCIL
from ..data.fscil_split import FSCILBenchmark

#: Bit widths swept in Fig. 3 of the paper (32-bit float reference down to sign).
FIG3_BIT_WIDTHS: Sequence[int] = (32, 8, 7, 6, 5, 4, 3, 2, 1)


def em_memory_kb(num_classes: int, prototype_dim: int, bits: int) -> float:
    """EM storage in kilobytes for the given precision."""
    return num_classes * prototype_dim * bits / 8.0 / 1000.0


@dataclass
class PrecisionSweepRow:
    """One point of the prototype-precision sweep."""

    bits: int
    session0_accuracy: float
    final_session_accuracy: float
    average_accuracy: float
    memory_kb: float
    paper_memory_kb: Optional[float] = None


def accuracy_with_memory(model: OFSCIL, memory: ExplicitMemory,
                         features: np.ndarray, labels: np.ndarray) -> float:
    """Accuracy of nearest-prototype classification with a specific memory."""
    predictions = memory.predict(features)
    return float((predictions == labels).mean())


def prototype_precision_sweep(model: OFSCIL, benchmark: FSCILBenchmark,
                              bit_widths: Iterable[int] = FIG3_BIT_WIDTHS,
                              paper_prototype_dim: int = 256,
                              paper_num_classes: int = 100
                              ) -> List[PrecisionSweepRow]:
    """Sweep the EM precision and measure session-0 / final-session accuracy.

    The model must already be trained; the sweep learns all sessions once at
    full precision and then requantizes the stored prototypes for every bit
    width, exactly as the deployed system would (the accumulator holds the
    full-precision sum; the store is right-shifted).
    """
    # Learn the full protocol once at float precision.
    model.memory.reset()
    model.activation_memory.clear()
    model.learn_base_session(benchmark.base_train)
    for session in benchmark.sessions:
        model.learn_session(session.support)

    # Pre-extract features of the two evaluation points of Fig. 3.
    base_test = benchmark.test_upto(0)
    final_test = benchmark.test_upto(benchmark.num_sessions)
    base_features = model.embed(base_test.images)
    final_features = model.embed(final_test.images)
    base_classes = benchmark.protocol.seen_classes(0)

    rows: List[PrecisionSweepRow] = []
    for bits in bit_widths:
        memory = model.memory.requantize(bits)
        base_matrix_ids = [c for c in base_classes if c in memory]
        session0 = float((memory.predict(base_features, base_matrix_ids)
                          == base_test.labels).mean())
        final = float((memory.predict(final_features) == final_test.labels).mean())
        rows.append(PrecisionSweepRow(
            bits=bits,
            session0_accuracy=session0,
            final_session_accuracy=final,
            average_accuracy=(session0 + final) / 2.0,
            memory_kb=em_memory_kb(memory.num_classes, model.prototype_dim, bits),
            paper_memory_kb=em_memory_kb(paper_num_classes, paper_prototype_dim, bits),
        ))
    return rows


def format_precision_table(rows: List[PrecisionSweepRow]) -> str:
    """Render the sweep as a Fig. 3-style text table."""
    header = f"{'bits':>5}  {'session0':>9}  {'session8':>9}  {'EM kB':>8}  {'paper kB':>9}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(f"{row.bits:>5}  {100 * row.session0_accuracy:>8.2f}%"
                     f"  {100 * row.final_session_accuracy:>8.2f}%"
                     f"  {row.memory_kb:>8.2f}  {row.paper_memory_kb:>9.1f}")
    return "\n".join(lines)
