"""Systematic fault injection against the sharded serving stack.

Two cooperating pieces, covering every layer a fault can originate in:

:class:`ChaosInjector`
    The *engine-side* hook: :class:`~repro.serve.sharded.ShardedEngine`
    calls ``on_result(worker_index, item)`` on every collected result
    frame, and an armed injector replaces a bounded number of them with
    undecodable garbage — modelling a shard that ships corrupted frames
    (torn shared memory, a bad NIC, a buggy serializer).  The collector
    must degrade those requests to a *typed*
    :class:`~repro.serve.sharded.RemoteWorkerError` instead of crashing or
    silently returning wrong bits.

:class:`ChaosController`
    The *coordinator-side* orchestrator for one live
    :class:`~repro.serve.server.Server`:

    * ``kill_worker`` — SIGKILL a shard (hard crash; the watchdog must
      fail its futures fast and routing must steer around the corpse);
    * ``hang_worker`` / ``resume_worker`` — SIGSTOP/SIGCONT a shard (a
      wedged-but-alive process: liveness checks pass, work never
      completes — the nastiest failure mode, only deadlines catch it);
    * ``slow_shard`` — make one replica sleep before every work item
      (sent through the worker's own FIFO ``chaos`` work item, so the
      fault applies exactly after the items already queued);
    * ``exhaust_result_ring`` — force a worker's result ring to report
      full, driving every reply through the inline-pickle fallback (which
      must be bit-identical);
    * ``heal`` — unconditionally undo everything undoable: SIGCONT every
      process and clear the worker-side chaos settings.  **Always call
      this (in a ``finally``) before closing the server** — a SIGSTOPped
      worker never receives SIGTERM, so an unhealed hang turns shutdown
      into a timeout parade.

Faults are injected through the same channels real failures use (signals
to real pids, frames on the real result path, items through the real FIFO
queues), so a scenario that passes is evidence about the production code
path, not about a mock.
"""

from __future__ import annotations

import os
import signal
import threading
from typing import Dict, List, Optional

from ..serve.transport import _SHM

#: Descriptor dtype that no NumPy build accepts: reading it raises, which is
#: exactly the undecodable-frame failure the injector models.
_BOGUS_DTYPE = "?not-a-dtype?"


class ChaosInjector:
    """Bounded result-frame corruption hook for a :class:`ShardedEngine`.

    Disarmed (the initial state) it passes every frame through untouched.
    Once :meth:`arm`\\ ed it replaces up to ``max_corruptions`` successful
    result frames from the targeted worker (any worker when ``None``) with
    an undecodable shared-memory descriptor.  The cap exists because a
    corrupted frame's original ring slot is lost until the shard's rings
    are reclaimed — unbounded corruption would exhaust the ring and turn a
    frame-corruption scenario into a ring-exhaustion one.
    """

    def __init__(self, max_corruptions: int = 2):
        if max_corruptions < 1:
            raise ValueError("max_corruptions must be >= 1")
        self.max_corruptions = int(max_corruptions)
        self._lock = threading.Lock()
        self._armed = False
        self._target: Optional[int] = None
        self.corrupted = 0

    def arm(self, worker: Optional[int] = None) -> None:
        """Start corrupting frames (from ``worker`` only, or any)."""
        with self._lock:
            self._armed = True
            self._target = worker

    def disarm(self) -> None:
        with self._lock:
            self._armed = False

    # ------------------------------------------------------------------
    def on_result(self, worker_index: int, item):
        """Engine collector hook: maybe corrupt one result frame."""
        with self._lock:
            if (not self._armed or self.corrupted >= self.max_corruptions
                    or (self._target is not None
                        and worker_index != self._target)):
                return item
            try:
                ticket, worker_id, ok, _packed = item
            except (TypeError, ValueError):
                return item
            if not ok:                    # already an error frame; leave it
                return item
            self.corrupted += 1
        # A syntactically valid frame whose descriptor cannot be decoded:
        # the collector must fail *this* request with a typed error and
        # keep collecting.
        return (ticket, worker_id, True, (_SHM, (0, (1,), _BOGUS_DTYPE)))


class ChaosController:
    """Signal- and work-item-level fault orchestration for one server."""

    def __init__(self, server):
        self.server = server
        self._stopped: set = set()

    # ------------------------------------------------------------------
    @property
    def engine(self):
        return self.server.engine

    def _pid(self, worker: int) -> int:
        return self.engine.worker_pids[worker]

    # ------------------------------------------------------------------
    def kill_worker(self, worker: int) -> None:
        """SIGKILL one shard's process — the hard-crash fault."""
        os.kill(self._pid(worker), signal.SIGKILL)

    def hang_worker(self, worker: int) -> None:
        """SIGSTOP one shard: alive to the watchdog, deaf to work."""
        os.kill(self._pid(worker), signal.SIGSTOP)
        self._stopped.add(worker)

    def resume_worker(self, worker: int) -> None:
        """SIGCONT a hung shard; it then drains its queued backlog."""
        os.kill(self._pid(worker), signal.SIGCONT)
        self._stopped.discard(worker)

    def slow_shard(self, worker: int, slow_s: float,
                   timeout: float = 60.0) -> Dict[str, object]:
        """Make one replica sleep ``slow_s`` before each work item; blocks
        until the shard acked the setting (FIFO: later items are slow)."""
        return self.engine.submit(
            "chaos", {"slow_s": float(slow_s)},
            worker=worker).result(timeout=timeout)

    def exhaust_result_ring(self, worker: int, on: bool = True,
                            timeout: float = 60.0) -> Dict[str, object]:
        """Force (or stop forcing) a worker's result ring to report full,
        so replies take the inline-pickle fallback path."""
        return self.engine.submit(
            "chaos", {"exhaust_result_ring": bool(on)},
            worker=worker).result(timeout=timeout)

    # ------------------------------------------------------------------
    def heal(self, timeout: float = 60.0) -> List[int]:
        """Undo every undoable fault; returns the workers that acked.

        SIGCONT goes to *every* worker pid unconditionally (a SIGSTOPped
        process never dies to the close-time SIGTERM, so healing must not
        depend on our bookkeeping being right), then every live shard gets
        its chaos settings cleared through the normal FIFO path.  Safe to
        call repeatedly and on a half-dead pool — per-shard failures are
        swallowed, this is the cleanup path.
        """
        try:
            pids = self.engine.worker_pids
        except Exception:  # noqa: BLE001 - engine already torn down
            return []
        for pid in pids:
            try:
                os.kill(pid, signal.SIGCONT)
            except (ProcessLookupError, PermissionError):
                pass
        self._stopped.clear()
        healed: List[int] = []
        try:
            live = self.engine.live_workers
        except Exception:  # noqa: BLE001
            return healed
        for worker in live:
            try:
                self.engine.submit(
                    "chaos", {"slow_s": 0.0, "exhaust_result_ring": False},
                    worker=worker).result(timeout=timeout)
                healed.append(worker)
            except Exception:  # noqa: BLE001 - cleanup must not raise
                pass
        return healed
