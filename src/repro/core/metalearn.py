"""Server-side metalearning (Section IV-C).

Metalearning emulates the on-device learning + inference procedure on the
base session: in every iteration the class prototypes are re-computed from N
randomly drawn *meta-samples* per class, a batch of query images is embedded,
and the ReLU-sharpened cosine similarities between queries and prototypes are
trained with the multi-margin loss of Eq. (4) (or cross-entropy, for the
ablation that shows CE degrades generalization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import nn
from ..data.dataset import ArrayDataset
from ..models.heads import FullyConnectedReductor
from ..nn import losses
from ..nn import functional as F
from ..nn.calibration import recalibrate_batchnorm
from ..nn.optim import SGD
from ..nn.tensor import Tensor


@dataclass
class MetalearnConfig:
    """Hyper-parameters of the metalearning stage."""

    iterations: int = 20
    meta_shots: int = 5           # N meta-samples per class for the prototypes
    queries_per_class: int = 2
    classes_per_episode: Optional[int] = None  # None = all base classes
    learning_rate: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 1e-4
    loss: str = "multi_margin"    # "multi_margin" or "cross_entropy"
    margin: float = 0.1
    ce_temperature: float = 10.0
    relu_sharpening: bool = True
    grad_clip: float = 5.0
    seed: int = 0


@dataclass
class MetalearnResult:
    history: List[Dict[str, float]] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.history[-1]["loss"] if self.history else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.history[-1]["accuracy"] if self.history else float("nan")


def _sample_episode(dataset: ArrayDataset, class_ids: np.ndarray, shots: int,
                    queries: int, rng: np.random.Generator):
    """Draw disjoint support and query indices for every episode class."""
    support_indices, query_indices, query_labels = [], [], []
    for position, class_id in enumerate(class_ids):
        indices = np.flatnonzero(dataset.labels == class_id)
        needed = shots + queries
        replace = len(indices) < needed
        chosen = rng.choice(indices, size=needed, replace=replace)
        support_indices.append(chosen[:shots])
        query_indices.append(chosen[shots:])
        query_labels.append(np.full(queries, position, dtype=np.int64))
    return (np.concatenate(support_indices), np.concatenate(query_indices),
            np.concatenate(query_labels))


def metalearn(backbone: nn.Module, fcr: FullyConnectedReductor,
              dataset: ArrayDataset, config: Optional[MetalearnConfig] = None
              ) -> MetalearnResult:
    """Metalearn backbone + FCR on the base session (trained in place)."""
    config = config or MetalearnConfig()
    rng = np.random.default_rng(config.seed)
    all_classes = dataset.classes

    parameters = backbone.parameters() + fcr.parameters()
    optimizer = SGD(parameters, lr=config.learning_rate, momentum=config.momentum,
                    weight_decay=config.weight_decay)

    result = MetalearnResult()
    for iteration in range(config.iterations):
        if config.classes_per_episode is not None and \
                config.classes_per_episode < len(all_classes):
            class_ids = rng.choice(all_classes, size=config.classes_per_episode,
                                   replace=False)
        else:
            class_ids = all_classes
        support_idx, query_idx, query_labels = _sample_episode(
            dataset, class_ids, config.meta_shots, config.queries_per_class, rng)

        # Prototypes are computed exactly like the on-device EM update:
        # a frozen forward pass over the meta-samples, averaged per class.
        backbone.eval()
        fcr.eval()
        with nn.no_grad():
            support_features = fcr(backbone(Tensor(dataset.images[support_idx]))).data
        prototypes = support_features.reshape(
            len(class_ids), config.meta_shots, -1).mean(axis=1)

        # Queries are embedded with gradients enabled and scored against the
        # prototypes with (optionally sharpened) cosine similarity.
        backbone.train()
        fcr.train()
        query_features = fcr(backbone(Tensor(dataset.images[query_idx])))
        sims = F.cosine_similarity_matrix(query_features, Tensor(prototypes))
        if config.relu_sharpening:
            sims = F.relu(sims)

        if config.loss == "multi_margin":
            loss = losses.multi_margin_loss(sims, query_labels, margin=config.margin,
                                            num_classes=len(class_ids))
        elif config.loss == "cross_entropy":
            loss = losses.cross_entropy(sims * config.ce_temperature, query_labels)
        else:
            raise ValueError(f"unknown metalearning loss {config.loss!r}")

        backbone.zero_grad()
        fcr.zero_grad()
        loss.backward()
        if config.grad_clip:
            nn.optim.clip_grad_norm(parameters, config.grad_clip)
        optimizer.step()

        predictions = np.argmax(sims.data, axis=1)
        accuracy = float((predictions == query_labels).mean())
        result.history.append({
            "iteration": iteration,
            "loss": float(loss.data),
            "accuracy": accuracy,
            "episode_classes": len(class_ids),
        })
    recalibrate_batchnorm(backbone, dataset.images, batch_size=64)
    backbone.eval()
    fcr.eval()
    return result
