"""Layer/module abstraction for the NumPy NN substrate.

Modules own :class:`Parameter` tensors, track training mode, and can be
composed hierarchically.  The interface intentionally mirrors a small subset
of ``torch.nn`` so the model code in :mod:`repro.models` reads naturally.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, requires_grad: bool = True, name: Optional[str] = None):
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for all neural network modules."""

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._forward_hooks: List = []
        self.training = True

    # -- attribute plumbing -------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array that is part of the module state."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a previously registered buffer in place of the registry."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} was never registered")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ----------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_parameters(child_prefix)

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), buf
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_buffers(child_prefix)

    def num_parameters(self, trainable_only: bool = False) -> int:
        return sum(p.size for p in self.parameters()
                   if not trainable_only or p.requires_grad)

    # -- mode / gradient management ------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def freeze(self) -> "Module":
        """Disable gradient computation for every parameter of the module."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for param in self.parameters():
            param.requires_grad = True
        return self

    # -- state management -----------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[f"{name}"] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = []
        for name, param in own_params.items():
            if name in state:
                param.data = np.asarray(state[name], dtype=param.data.dtype).reshape(param.shape)
            elif strict:
                missing.append(name)
        for prefix, module in self.named_modules():
            for buf_name in list(module._buffers):
                full = f"{prefix}.{buf_name}" if prefix else buf_name
                if full in state:
                    module.update_buffer(buf_name, np.array(state[full], copy=True))
                elif strict and full in own_buffers:
                    missing.append(full)
        if strict and missing:
            raise KeyError(f"missing keys in state_dict: {missing}")

    # -- call protocol --------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def register_forward_hook(self, hook) -> None:
        """Register ``hook(module, output) -> output or None`` on this module.

        Hooks run after :meth:`forward`; returning a value replaces the
        output.  Used e.g. by the activation quantization pass.
        """
        self._forward_hooks.append(hook)

    def clear_forward_hooks(self) -> None:
        self._forward_hooks.clear()

    def __call__(self, *args, **kwargs):
        output = self.forward(*args, **kwargs)
        for hook in self._forward_hooks:
            result = hook(self, output)
            if result is not None:
                output = result
        return output


class Identity(Module):
    """Pass-through module."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = str(index)
            setattr(self, name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self):
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x


class ModuleList(Module):
    """Holds submodules in a list, registering them for traversal."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        self._order: List[str] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self):
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise RuntimeError("ModuleList is a container and cannot be called")


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with weight shape (out, in)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.uniform_bias(in_features, (out_features,), rng)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def extra_repr(self) -> str:
        return f"in={self.in_features}, out={self.out_features}"


class Conv2d(Module):
    """2-D convolution with optional grouping (NCHW layout)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, groups: int = 1,
                 bias: bool = True, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if in_channels % groups != 0 or out_channels % groups != 0:
            raise ValueError("channels must be divisible by groups")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        weight_shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(weight_shape, rng))
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.bias = Parameter(init.uniform_bias(fan_in, (out_channels,), rng)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding, groups=self.groups)


class BatchNorm2d(Module):
    """Batch normalization over the channel dimension of NCHW tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1,
                 affine: bool = True):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.affine = affine
        if affine:
            self.weight = Parameter(np.ones(num_features, dtype=np.float32))
            self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        else:
            self.weight = None
            self.bias = None
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        self.register_buffer("num_batches_tracked", np.zeros((), dtype=np.int64))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            # Update running statistics outside the autograd graph.
            batch_mean = x.data.mean(axis=(0, 2, 3))
            batch_var = x.data.var(axis=(0, 2, 3))
            n = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
            unbiased_var = batch_var * n / max(n - 1, 1)
            self.update_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean + self.momentum * batch_mean)
            self.update_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var + self.momentum * unbiased_var)
            self.update_buffer("num_batches_tracked", self.num_batches_tracked + 1)
            weight = self.weight if self.affine else Tensor(np.ones(self.num_features, dtype=np.float32))
            bias = self.bias if self.affine else Tensor(np.zeros(self.num_features, dtype=np.float32))
            from .ops import BatchNormTrain
            return BatchNormTrain.apply(x, weight, bias, self.eps,
                                        batch_mean, batch_var)
        mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
        var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        x_hat = (x - mean) / (var + self.eps).sqrt()
        if self.affine:
            weight = self.weight.reshape((1, self.num_features, 1, 1))
            bias = self.bias.reshape((1, self.num_features, 1, 1))
            return x_hat * weight + bias
        return x_hat


class BatchNorm1d(Module):
    """Batch normalization over the feature dimension of (N, C) tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1,
                 affine: bool = True):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.affine = affine
        if affine:
            self.weight = Parameter(np.ones(num_features, dtype=np.float32))
            self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        else:
            self.weight = None
            self.bias = None
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            batch_mean = x.data.mean(axis=0)
            batch_var = x.data.var(axis=0)
            n = x.data.shape[0]
            unbiased_var = batch_var * n / max(n - 1, 1)
            self.update_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean + self.momentum * batch_mean)
            self.update_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var + self.momentum * unbiased_var)
            weight = self.weight if self.affine else Tensor(np.ones(self.num_features, dtype=np.float32))
            bias = self.bias if self.affine else Tensor(np.zeros(self.num_features, dtype=np.float32))
            from .ops import BatchNormTrain
            return BatchNormTrain.apply(x, weight, bias, self.eps,
                                        batch_mean, batch_var)
        mean = Tensor(self.running_mean.reshape(1, -1))
        var = Tensor(self.running_var.reshape(1, -1))
        x_hat = (x - mean) / (var + self.eps).sqrt()
        if self.affine:
            return x_hat * self.weight.reshape((1, -1)) + self.bias.reshape((1, -1))
        return x_hat


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class ReLU6(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu6(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Dropout(Module):
    def __init__(self, p: float = 0.5, seed: Optional[int] = None):
        super().__init__()
        self.p = p
        self.seed = seed

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, p=self.p, training=self.training, seed=self.seed)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)
