"""Int8 runtime conformance: golden fixtures, determinism, sharded parity.

The integer execution path must be *exactly* reproducible: integer GEMMs
cannot round, so — unlike the float32 runtime, whose results shift with BLAS
summation order — the int8 plan commits to bit-identical outputs across
runs, micro-batch chunkings, pickled snapshots and worker processes.  The
conformance matrix is backbone-generic: every test parametrizes over both
quantizable families (MobileNetV2 and the BasicBlock ResNet trunk), and the
committed golden fixtures (``tests/fixtures/int8_golden.npz`` +
``tests/fixtures/int8_resnet_golden.npz``, regenerated via
``python tests/int8_fixtures.py``) pin the exact bits per family.
"""

import pickle

import numpy as np
import pytest

from int8_fixtures import (
    BACKBONE,
    RESNET_BACKBONE,
    build_quantized_model,
    golden_inputs,
    load_golden,
)
from repro.hw import DeploymentPlan, deploy_backbone
from repro.models import get_config
from repro.runtime import InferenceEngine, Int8CompilationError, compile_backbone
from repro.runtime.kernels import INT8_QMAX, quantize_unit_rows
from repro.serve import Server, snapshot_model

#: Both backbone families run the full conformance matrix.
CONFORMANCE_BACKBONES = (BACKBONE, RESNET_BACKBONE)

#: Family-specific plan-shape expectations: the MobileNetV2 trunk is mostly
#: ``qconv`` layers with a float global pool; the ResNet trunk adds the
#: integer global pool and the downsample/identity shortcut joins.
MIN_INTEGER_CONVS = {BACKBONE: 25, RESNET_BACKBONE: 14}
POOL_OP = {BACKBONE: "global_pool", RESNET_BACKBONE: "qglobal_pool"}


@pytest.fixture(scope="module", params=CONFORMANCE_BACKBONES)
def conformance(request):
    """(backbone, model, report, golden arrays) per backbone family."""
    backbone = request.param
    golden = load_golden(backbone)
    model, report = build_quantized_model(backbone)
    return backbone, model, report, golden


class TestPlanShape:
    def test_no_opaque_steps_for_activation_fake_quant(self, conformance):
        backbone, model, _, _ = conformance
        predictor = model.runtime_predictor()
        assert predictor.mode == "int8"
        ops = [step.op for step in predictor.backbone_engine.plan.steps]
        assert "opaque" not in ops
        # Fake-quant hook points became first-class plan ops...
        assert "quantize" in ops and "requantize" in ops
        # ...and the conv stack runs on integer kernels.
        assert ops.count("qconv") + ops.count("qconv_dequant") \
            + ops.count("qconv_add") >= MIN_INTEGER_CONVS[backbone]
        assert POOL_OP[backbone] in ops
        fcr_ops = [step.op for step in predictor.fcr_engine.plan.steps]
        assert fcr_ops == ["quantize", "qlinear"]

    def test_float_mode_still_falls_back_to_opaque(self, conformance):
        # Contrast case: the float32 lowering cannot express the hooks and
        # must keep the eager fallback — the int8 mode is what removes it.
        _, model, _, _ = conformance
        plan = compile_backbone(model.backbone, mode="float32")
        assert any(step.op == "opaque" for step in plan.steps)

    def test_int8_plan_snapshot_has_no_module_references(self, conformance):
        _, model, _, _ = conformance
        snapshot = snapshot_model(model)
        assert snapshot.mode == "int8"
        assert all(step.module is None for step in snapshot.backbone.steps)
        assert all(step.module is None for step in snapshot.fcr.steps)

    def test_model_size_reports_true_int8_storage(self, conformance):
        _, model, report, _ = conformance
        predictor = model.runtime_predictor()
        plans_bytes = predictor.backbone_engine.plan.storage_bytes() + \
            predictor.fcr_engine.plan.storage_bytes()
        assert report.model_size_bytes == plans_bytes
        fp32_bytes = sum(p.size * 4 for p in model.backbone.parameters()) + \
            sum(p.size * 4 for p in model.fcr.parameters())
        # int8 weights + per-channel int32 bias/requant params: well under
        # half the float32 footprint, but strictly more than weights alone.
        assert plans_bytes < fp32_bytes / 2
        weight_only = sum(
            step.arrays["weight"].size
            for plan in (predictor.backbone_engine.plan,
                         predictor.fcr_engine.plan)
            for step in plan.steps
            if step.op in ("qconv", "qconv_dequant", "qconv_add", "qlinear"))
        assert plans_bytes > weight_only


class TestResNetLowering:
    """Structure of the BasicBlock trunk's integer plan specifically."""

    @pytest.fixture(scope="class")
    def resnet_quantized(self):
        return build_quantized_model(RESNET_BACKBONE)

    @pytest.fixture(scope="class")
    def resnet_plan(self, resnet_quantized):
        model, _ = resnet_quantized
        return compile_backbone(model.backbone, mode="int8")

    def test_strided_downsample_shortcut_runs_in_integers(self, resnet_plan):
        downsamples = [step for step in resnet_plan.steps
                       if step.name.endswith(".downsample")]
        assert downsamples, "resnet20 has strided projection shortcuts"
        for step in downsamples:
            assert step.op in ("qconv", "qconv_dequant")
            assert step.attrs["stride"] == 2
            assert step.arrays["weight"].shape[2:] == (1, 1)

    def test_identity_shortcuts_join_the_add_on_the_int8_grid(self,
                                                              resnet_plan):
        # Blocks without a downsample feed their int8 input straight into
        # the residual add through a dequantize (fused to an in-scale attr
        # by the optimizer); the add itself carries the fused relu.
        adds = [step for step in resnet_plan.steps if step.op == "add"]
        assert adds
        assert all(step.attrs.get("act") == "relu" for step in adds)

    def test_global_pool_is_integer(self, resnet_plan):
        pools = [step for step in resnet_plan.steps
                 if step.op == "qglobal_pool"]
        assert len(pools) == 1
        assert pools[0].attrs["scale"] > 0

    def test_block_outputs_have_calibrated_hooks(self, resnet_quantized):
        from repro.models.resnet import BasicBlock
        from repro.quant.activation_quant import ActivationQuantizer

        model, _ = resnet_quantized
        blocks = [module for module in model.backbone.modules()
                  if isinstance(module, BasicBlock)]
        assert blocks
        for block in blocks:
            hooks = [hook for hook in block._forward_hooks
                     if isinstance(hook, ActivationQuantizer)]
            assert len(hooks) == 1
            assert hooks[0].mode == "quantize"
            assert hooks[0].quantizer is not None
            assert hooks[0].scale > 0

    def test_accumulator_bounds_are_proven_per_layer(self, resnet_plan):
        from repro.runtime.kernels import INT32_ACC_LIMIT

        integer_steps = [step for step in resnet_plan.steps
                         if step.op in ("qconv", "qconv_dequant")]
        assert integer_steps
        for step in integer_steps:
            assert 0 < step.attrs["acc_bound"] <= INT32_ACC_LIMIT


class TestResNet12Int8:
    """ResNet-12 trunk (projected shortcut, post-pool block requant).

    No committed golden fixture for this family (yet): coverage is
    self-consistent — full integer lowering, chunking determinism, optimizer
    bit-parity and cost-model agreement, which together pin everything a
    golden file would except the absolute bits.
    """

    @pytest.fixture(scope="class")
    def resnet12(self):
        return build_quantized_model("resnet12_tiny")

    def test_lowers_fully_to_integer_kernels(self, resnet12):
        model, _ = resnet12
        predictor = model.runtime_predictor()
        assert predictor.mode == "int8"
        ops = [step.op for step in predictor.backbone_engine.plan.steps]
        assert "opaque" not in ops
        assert "qglobal_pool" in ops and "max_pool" in ops
        assert ops.count("qconv") + ops.count("qconv_dequant") \
            + ops.count("qconv_add") >= 14

    def test_chunking_and_optimizer_are_bit_exact(self, resnet12):
        model, _ = resnet12
        plan = compile_backbone(model.backbone, mode="int8")
        images = golden_inputs()
        whole = InferenceEngine(plan, optimize=False,
                                micro_batch=64).run(images)
        chunked = InferenceEngine(plan, optimize=False,
                                  micro_batch=3).run(images)
        optimized = InferenceEngine(plan, micro_batch=3,
                                    num_threads=2).run(images)
        np.testing.assert_array_equal(whole, chunked)
        np.testing.assert_array_equal(whole, optimized)

    def test_from_plan_agrees_with_registry_folded_graph(self, resnet12):
        model, _ = resnet12
        config = get_config("resnet12_tiny")
        plan = model.runtime_predictor().backbone_engine.plan
        deployed = DeploymentPlan.from_plan(
            plan, input_hw=(config.input_size, config.input_size))
        spec_deployed = deploy_backbone("resnet12_tiny")
        assert deployed.total_macs == spec_deployed.total_macs
        assert deployed.weight_bytes == spec_deployed.weight_bytes


class TestGoldenConformance:
    def test_fixture_inputs_are_reproducible_from_seeds(self, conformance):
        _, _, _, golden = conformance
        np.testing.assert_array_equal(golden["images"], golden_inputs())

    def test_reproduces_committed_fixture_exactly(self, conformance):
        _, model, _, golden = conformance
        predictor = model.runtime_predictor()
        theta_a = predictor.extract_backbone_features(golden["images"])
        np.testing.assert_array_equal(theta_a, golden["theta_a"])
        theta_p = predictor.project(theta_a)
        np.testing.assert_array_equal(theta_p, golden["theta_p"])
        sims, ids = predictor.similarities_from_features(theta_p)
        np.testing.assert_array_equal(sims, golden["sims"])
        np.testing.assert_array_equal(ids, golden["ids"])
        np.testing.assert_array_equal(predictor.predict_features(theta_p),
                                      golden["labels"])

    def test_bitwise_stable_across_chunkings(self, conformance):
        # Integer accumulation is exact, so micro-batch boundaries cannot
        # perturb a single bit (the float32 runtime only promises 1e-5).
        _, model, _, golden = conformance
        plan = model.runtime_predictor().backbone_engine.plan
        whole = InferenceEngine(plan, micro_batch=64).run(golden["images"])
        chunked = InferenceEngine(plan, micro_batch=3).run(golden["images"])
        np.testing.assert_array_equal(whole, chunked)
        np.testing.assert_array_equal(whole, golden["theta_a"])

    def test_recompilation_reproduces_the_same_bits(self, conformance):
        _, model, _, golden = conformance
        fresh_plan = compile_backbone(model.backbone, mode="int8")
        out = InferenceEngine(fresh_plan).run(golden["images"])
        np.testing.assert_array_equal(out, golden["theta_a"])

    def test_int8_fcr_is_per_sample_bitwise_stable(self, conformance):
        # Small-M float32 GEMMs are not bitwise equal to the same rows inside
        # a larger GEMM on OpenBLAS; the int8 FCR removes that hazard, which
        # is what lets sharded workers answer end-to-end.
        _, model, _, golden = conformance
        predictor = model.runtime_predictor()
        batch = predictor.project(golden["theta_a"])
        rows = np.stack([predictor.project(row) for row in golden["theta_a"]])
        np.testing.assert_array_equal(batch, rows)


class TestSnapshotRoundTrip:
    def test_pickle_roundtrip_is_bit_exact(self, conformance):
        _, model, _, golden = conformance
        snapshot = pickle.loads(pickle.dumps(snapshot_model(model)))
        backbone = InferenceEngine(snapshot.backbone.restore(),
                                   micro_batch=snapshot.micro_batch)
        fcr = InferenceEngine(snapshot.fcr.restore())
        theta_a = backbone.run(golden["images"])
        np.testing.assert_array_equal(theta_a, golden["theta_a"])
        np.testing.assert_array_equal(fcr.run(theta_a), golden["theta_p"])

    def test_sharded_serving_parity_is_bit_for_bit(self, conformance):
        _, model, _, golden = conformance
        predictor = model.runtime_predictor()
        with Server(model, num_workers=2, max_latency_s=0.05) as server:
            # Sync path: workers run the backbone, coordinator finishes.
            np.testing.assert_array_equal(
                server.extract_backbone_features(golden["images"]),
                golden["theta_a"])
            np.testing.assert_array_equal(server.predict(golden["images"]),
                                          golden["labels"])
            sims, ids = server.similarities(golden["images"])
            np.testing.assert_array_equal(ids, golden["ids"])
            np.testing.assert_array_equal(
                sims, np.maximum(golden["sims"], 0.0)
                if model.config.relu_sharpening else golden["sims"])
            # Async path: one worker answers end-to-end from its replica —
            # exact integer arithmetic makes even that path bit-identical.
            for index in range(3):
                label = server.predict_one(golden["images"][index])
                assert label == int(golden["labels"][index])
            # Online learning keeps parity through the broadcast.
            shots = golden["images"][:3]
            try:
                server.learn_class(shots, 99)
                np.testing.assert_array_equal(
                    server.predict(golden["images"]),
                    predictor.predict(golden["images"]))
            finally:
                # The model is module-scoped: restore the fixture memory.
                model.memory.remove_class(99)
                model.activation_memory.pop(99, None)


class TestDeploymentFromPlan:
    def test_from_plan_agrees_with_registry_folded_graph(self, conformance):
        # One folded graph feeds both the runtime and the cost model: the
        # spec-path deployment (fold_batchnorm on registry specs) and the
        # plan-path deployment must agree on MACs and weight bytes — for
        # every quantizable backbone family.
        backbone, model, _, _ = conformance
        config = get_config(backbone)
        plan = model.runtime_predictor().backbone_engine.plan
        deployed = DeploymentPlan.from_plan(
            plan, input_hw=(config.input_size, config.input_size))
        spec_deployed = deploy_backbone(backbone)
        assert deployed.total_macs == spec_deployed.total_macs
        assert deployed.weight_bytes == spec_deployed.weight_bytes

    def test_from_plan_weight_bytes_match_runtime_arrays(self, conformance):
        backbone, model, _, _ = conformance
        plan = model.runtime_predictor().backbone_engine.plan
        config = get_config(backbone)
        deployed = DeploymentPlan.from_plan(
            plan, input_hw=(config.input_size, config.input_size))
        array_bytes = sum(step.arrays["weight"].size for step in plan.steps
                          if step.op in ("qconv", "qconv_dequant",
                                         "qconv_add"))
        assert deployed.weight_bytes == array_bytes

    def test_from_plan_costs_are_usable(self, conformance):
        _, model, _, _ = conformance
        plan = model.runtime_predictor().backbone_engine.plan
        deployed = DeploymentPlan.from_plan(plan, input_hw=(16, 16))
        assert deployed.latency_ms(8) > 0
        assert deployed.cost(8).total_macs == deployed.total_macs


class TestAccuracyAndGuards:
    def test_int8_similarities_track_eager_fake_quant(self, conformance):
        # The integer path deviates from the eager fake-quant reference only
        # by weight re-quantization after BN folding, the input grid and (on
        # the ResNet trunk) the integer pooling order; on the
        # cosine-similarity surface (the quantity that drives
        # classification) that deviation stays small.  Argmax labels are NOT
        # compared here: the conformance model is untrained, so its
        # prototypes are near-orthogonal random vectors and label flips on
        # sub-tolerance deltas are expected.
        _, model, _, golden = conformance
        eager_features = model.embed(golden["images"], use_runtime=False)
        eager_sims, eager_ids = model.memory.similarities(eager_features)
        np.testing.assert_array_equal(eager_ids, golden["ids"])
        scale = 1.0 + float(np.max(np.abs(eager_sims)))
        error = float(np.max(np.abs(golden["sims"] - eager_sims)) / scale)
        assert error < 0.02

    def test_similarities_live_on_the_1_over_127sq_grid(self, conformance):
        _, _, _, golden = conformance
        codes = golden["sims"] * INT8_QMAX ** 2
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-3)

    def test_quantize_unit_rows_range(self):
        matrix = np.array([[1.0, -1.0, 0.5], [0.0, 0.25, -0.75]],
                          dtype=np.float32)
        codes = quantize_unit_rows(matrix)
        assert codes.dtype == np.int8
        np.testing.assert_array_equal(
            codes, np.round(matrix * INT8_QMAX).astype(np.int8))

    def test_non_8bit_quantization_stays_on_the_float_runtime(self):
        # The integer lowering only exists for 8-bit grids: a 4-bit
        # activation config must NOT be switched to "int8" mode (it would
        # compile to an all-opaque plan that cannot be snapshotted/served)
        # and must keep the bit-width-aware size estimate.
        from repro.core import OFSCIL, OFSCILConfig
        from repro.data import build_synthetic_fscil
        from repro.quant import QuantizationConfig, quantize_ofscil_model

        benchmark = build_synthetic_fscil("test", seed=0)
        model = OFSCIL.from_registry(BACKBONE, OFSCILConfig(backbone=BACKBONE),
                                     seed=3)
        model, report = quantize_ofscil_model(
            model, benchmark.base_train,
            config=QuantizationConfig(activation_bits=4,
                                      qat_pretrain_epochs=0,
                                      qat_metalearn_iterations=0,
                                      calibration_batches=2,
                                      calibration_batch_size=32))
        assert model.config.runtime_mode == "float32"
        assert model.runtime_predictor().mode == "float32"
        weight_elems = sum(p.size for p in model.backbone.parameters()
                           if p.data.ndim >= 2)
        assert report.model_size_bytes > weight_elems  # not FCR floats only

    def test_accumulator_overflow_is_rejected_at_compile_time(self):
        from repro import nn
        from repro.models.mobilenetv2 import ConvBNReLU
        from repro.quant import ActivationQuantizationPass
        from repro.runtime import compile_module

        rng = np.random.default_rng(0)
        net = nn.Sequential(ConvBNReLU(4, 4, rng=rng), nn.GlobalAvgPool2d())
        net.eval()
        act_pass = ActivationQuantizationPass(net, bits=8)
        act_pass.calibrate(rng.standard_normal((8, 4, 8, 8)).astype(np.float32))
        act_pass.enable()
        # A pathologically huge folded bias on a pathologically fine output
        # grid cannot be represented in the int32 accumulator: the compiler
        # must refuse rather than silently wrap.
        net[0].bn.bias.data = np.full(4, 1e9, dtype=np.float32)
        net.input_quantizer = act_pass.input_quantizer
        with pytest.raises(Int8CompilationError):
            compile_module(net, mode="int8")
