"""End-to-end int8 quantization workflow for an O-FSCIL model.

Mirrors the paper's deployment recipe (Section V-A): TQT-style int8
quantization of weights and activations, followed by a short
quantization-aware refinement — three pretraining epochs and ten metalearning
iterations — before the model is frozen and shipped to the MCU.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..core.metalearn import MetalearnConfig, metalearn
from ..core.ofscil import OFSCIL
from ..core.pretrain import PretrainConfig, pretrain
from ..data.dataset import ArrayDataset
from .activation_quant import ActivationQuantizationPass, ActivationQuantizationReport
from .weight_quant import WeightQuantizationReport, integer_weight_size_bytes, quantize_weights


@dataclass
class QuantizationConfig:
    """Settings of the int8 deployment quantization."""

    weight_bits: int = 8
    activation_bits: int = 8
    per_channel_weights: bool = False
    qat_pretrain_epochs: int = 3
    qat_metalearn_iterations: int = 10
    calibration_batches: int = 8
    calibration_batch_size: int = 64
    #: runtime execution mode the quantized model is switched to:
    #: ``"int8"`` compiles integer kernels (the deployment configuration),
    #: ``None`` leaves the model on the float runtime with eager fake-quant.
    runtime_mode: Optional[str] = "int8"
    seed: int = 0


@dataclass
class QuantizationReport:
    """Summary of the quantization process."""

    config: QuantizationConfig
    weights: WeightQuantizationReport
    activations: ActivationQuantizationReport
    model_size_bytes: int
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def model_size_mb(self) -> float:
        return self.model_size_bytes / 1e6


def quantize_ofscil_model(model: OFSCIL, calibration_data: ArrayDataset,
                          config: Optional[QuantizationConfig] = None,
                          pretrain_config: Optional[PretrainConfig] = None,
                          metalearn_config: Optional[MetalearnConfig] = None,
                          seed: int = 0
                          ) -> Tuple[OFSCIL, QuantizationReport]:
    """Quantize backbone + FCR of ``model`` to int8 (in place).

    Args:
        model: a pretrained (and metalearned) O-FSCIL model.
        calibration_data: labelled base-session data used for activation range
            calibration and quantization-aware refinement.
        config: quantization settings.
        pretrain_config / metalearn_config: hyper-parameters used for the
            short quantization-aware refinement stages; when omitted, gentle
            defaults derived from the paper (3 epochs / 10 iterations) are used.

    Returns:
        ``(model, report)`` — the same model object, now operating with int8
        weights and activation fake-quantization, plus a report.
    """
    config = config or QuantizationConfig(seed=seed)
    num_classes = len(calibration_data.classes)

    # 1. Activation calibration on float weights (ranges match deployment).
    #    The pass hooks every activation output, the pooled backbone output
    #    and the residual-block outputs of whichever family the backbone is
    #    (InvertedResidual for MobileNetV2, BasicBlock/ResNet12Block for the
    #    ResNet trunks), so the int8 compiler finds a calibrated grid at
    #    every point where the deployed graph requantizes.
    act_pass = ActivationQuantizationPass(model.backbone, bits=config.activation_bits)
    calibration_images = calibration_data.images[: config.calibration_batches *
                                                 config.calibration_batch_size]
    act_report = act_pass.calibrate(calibration_images,
                                    batch_size=config.calibration_batch_size)
    act_pass.enable()

    # 2. Post-training weight quantization.
    weight_report = quantize_weights(model.backbone, bits=config.weight_bits,
                                     per_channel=config.per_channel_weights)
    fcr_report = quantize_weights(model.fcr, bits=config.weight_bits,
                                  per_channel=config.per_channel_weights)
    weight_report.thresholds.update(
        {f"fcr.{k}": v for k, v in fcr_report.thresholds.items()})
    weight_report.mse.update({f"fcr.{k}": v for k, v in fcr_report.mse.items()})

    extras: Dict[str, object] = {}

    # 3. Quantization-aware refinement (STE gradients through the activation
    #    fake-quant hooks), then re-quantize the refreshed float weights.
    if config.qat_pretrain_epochs > 0:
        qat_pretrain = pretrain_config or PretrainConfig(
            epochs=config.qat_pretrain_epochs, learning_rate=0.01,
            use_feature_interpolation=False, seed=config.seed + 21)
        qat_pretrain = replace(qat_pretrain, epochs=config.qat_pretrain_epochs)
        extras["qat_pretrain"] = pretrain(model.backbone, model.fcr,
                                          calibration_data, num_classes,
                                          config=qat_pretrain).history
    if config.qat_metalearn_iterations > 0:
        qat_metalearn = metalearn_config or MetalearnConfig(
            iterations=config.qat_metalearn_iterations, learning_rate=0.005,
            seed=config.seed + 22)
        qat_metalearn = replace(qat_metalearn,
                                iterations=config.qat_metalearn_iterations)
        extras["qat_metalearn"] = metalearn(model.backbone, model.fcr,
                                            calibration_data,
                                            config=qat_metalearn).history
    if config.qat_pretrain_epochs > 0 or config.qat_metalearn_iterations > 0:
        quantize_weights(model.backbone, bits=config.weight_bits,
                         per_channel=config.per_channel_weights)
        quantize_weights(model.fcr, bits=config.weight_bits,
                         per_channel=config.per_channel_weights)

    # 4. Hand the model to the integer runtime: the FCR consumes the pooled
    #    backbone output, whose int8 grid the activation pass just froze, so
    #    its input quantizer is exact by construction.  The integer lowering
    #    only exists for 8-bit grids — at other precisions the "int8" mode
    #    would silently degrade to an all-opaque plan that cannot be served,
    #    so the mode switch (and the plan-based storage accounting) is gated
    #    on the canonical 8/8 configuration.
    int8_runtime = (config.runtime_mode == "int8"
                    and config.weight_bits == 8 and config.activation_bits == 8)
    pool_quantizer = act_pass.quantizer_for(getattr(model.backbone, "pool", None))
    if pool_quantizer is not None and pool_quantizer.quantizer is not None:
        model.fcr.input_quantizer = pool_quantizer.quantizer
    if int8_runtime or config.runtime_mode not in (None, "int8"):
        model.config.runtime_mode = config.runtime_mode

    if int8_runtime:
        # True int8 storage: one byte per weight, int32 bias + requantization
        # parameters per channel — read off the compiled integer plans rather
        # than re-estimated from the module tree.
        predictor = model.runtime_predictor()
        size_bytes = predictor.backbone_engine.plan.storage_bytes() + \
            predictor.fcr_engine.plan.storage_bytes()
    else:
        size_bytes = integer_weight_size_bytes(model.backbone, config.weight_bits) + \
            integer_weight_size_bytes(model.fcr, config.weight_bits)
    report = QuantizationReport(config=config, weights=weight_report,
                                activations=act_report,
                                model_size_bytes=size_bytes, extras=extras)
    return model, report
