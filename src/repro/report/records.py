"""Experiment records: structured measured-vs-paper results.

Benchmarks store their outputs as :class:`ExperimentRecord` objects which can
be serialized to JSON; EXPERIMENTS.md summarizes the same comparisons.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List


@dataclass
class ExperimentRecord:
    """One reproduced artefact (a table or a figure)."""

    experiment_id: str            # e.g. "table2", "fig3"
    description: str
    workload: str                 # dataset / protocol / parameters
    measured: Dict[str, object] = field(default_factory=dict)
    paper: Dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, default=_json_default)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentRecord":
        return cls(**json.loads(text))


def _json_default(value):
    """JSON encoder fallback for NumPy scalars and arrays."""
    import numpy as np
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


def save_records(records: List[ExperimentRecord], path) -> Path:
    """Write a list of records to a JSON file (one object per experiment)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = [json.loads(record.to_json()) for record in records]
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_records(path) -> List[ExperimentRecord]:
    payload = json.loads(Path(path).read_text())
    return [ExperimentRecord(**item) for item in payload]
