"""Micro-batched executor for compiled inference plans."""

from __future__ import annotations

import numpy as np

from ..nn.modules import Module
from .compiler import compile_module
from .kernels import BufferCache
from .plan import InferencePlan

#: Default micro-batch size; keeps the im2col working set inside the CPU
#: cache for the laptop-profile backbones while amortising per-layer
#: dispatch overhead across the whole batch.
DEFAULT_MICRO_BATCH = 64


class InferenceEngine:
    """Executes an :class:`InferencePlan` over arbitrarily large inputs.

    Incoming samples are split into micro-batches; each micro-batch flows
    through the flat op plan with a shared :class:`BufferCache`, so
    steady-state execution reuses the same im2col scratch buffers for every
    batch of the same shape.
    """

    def __init__(self, plan: InferencePlan,
                 micro_batch: int = DEFAULT_MICRO_BATCH):
        if micro_batch < 1:
            raise ValueError("micro_batch must be >= 1")
        self.plan = plan
        self.micro_batch = micro_batch
        self.cache = BufferCache()
        self.batches_run = 0
        self.samples_run = 0

    @classmethod
    def for_module(cls, module: Module,
                   micro_batch: int = DEFAULT_MICRO_BATCH) -> "InferenceEngine":
        """Compile ``module`` and wrap the plan in an engine."""
        return cls(compile_module(module), micro_batch=micro_batch)

    # ------------------------------------------------------------------
    def run(self, images: np.ndarray) -> np.ndarray:
        """Run the plan over ``images``, micro-batching as needed."""
        images = np.asarray(images, dtype=np.float32)
        squeeze = images.ndim == 3
        if squeeze:                       # a single sample without batch dim
            images = images[None]
        total = images.shape[0]
        if total == 0:
            raise ValueError("cannot run the engine on an empty batch")
        outputs = []
        for start in range(0, total, self.micro_batch):
            chunk = np.ascontiguousarray(images[start:start + self.micro_batch])
            outputs.append(self.plan.execute(chunk, self.cache))
            self.batches_run += 1
        self.samples_run += total
        out = outputs[0] if len(outputs) == 1 else np.concatenate(outputs, axis=0)
        return out[0] if squeeze else out

    __call__ = run

    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        self.cache.clear()

    @property
    def cache_bytes(self) -> int:
        return self.cache.nbytes

    def describe(self) -> str:
        return self.plan.describe()
