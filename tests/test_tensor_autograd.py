"""Tests of the Tensor class and the autograd engine."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor, concatenate, no_grad, ones, randn, stack, zeros


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float32 or np.issubdtype(t.dtype, np.floating)

    def test_integer_input_is_cast_to_float(self):
        t = Tensor(np.arange(6).reshape(2, 3))
        assert np.issubdtype(t.dtype, np.floating)

    def test_float64_preserved(self):
        t = Tensor(np.zeros((2, 2), dtype=np.float64))
        assert t.dtype == np.float64

    def test_repr_mentions_shape(self):
        assert "shape=(2, 3)" in repr(Tensor(np.zeros((2, 3))))

    def test_detach_shares_data_but_no_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_item_scalar(self):
        assert Tensor(np.array(2.5)).item() == pytest.approx(2.5)

    def test_len_and_size(self):
        t = zeros((4, 5))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_factory_functions(self):
        assert zeros((2, 2)).data.sum() == 0
        assert ones((2, 2)).data.sum() == 4
        r = randn(3, 4, rng=np.random.default_rng(0))
        assert r.shape == (3, 4)

    def test_astype_returns_new_dtype(self):
        t = ones((2,))
        assert t.astype(np.float64).dtype == np.float64


class TestArithmeticForward:
    def test_add_sub_mul_div(self):
        a = Tensor([1.0, 2.0, 3.0])
        b = Tensor([4.0, 5.0, 6.0])
        np.testing.assert_allclose((a + b).data, [5, 7, 9])
        np.testing.assert_allclose((a - b).data, [-3, -3, -3])
        np.testing.assert_allclose((a * b).data, [4, 10, 18])
        np.testing.assert_allclose((a / b).data, [0.25, 0.4, 0.5])

    def test_scalar_operands(self):
        a = Tensor([1.0, 2.0])
        np.testing.assert_allclose((a + 1).data, [2, 3])
        np.testing.assert_allclose((1 + a).data, [2, 3])
        np.testing.assert_allclose((2 * a).data, [2, 4])
        np.testing.assert_allclose((a - 1).data, [0, 1])
        np.testing.assert_allclose((3 - a).data, [2, 1])
        np.testing.assert_allclose((a / 2).data, [0.5, 1.0])
        np.testing.assert_allclose((2 / a).data, [2.0, 1.0])

    def test_neg_pow(self):
        a = Tensor([1.0, -2.0])
        np.testing.assert_allclose((-a).data, [-1, 2])
        np.testing.assert_allclose((a ** 2).data, [1, 4])

    def test_matmul(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_reductions(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert (a.sum()).data == pytest.approx(15.0)
        np.testing.assert_allclose(a.sum(axis=0).data, [3, 5, 7])
        np.testing.assert_allclose(a.mean(axis=1).data, [1, 4])
        np.testing.assert_allclose(a.max(axis=1).data, [2, 5])

    def test_reshape_transpose_flatten(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert a.reshape(3, 2).shape == (3, 2)
        assert a.T.shape == (3, 2)
        assert a.reshape((6,)).shape == (6,)
        assert Tensor(np.zeros((2, 3, 4))).flatten(1).shape == (2, 12)

    def test_elementwise_math(self):
        a = Tensor([0.25, 1.0])
        np.testing.assert_allclose(a.sqrt().data, [0.5, 1.0])
        np.testing.assert_allclose(a.exp().data, np.exp(a.data), rtol=1e-6)
        np.testing.assert_allclose(a.log().data, np.log(a.data), rtol=1e-6)
        np.testing.assert_allclose(Tensor([-1.0, 2.0]).abs().data, [1, 2])
        np.testing.assert_allclose(Tensor([-1.0, 7.0]).clip(0, 6).data, [0, 6])
        np.testing.assert_allclose(Tensor([-1.0, 2.0]).relu().data, [0, 2])

    def test_getitem(self):
        a = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        np.testing.assert_allclose(a[1].data, [4, 5, 6, 7])
        np.testing.assert_allclose(a[:, 2].data, [2, 6, 10])

    def test_stack_and_concatenate(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        assert stack([a, b]).shape == (2, 2)
        assert concatenate([a, b]).shape == (4,)

    def test_comparisons_return_arrays(self):
        a = Tensor([1.0, 2.0, 3.0])
        assert (a > 1.5).tolist() == [False, True, True]
        assert (a <= 2.0).tolist() == [True, True, False]


class TestAutograd:
    def test_simple_backward(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [4.0, 6.0])

    def test_chain_rule(self):
        x = Tensor([1.0], requires_grad=True)
        y = ((x * 3.0 + 1.0) ** 2).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [2 * (3 * 1 + 1) * 3])

    def test_broadcast_backward(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        ((x + b) * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((3,), 4.0))

    def test_grad_accumulates_over_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_reused_node_accumulates_once_per_path(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * 2.0
        z = (y + y).sum()
        z.backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_backward_requires_scalar_or_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()
        y.backward(np.ones((2, 2)))
        np.testing.assert_allclose(x.grad, np.full((2, 2), 2.0))

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._ctx is None

    def test_no_grad_restores_state(self):
        assert nn.is_grad_enabled()
        with no_grad():
            assert not nn.is_grad_enabled()
            with nn.enable_grad():
                assert nn.is_grad_enabled()
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_getitem_backward_scatter(self):
        x = Tensor(np.arange(6, dtype=np.float64).reshape(2, 3), requires_grad=True)
        (x[0] * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [[2, 2, 2], [0, 0, 0]])

    def test_max_backward_splits_ties(self):
        x = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])

    def test_matmul_backward_shapes(self):
        a = Tensor(np.random.default_rng(0).standard_normal((3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).standard_normal((4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4, 5)

    def test_transpose_backward(self):
        a = Tensor(np.random.default_rng(0).standard_normal((2, 3, 4)),
                   requires_grad=True)
        a.transpose(2, 0, 1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3, 4)))
