"""O-FSCIL core: explicit memory, model, training stages and evaluation."""

from .ablation import (
    TABLE3_ROWS,
    AblationFlags,
    AblationRow,
    format_ablation_table,
    pipeline_config_for,
    run_ablation,
)
from .baselines import (
    PAPER_TABLE2_REFERENCE,
    ncfscil_lite_baseline,
    pretrain_only_baseline,
    raw_pixel_ncm,
)
from .evaluate import (
    FSCILResult,
    evaluate_fscil,
    evaluate_with_predictor,
    format_session_table,
)
from .explicit_memory import ExplicitMemory, bipolarize, quantize_prototype
from .finetune import FinetuneConfig, FinetuneResult, finetune_fcr
from .metalearn import MetalearnConfig, MetalearnResult, metalearn
from .ofscil import OFSCIL, OFSCILConfig
from .pipeline import OFSCILPipeline, PipelineConfig, PipelineResult
from .pretrain import PretrainConfig, PretrainResult, evaluate_classifier, pretrain

__all__ = [
    "ExplicitMemory",
    "quantize_prototype",
    "bipolarize",
    "OFSCIL",
    "OFSCILConfig",
    "PretrainConfig",
    "PretrainResult",
    "pretrain",
    "evaluate_classifier",
    "MetalearnConfig",
    "MetalearnResult",
    "metalearn",
    "FinetuneConfig",
    "FinetuneResult",
    "finetune_fcr",
    "FSCILResult",
    "evaluate_fscil",
    "evaluate_with_predictor",
    "format_session_table",
    "OFSCILPipeline",
    "PipelineConfig",
    "PipelineResult",
    "AblationFlags",
    "AblationRow",
    "TABLE3_ROWS",
    "run_ablation",
    "pipeline_config_for",
    "format_ablation_table",
    "raw_pixel_ncm",
    "pretrain_only_baseline",
    "ncfscil_lite_baseline",
    "PAPER_TABLE2_REFERENCE",
]
