"""Zero-dependency metrics registry: counters, gauges, fixed-bucket histograms.

Instruments aggregate **lock-free per thread**: every thread that touches an
instrument gets its own cell (a tiny mutable list or dict created once, under
the instrument's lock), and all hot-path updates are plain ``+=`` on that
cell — atomic under the GIL, no lock acquisition, no contention between the
batcher thread, the collector threads and the engine's chunk pool.  Cells are
merged only on *scrape* (:meth:`MetricsRegistry.scrape` or an instrument's
``value`` / ``counts``), which is the cold path.

The registry replaces the bespoke stat fields that used to be scattered
through ``repro.serve`` (hand-rolled latency windows, ad-hoc worker counters)
with named instruments — ``serve.requests_total``, ``serve.batch_latency_s``,
``engine.backbone.arena_peak_bytes``, … — one scrape away from any exporter.

Histogram quantiles are the *single* percentile implementation of the
codebase (:func:`quantile_from_counts`): nearest-rank position with linear
interpolation inside the bucket, pinned by known-values tests, so no two
surfaces can disagree about what "p99" means.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Default bucket upper bounds (seconds) for latency histograms: roughly
#: geometric from 0.5 ms to 30 s; observations beyond the last bound land in
#: the overflow bucket and quantiles clamp to the last bound.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


def quantile_from_counts(bounds: Sequence[float], counts: Sequence[int],
                         fraction: float) -> float:
    """Quantile of a fixed-bucket histogram (the shared implementation).

    ``bounds`` are the bucket upper bounds; ``counts`` has one extra entry,
    the overflow bucket ``(bounds[-1], inf)``.  The quantile is located at
    rank ``fraction * total`` in the cumulative distribution and linearly
    interpolated between the bucket's lower and upper bound; the overflow
    bucket (and an empty histogram) clamp to ``bounds[-1]`` (resp. 0.0) —
    there is nothing to interpolate against beyond the last bound.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    fraction = min(1.0, max(0.0, fraction))
    target = fraction * total
    cumulative = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= target:
            if index >= len(bounds):          # overflow bucket: clamp
                return float(bounds[-1])
            lower = float(bounds[index - 1]) if index > 0 else 0.0
            upper = float(bounds[index])
            inside = max(0.0, target - cumulative)
            return lower + (upper - lower) * (inside / count)
        cumulative += count
    return float(bounds[-1])


class Counter:
    """Monotonic counter with per-thread cells merged on read."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._cells: List[List[float]] = []

    def _cell(self) -> List[float]:
        cell = getattr(self._tls, "cell", None)
        if cell is None:
            cell = [0.0]
            self._tls.cell = cell
            with self._lock:
                self._cells.append(cell)
        return cell

    def inc(self, amount: float = 1.0) -> None:
        self._cell()[0] += amount

    @property
    def value(self) -> float:
        with self._lock:
            return sum(cell[0] for cell in self._cells)

    def scrape(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written-wins value; optionally backed by a callback.

    A callback gauge (``fn``) reads its value lazily at scrape time, so
    instruments like ``engine.arena_peak_bytes`` cost *nothing* on the hot
    path — the engine just registers a property reference once.
    ``set_max`` keeps a running maximum (e.g. peak queue depth).
    """

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._fn = fn
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self._value = float(value)

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def scrape(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with per-thread cells merged on scrape.

    Each thread-local cell is ``[count_0, ..., count_n, overflow, sum,
    count]`` — every ``observe`` is a bisect plus three in-place adds, no
    lock.  Quantiles go through :func:`quantile_from_counts`.
    """

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_TIME_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted, "
                             "non-empty sequence")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._cells: List[List[float]] = []

    def _cell(self) -> List[float]:
        cell = getattr(self._tls, "cell", None)
        if cell is None:
            cell = [0.0] * (len(self.bounds) + 3)   # buckets+overflow+sum+cnt
            self._tls.cell = cell
            with self._lock:
                self._cells.append(cell)
        return cell

    def observe(self, value: float) -> None:
        cell = self._cell()
        cell[bisect_left(self.bounds, value)] += 1
        cell[-2] += value
        cell[-1] += 1

    # -- merged views (cold path) --------------------------------------
    def counts(self) -> List[int]:
        """Merged per-bucket counts (last entry is the overflow bucket)."""
        with self._lock:
            cells = list(self._cells)
        merged = [0.0] * (len(self.bounds) + 1)
        for cell in cells:
            for index in range(len(merged)):
                merged[index] += cell[index]
        return [int(count) for count in merged]

    @property
    def count(self) -> int:
        with self._lock:
            return int(sum(cell[-1] for cell in self._cells))

    @property
    def sum(self) -> float:
        with self._lock:
            return float(sum(cell[-2] for cell in self._cells))

    def quantile(self, fraction: float) -> float:
        return quantile_from_counts(self.bounds, self.counts(), fraction)

    def scrape(self) -> dict:
        counts = self.counts()
        return {"type": "histogram", "count": sum(counts), "sum": self.sum,
                "bounds": list(self.bounds), "counts": counts}


class IntHistogram:
    """Exact histogram over small integer values (e.g. coalesced batch sizes).

    Where :class:`Histogram` buckets a continuous quantity, this counts each
    distinct integer exactly — the shape of the dynamic batcher's batch-size
    distribution is only meaningful at integer resolution.  Per-thread dict
    cells, merged on scrape.
    """

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._cells: List[Dict[int, int]] = []

    def _cell(self) -> Dict[int, int]:
        cell = getattr(self._tls, "cell", None)
        if cell is None:
            cell = {}
            self._tls.cell = cell
            with self._lock:
                self._cells.append(cell)
        return cell

    def observe(self, value: int) -> None:
        cell = self._cell()
        cell[value] = cell.get(value, 0) + 1

    def as_dict(self) -> Dict[int, int]:
        with self._lock:
            cells = list(self._cells)
        merged: Dict[int, int] = {}
        for cell in cells:
            for value, count in cell.items():
                merged[value] = merged.get(value, 0) + count
        return merged

    def scrape(self) -> dict:
        return {"type": "int_histogram", "values": self.as_dict()}


class MetricsRegistry:
    """Named-instrument registry: get-or-create, scrape-all.

    One registry per scope that should aggregate independently (one per
    :class:`~repro.serve.server.Server`, one per worker replica, one per
    profiled predictor) — instruments are *not* global, so two servers in
    one process never bleed counters into each other.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"instrument {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}")
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._get_or_create(name, Gauge, lambda: Gauge(name, fn=fn))
        if fn is not None:
            gauge._fn = fn                   # rebind callback (idempotent)
        return gauge

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_TIME_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(name, Histogram,
                                   lambda: Histogram(name, bounds))

    def int_histogram(self, name: str) -> IntHistogram:
        return self._get_or_create(name, IntHistogram,
                                   lambda: IntHistogram(name))

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def scrape(self) -> Dict[str, dict]:
        """Merged snapshot of every instrument, keyed by name."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: instrument.scrape()
                for name, instrument in sorted(instruments.items())}
