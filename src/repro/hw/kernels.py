"""Cycle model of the int8 kernels executed on the GAP9 cluster.

Each :class:`~repro.models.graph.LayerSpec` is mapped to a cycle count for a
given number of active cores.  The model captures the effects that dominate
the paper's measurements:

* convolution and linear layers run at a sustained per-core MAC throughput
  (SIMD int8 dot products),
* work is parallelized over output rows, so layers whose output height is
  smaller than the core count leave cores idle (this is why the heavily
  strided MobileNetV2 "x1" variant achieves far fewer MACs/cycle than the
  "x4" variant — Fig. 2),
* every layer pays a fixed launch/synchronization overhead that grows mildly
  with the core count,
* DMA transfers (weights from L2/L3, activations through L1) overlap with
  compute thanks to double buffering; a layer therefore costs
  ``max(compute, dma) + overhead``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..models.graph import LayerSpec
from .memory import MemoryPlan, TensorPlacement, layer_dma_cycles
from .soc import GAP9Config


@dataclass
class LayerCost:
    """Cycle breakdown of one layer at a given core count."""

    name: str
    op_type: str
    macs: int
    compute_cycles: float
    dma_cycles: float
    overhead_cycles: float
    cores: int

    @property
    def total_cycles(self) -> float:
        return max(self.compute_cycles, self.dma_cycles) + self.overhead_cycles

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.total_cycles if self.total_cycles > 0 else 0.0


def row_parallel_utilization(output_rows: int, cores: int) -> float:
    """Fraction of core-cycles doing useful work when splitting rows."""
    if output_rows <= 0 or cores <= 0:
        return 1.0
    rows_per_core = -(-output_rows // cores)          # ceil division
    return output_rows / (rows_per_core * cores)


def per_core_throughput(op_type: str, config: GAP9Config) -> float:
    """Sustained MAC/cycle/core of the kernel implementing ``op_type``."""
    compute = config.compute
    if op_type == "dwconv":
        return compute.dwconv_macs_per_cycle
    if op_type == "linear":
        return compute.linear_macs_per_cycle
    return compute.conv_macs_per_cycle


def elementwise_cycles(layer: LayerSpec, cores: int) -> float:
    """Cycles of non-MAC layers (activations, adds, pooling, BN folding)."""
    elements = layer.output_elements
    # 1 element per core per cycle for simple vector ops; BN is folded into
    # the preceding convolution at deployment, costing only its re-quant pass.
    throughput = max(cores, 1) * 2.0
    return elements / throughput


def layer_cycles(layer: LayerSpec, cores: int, config: GAP9Config,
                 placement: Optional[TensorPlacement] = None,
                 weight_bits: int = 8, activation_bits: int = 8) -> LayerCost:
    """Cycle cost of one layer on ``cores`` active worker cores."""
    compute_config = config.compute
    cores = max(1, min(cores, config.worker_cores))

    if layer.op_type in ("conv", "dwconv", "linear"):
        throughput = per_core_throughput(layer.op_type, config)
        if layer.op_type == "linear":
            utilization = 1.0 if layer.out_channels >= cores else \
                layer.out_channels / cores
        else:
            utilization = row_parallel_utilization(layer.out_hw[0], cores)
        effective = throughput * cores * max(utilization, 1e-6)
        compute = layer.macs / effective
    elif layer.op_type in ("bn", "act", "add", "pool"):
        compute = elementwise_cycles(layer, cores)
    else:
        compute = elementwise_cycles(layer, cores)

    if placement is not None:
        dma = layer_dma_cycles(layer, placement, config, weight_bits,
                               activation_bits)["total"]
    else:
        dma = 0.0

    overhead = 0.0
    if layer.op_type in ("conv", "dwconv", "linear"):
        overhead = compute_config.layer_overhead_cycles + \
            compute_config.per_core_overhead_cycles * cores

    return LayerCost(name=layer.name, op_type=layer.op_type, macs=layer.macs,
                     compute_cycles=compute, dma_cycles=dma,
                     overhead_cycles=overhead, cores=cores)


@dataclass
class GraphCost:
    """Aggregate cycle cost of an inference graph."""

    layers: List[LayerCost] = field(default_factory=list)
    cores: int = 8

    @property
    def total_cycles(self) -> float:
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def macs_per_cycle(self) -> float:
        total = self.total_cycles
        return self.total_macs / total if total else 0.0

    @property
    def compute_cycles(self) -> float:
        return sum(layer.compute_cycles for layer in self.layers)

    @property
    def dma_cycles(self) -> float:
        return sum(layer.dma_cycles for layer in self.layers)

    def by_type(self) -> Dict[str, float]:
        summary: Dict[str, float] = {}
        for layer in self.layers:
            summary[layer.op_type] = summary.get(layer.op_type, 0.0) + layer.total_cycles
        return summary


def graph_cycles(layers: List[LayerSpec], cores: int, config: GAP9Config,
                 memory_plan: Optional[MemoryPlan] = None,
                 weight_bits: int = 8, activation_bits: int = 8) -> GraphCost:
    """Cycle cost of a whole layer graph at the given core count."""
    cost = GraphCost(cores=cores)
    for layer in layers:
        placement = memory_plan.placement(layer.name) if memory_plan is not None else None
        cost.layers.append(layer_cycles(layer, cores, config, placement,
                                        weight_bits, activation_bits))
    return cost
