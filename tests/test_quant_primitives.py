"""Quantization primitives: fake quant, TQT thresholds, observers."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.quant import (
    MinMaxObserver,
    MovingAverageObserver,
    PercentileObserver,
    TQTQuantizer,
    fake_quantize,
    integer_bounds,
    make_observer,
    power_of_two_candidates,
    quantization_error,
    quantize,
    quantize_dequantize,
    scale_from_threshold,
    select_threshold)


class TestFakeQuantPrimitives:
    def test_integer_bounds(self):
        assert integer_bounds(8) == (-127, 127)
        assert integer_bounds(4) == (-7, 7)
        assert integer_bounds(8, symmetric=False) == (-128, 127)

    def test_bounds_require_two_bits(self):
        with pytest.raises(ValueError):
            integer_bounds(1)

    def test_scale_from_threshold(self):
        assert scale_from_threshold(1.27, 8) == pytest.approx(0.01)

    def test_quantize_clips_to_grid(self):
        values = np.array([-10.0, 0.004, 10.0])
        codes = quantize(values, scale=0.01, bits=8)
        np.testing.assert_allclose(codes, [-127, 0, 127])

    def test_round_trip_error_bounded_by_half_step(self, rng):
        values = rng.uniform(-1, 1, 1000).astype(np.float32)
        reconstructed = quantize_dequantize(values, threshold=1.0, bits=8)
        step = scale_from_threshold(1.0, 8)
        assert np.max(np.abs(values - reconstructed)) <= step / 2 + 1e-7

    def test_error_decreases_with_more_bits(self, rng):
        values = rng.standard_normal(2000).astype(np.float32)
        errors = [quantization_error(values, threshold=4.0, bits=bits)
                  for bits in (2, 4, 6, 8)]
        assert all(a > b for a, b in zip(errors, errors[1:]))

    def test_fake_quant_ste_gradient_mask(self, rng):
        values = Tensor(np.array([-3.0, -0.5, 0.2, 0.9, 5.0]), requires_grad=True)
        out = fake_quantize(values, threshold=1.0, bits=8)
        out.sum().backward()
        np.testing.assert_allclose(values.grad, [0.0, 1.0, 1.0, 1.0, 0.0])

    def test_fake_quant_output_on_grid(self, rng):
        values = Tensor(rng.uniform(-1, 1, 100).astype(np.float32))
        out = fake_quantize(values, threshold=1.0, bits=4)
        scale = scale_from_threshold(1.0, 4)
        codes = out.data / scale
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-5)


class TestThresholdSelection:
    def test_power_of_two_candidates_bracket_max(self):
        candidates = power_of_two_candidates(3.0)
        assert any(c >= 3.0 for c in candidates)
        assert any(c < 3.0 for c in candidates)
        assert all(np.isclose(np.log2(c) % 1, 0) for c in candidates)

    def test_maxabs_method_power_of_two(self, rng):
        values = rng.uniform(-3, 3, 100)
        threshold = select_threshold(values, method="maxabs")
        assert threshold >= np.abs(values).max()
        assert np.isclose(np.log2(threshold) % 1, 0)

    def test_mse_method_at_least_as_good_as_maxabs(self, rng):
        values = rng.standard_normal(5000).astype(np.float32)
        mse_threshold = select_threshold(values, bits=8, method="mse")
        maxabs_threshold = select_threshold(values, bits=8, method="maxabs")
        assert quantization_error(values, mse_threshold, 8) <= \
            quantization_error(values, maxabs_threshold, 8) + 1e-9

    def test_unknown_method_raises(self, rng):
        with pytest.raises(ValueError):
            select_threshold(rng.standard_normal(10), method="magic")

    def test_tqt_quantizer_lifecycle(self, rng):
        quantizer = TQTQuantizer(bits=8)
        assert not quantizer.calibrated
        with pytest.raises(RuntimeError):
            quantizer(np.ones(4))
        quantizer.calibrate(rng.standard_normal(1000))
        assert quantizer.calibrated
        out = quantizer(rng.standard_normal(100))
        assert out.dtype == np.float32
        codes = quantizer.to_integers(rng.standard_normal(100))
        assert np.all(np.abs(codes) <= 127)

    def test_tqt_power_of_two_threshold(self, rng):
        quantizer = TQTQuantizer(bits=8).calibrate(rng.standard_normal(500))
        assert np.isclose(np.log2(quantizer.threshold) % 1, 0)


class TestObservers:
    def test_minmax_tracks_extremes(self):
        observer = MinMaxObserver()
        observer.observe(np.array([1.0, 2.0]))
        observer.observe(np.array([-5.0, 0.5]))
        value_range = observer.range()
        assert value_range.min_value == -5.0 and value_range.max_value == 2.0
        assert value_range.max_abs == 5.0

    def test_uncalibrated_observer_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().range()

    def test_moving_average_smooths(self):
        observer = MovingAverageObserver(momentum=0.5)
        observer.observe(np.array([0.0, 4.0]))
        observer.observe(np.array([0.0, 0.0]))
        assert 0.0 < observer.range().max_value < 4.0

    def test_percentile_ignores_outliers(self, rng):
        observer = PercentileObserver(percentile=95)
        data = rng.standard_normal(4000).astype(np.float32)
        data[0] = 1000.0
        observer.observe(data)
        assert observer.range().max_abs < 100.0

    def test_make_observer_factory(self):
        assert isinstance(make_observer("minmax"), MinMaxObserver)
        assert isinstance(make_observer("moving_average"), MovingAverageObserver)
        assert isinstance(make_observer("percentile"), PercentileObserver)
        with pytest.raises(ValueError):
            make_observer("unknown")
