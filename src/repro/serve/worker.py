"""Worker process main loop for the sharded serving engine.

Each worker owns a full model replica restored from a
:class:`~repro.serve.snapshot.ModelSnapshot` — backbone and FCR engines with
their own :class:`~repro.runtime.kernels.BufferCache` — plus the current
:class:`~repro.serve.snapshot.PrototypeState`.  It pops work items from its
*own* request queue, executes them, and pushes
``(ticket, worker_id, ok, payload)`` tuples onto its *own* result queue —
no channel is shared with any sibling shard, so this worker dying can never
wedge another shard's traffic.

Tensor payloads arrive and leave through the worker's pair of
:class:`~repro.serve.transport.SlotRing` shared-memory rings when the
coordinator enabled them: request batches are consumed as zero-copy views
(the slot is freed once the work item finished), results are written into
the result ring with the control tuple carrying only the slot descriptor.
Payloads that never went through a ring — control frames, oversized
tensors, or a full ring — pass through :func:`unpack_payload` untouched,
which also keeps this loop runnable over plain in-process queues in tests.

Work item kinds:

==================  ========================================  =================
kind                payload                                   result
==================  ========================================  =================
``ping``            ``None``                                  ``None``
``backbone``        images ``(N, C, H, W)``                   ``theta_a``
``embed``           images                                    ``theta_p``
``predict``         ``(images, class_ids | None)``            labels ``int64``
``similarities``    ``(images, class_ids | None)``            ``(sims, ids)``
``set_prototypes``  :class:`PrototypeState`                   acked ``version``
``stats``           ``None``                                  stats ``dict``
``chaos``           settings ``dict``                         applied ``dict``
``shutdown``        ``None``                                  ``None`` (stops)
==================  ========================================  =================

The ``chaos`` item is the scenario harness's worker-side fault hook (see
:mod:`repro.scenarios.chaos`): ``{"slow_s": 0.05}`` makes every subsequent
work item sleep before executing (a slow-but-alive shard), and
``{"exhaust_result_ring": True}`` forces the result ring's ``try_write`` to
report a full ring so replies take the pickle fallback.  Settings merge, an
empty dict resets nothing, explicit keys overwrite — chaos is injected and
healed through the exact same FIFO path real work takes.

Exceptions never kill the loop: they are captured per work item and re-raised
at the caller as :class:`~repro.serve.sharded.RemoteWorkerError`.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Sequence, Tuple

import numpy as np

from ..obs import trace as obs_trace
from ..obs.metrics import MetricsRegistry
from ..runtime.engine import InferenceEngine
from ..runtime.kernels import (
    cosine_similarities,
    int8_cosine_similarities,
    quantize_unit_rows,
)
from .snapshot import ModelSnapshot, PrototypeState
from .transport import SlotRing, pack_payload, payload_trace, unpack_payload

#: Heartbeat stamp period.  The coordinator's hang detector compares
#: stamps across watchdog ticks, so this only needs to be comfortably
#: faster than any sane ``hang_silence_s``, not precise.
_HEARTBEAT_PERIOD_S = 0.05


class _WorkerState:
    """Model replica plus serving counters inside one worker process."""

    def __init__(self, worker_id: int, snapshot: ModelSnapshot):
        self.worker_id = worker_id
        #: Per-replica instrument registry; scraped into the ``stats`` work
        #: item, so every worker's engine gauges reach the coordinator.
        self.registry = MetricsRegistry()
        self.backbone = InferenceEngine(
            snapshot.backbone.restore(),
            micro_batch=snapshot.micro_batch,
            memory_plan=snapshot.backbone.restore_memory_plan(),
            registry=self.registry, metrics_prefix="engine.backbone")
        self.fcr = InferenceEngine(
            snapshot.fcr.restore(),
            micro_batch=max(snapshot.micro_batch, 512),
            memory_plan=snapshot.fcr.restore_memory_plan(),
            registry=self.registry, metrics_prefix="engine.fcr")
        self.prototypes: PrototypeState = snapshot.prototypes
        self.relu_sharpening = snapshot.relu_sharpening
        self.mode = getattr(snapshot, "mode", "float32")
        self._protos_q = None          # int8 codes, rebuilt per broadcast
        self._requests = self.registry.counter("worker.requests_total")
        #: Active fault-injection settings (the ``chaos`` work item merges
        #: into this); empty in production — one dict lookup per item.
        self.chaos: dict = {}

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the replica engines' chunk thread pools (idempotent).

        Restored engines rebuild their pools lazily on the first
        multi-chunk request; without an explicit close those
        ``ThreadPoolExecutor`` threads would only die with the interpreter,
        which a worker that is terminated (rather than exiting its loop)
        never reaches cleanly.
        """
        self.backbone.close()
        self.fcr.close()

    def embed(self, images: np.ndarray) -> np.ndarray:
        return self.fcr.run(self.backbone.run(images))

    def similarities(self, images: np.ndarray,
                     class_ids: Optional[Sequence[int]]
                     ) -> Tuple[np.ndarray, np.ndarray]:
        matrix, ids = self.prototypes.select(class_ids)
        if ids.size == 0:
            raise ValueError("worker has an empty prototype state; broadcast "
                             "prototypes (Server.sync_prototypes) first")
        features = self.embed(images)
        if self.mode == "int8":
            # Same arithmetic as the coordinator's int8 predictor: quantized
            # unit rows, exact integer GEMM, float rescale — so worker and
            # coordinator answers agree bit-for-bit.  The full-matrix codes
            # are quantized once per prototype broadcast (quantization is
            # elementwise, so a restricted selection quantizes its own rows
            # to the identical codes).
            if class_ids is None:
                if self._protos_q is None:
                    self._protos_q = quantize_unit_rows(
                        self.prototypes.matrix_normed)
                codes = self._protos_q
            else:
                codes = quantize_unit_rows(matrix)
            sims = int8_cosine_similarities(features, codes)
        else:
            sims = cosine_similarities(features, matrix)
        return sims, ids

    @property
    def requests(self) -> int:
        return int(self._requests.value)

    def handle(self, kind: str, payload):
        self._requests.inc()
        if kind == "chaos":
            self.chaos.update(dict(payload or {}))
            return dict(self.chaos)
        slow_s = self.chaos.get("slow_s")
        if slow_s:
            time.sleep(float(slow_s))
        if kind == "ping":
            return None
        if kind == "backbone":
            return self.backbone.run(payload)
        if kind == "embed":
            return self.embed(payload)
        if kind == "predict":
            images, class_ids = payload
            sims, ids = self.similarities(images, class_ids)
            return ids[np.argmax(sims, axis=1)]
        if kind == "similarities":
            images, class_ids = payload
            sims, ids = self.similarities(images, class_ids)
            if self.relu_sharpening:
                sims = np.maximum(sims, 0.0)
            return sims, ids
        if kind == "set_prototypes":
            self.prototypes = payload
            self._protos_q = None
            return self.prototypes.version
        if kind == "stats":
            return {
                "worker_id": self.worker_id,
                "requests": self.requests,
                "samples_run": self.backbone.samples_run,
                "batches_run": self.backbone.batches_run,
                "prototype_version": self.prototypes.version,
                "prototype_classes": self.prototypes.num_classes,
                "plan_steps": len(self.backbone.plan),
                "cache_bytes": self.backbone.cache_bytes
                + self.fcr.cache_bytes,
                "arena_slots": self.backbone.arena_slots
                + self.fcr.arena_slots,
                "arena_peak_bytes": self.backbone.arena_peak_bytes
                + self.fcr.arena_peak_bytes,
                "chaos": dict(self.chaos),
                "metrics": self.registry.scrape(),
            }
        raise ValueError(f"unknown work item kind {kind!r}")


def worker_main(worker_id: int, snapshot: ModelSnapshot, request_queue,
                result_queue, request_ring_spec=None,
                result_ring_spec=None, heartbeat=None) -> None:
    """Entry point of a worker process (must stay importable for spawn).

    ``request_ring_spec`` / ``result_ring_spec`` are
    :meth:`~repro.serve.transport.SlotRing.spec` tuples of the
    coordinator-owned shared-memory rings; ``None`` (the default, and what
    the in-process tests pass) runs the loop on pure queue transport.

    ``heartbeat`` is an optional shared unsigned counter this process stamps
    from a dedicated daemon thread — the coordinator's hang detector reads
    it to tell a frozen process (SIGSTOP, swap death) from a busy one.  The
    thread starts *before* the replica restore below, so the stamp proves
    "this process is scheduled and executing", the earliest thing worth
    proving; a separate startup grace covers the restore window before the
    first stamp.  This worker is the value's only writer.
    """
    if heartbeat is not None:
        def _beat() -> None:
            while True:
                heartbeat.value += 1
                time.sleep(_HEARTBEAT_PERIOD_S)
        threading.Thread(target=_beat, daemon=True,
                         name=f"repro-serve-heartbeat-{worker_id}").start()
    request_ring = SlotRing.attach(request_ring_spec) \
        if request_ring_spec is not None else None
    result_ring = SlotRing.attach(result_ring_spec) \
        if result_ring_spec is not None else None
    state = _WorkerState(worker_id, snapshot)
    # Spans finished in this process buffer in memory and ship back to the
    # coordinator attached to the result control frame — the worker never
    # writes trace files of its own, so one JSONL export stream exists.
    span_buffer = obs_trace.InMemorySpanExporter()
    tracer = obs_trace.Tracer(sample_rate=1.0, exporter=span_buffer,
                              process=f"worker-{worker_id}")
    try:
        while True:
            kind, ticket, packed = request_queue.get()
            if kind == "shutdown":
                # Tear the replica down before acking: once the coordinator
                # sees the ack, no engine thread pool of this worker is left
                # running.
                state.close()
                result_queue.put((ticket, worker_id, True,
                                  pack_payload(None, None)))
                break
            # An incoming trace context means the coordinator sampled this
            # request: its execution here becomes a ``worker.execute`` span
            # (ambient, so the engines nest ``engine.run`` under it).
            trace_ctx = payload_trace(packed)
            span = token = None
            if trace_ctx is not None:
                span = tracer.start_span("worker.execute", ctx=trace_ctx,
                                         attrs={"kind": kind,
                                                "worker": worker_id})
                token = obs_trace.activate(tracer, span)
            payload, held_slots = unpack_payload(request_ring, packed)
            try:
                result = state.handle(kind, payload)
                if kind == "chaos" and result_ring is not None:
                    # Ring-exhaustion chaos lives on the ring object itself
                    # so the transport layer stays oblivious to scenarios.
                    result_ring.fail_writes = bool(
                        state.chaos.get("exhaust_result_ring"))
                tracer.end_span(span)
                trace_out = {"spans": span_buffer.drain()} \
                    if span is not None else None
                # Results ride the result ring when they fit (fall back to
                # an inline pickle frame when the ring is full or the
                # tensor oversized), so the reply path is serialization-free
                # exactly like the request path.
                result_queue.put((ticket, worker_id, True,
                                  pack_payload(result_ring, result,
                                               trace=trace_out)))
            except Exception as exc:  # noqa: BLE001 - forwarded to caller
                message = f"{type(exc).__name__}: {exc}"
                tracer.end_span(span, status="error", error=message)
                trace_out = {"spans": span_buffer.drain()} \
                    if span is not None else None
                result_queue.put((ticket, worker_id, False,
                                  pack_payload(None, message,
                                               trace=trace_out)))
            finally:
                if token is not None:
                    obs_trace.deactivate(token)
                # The batch view has been fully consumed by handle(); give
                # the slot back so the coordinator can write the next batch.
                for slot in held_slots:
                    request_ring.free(slot)
    finally:
        for ring in (request_ring, result_ring):
            if ring is not None:
                ring.close()
