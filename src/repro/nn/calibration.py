"""Batch-normalization statistics recalibration.

Short training schedules (as used by the laptop-scale profiles) leave the
exponential-moving-average BatchNorm statistics far from the true dataset
statistics, creating a large train/eval discrepancy.  This utility replays
the training data in training mode (without gradients) while forcing a
cumulative moving average, so the running statistics converge to the exact
dataset statistics regardless of how short the preceding training was.
"""

from __future__ import annotations

import numpy as np

from .modules import BatchNorm1d, BatchNorm2d, Module
from .tensor import Tensor, no_grad


def batchnorm_modules(model: Module):
    """Yield every BatchNorm submodule of ``model``."""
    for module in model.modules():
        if isinstance(module, (BatchNorm1d, BatchNorm2d)):
            yield module


def recalibrate_batchnorm(model: Module, images: np.ndarray,
                          batch_size: int = 64,
                          forward=None) -> int:
    """Re-estimate BatchNorm running statistics from ``images``.

    Args:
        model: module whose BatchNorm statistics are recalibrated in place.
        images: NCHW array replayed through the model.
        batch_size: replay batch size.
        forward: optional callable ``forward(model, batch_tensor)``; defaults
            to ``model(batch_tensor)``.

    Returns:
        The number of batches replayed.
    """
    bns = list(batchnorm_modules(model))
    if not bns:
        return 0
    original_momenta = [bn.momentum for bn in bns]
    for bn in bns:
        bn.update_buffer("running_mean", np.zeros_like(bn.running_mean))
        bn.update_buffer("running_var", np.ones_like(bn.running_var))

    was_training = model.training
    model.train()
    images = np.asarray(images, dtype=np.float32)
    batches = 0
    with no_grad():
        for start in range(0, len(images), batch_size):
            batches += 1
            # Cumulative moving average: after t batches the running statistic
            # equals the mean of the first t batch statistics.
            for bn in bns:
                bn.momentum = 1.0 / batches
            batch = Tensor(images[start:start + batch_size])
            if forward is not None:
                forward(model, batch)
            else:
                model(batch)
    for bn, momentum in zip(bns, original_momenta):
        bn.momentum = momentum
    model.train(was_training)
    return batches
