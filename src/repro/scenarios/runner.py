"""Scenario harness: drive seeded workloads + chaos against a live Server.

Every scenario follows the same contract:

1. build a fresh learned model and a 2-worker :class:`Server` from the
   scenario seed (deterministic: same seed, same model bits);
2. drive a :mod:`generated workload <repro.scenarios.loadgen>` and/or a
   scripted fault sequence (:mod:`repro.scenarios.chaos`) against it;
3. assert **degraded-but-correct** behaviour: every answered request is
   *bit-identical* to the single-process reference predictor, every
   unanswered request fails with a *typed* error
   (:class:`~repro.serve.sharded.RemoteWorkerError` /
   :class:`~repro.serve.sharded.WorkerDiedError` /
   :class:`~repro.serve.server.ServerOverloaded`) — never a hang, never
   silently wrong bits — and the stats/trace surfaces stay coherent;
4. record the outcome into ``BENCH_scenarios.json`` (a
   ``{"latest", "history"}`` trend per scenario, see
   :func:`repro.report.bench.append_keyed_bench_record`).

A failed check raises :class:`ScenarioFailure` naming the scenario and the
check; ``python -m repro.scenarios --seed N`` reproduces any failure
exactly.

The scenario matrix (one entry per chaos mode the serving stack claims to
survive):

====================  ======================================================
scenario              what it proves
====================  ======================================================
``steady_poisson``    mixed sync/async + learn bursts + malformed and
                      oversized requests under Poisson load: full parity,
                      typed rejections, coherent trace export
``burst_admission``   concurrent bursty overload: the admission cap is
                      exact (never overshoots), shedding is typed, and the
                      SLO gate un-sticks once the latency EMA decays
``kill_shard``        SIGKILL mid-stream: survivors keep answering
                      bit-identically, in-flight work fails typed, sync
                      scatter re-dispatches the corpse's chunks
``hang_shard``        SIGSTOP (wedged-but-alive): one shared scatter
                      deadline (no per-chunk compounding), broadcasts
                      tolerate the mute shard, SIGCONT heals
``slow_shard``        one slow replica under diurnal load: slow is not
                      wrong — all answers exact, chaos visible in stats
``corrupt_frames``    corrupted result frames: bounded typed failures,
                      no collector crash, full parity after
``ring_exhaustion``   result ring permanently full: the pickle fallback
                      carries all traffic bit-identically
====================  ======================================================
"""

from __future__ import annotations

import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core import OFSCIL, OFSCILConfig
from ..obs.trace import JsonlSpanExporter, read_jsonl_spans
from ..report.bench import append_keyed_bench_record
from ..serve import (
    RemoteWorkerError,
    Server,
    ServerOverloaded,
)
from .chaos import ChaosController, ChaosInjector
from .loadgen import Workload, generate_workload

BACKBONE = "mobilenetv2_x4_tiny"
BASE_CLASSES = 6
SHOTS_PER_CLASS = 5
IMAGE_SHAPE = (3, 16, 16)

#: Default artefact file (repository root), one ``{"latest","history"}``
#: trend per scenario name.
DEFAULT_BENCH_PATH = \
    Path(__file__).resolve().parents[3] / "BENCH_scenarios.json"

#: Generous single-request deadline: scenarios run on arbitrarily loaded
#: CI machines, so correctness checks never race the scheduler.
RESULT_TIMEOUT_S = 120.0


class ScenarioFailure(AssertionError):
    """A scenario's degraded-but-correct contract was violated."""


# ---------------------------------------------------------------------------
# Shared fixtures
# ---------------------------------------------------------------------------
def build_model(seed: int):
    """A frozen model with BASE_CLASSES learned from deterministic shots
    (the same recipe the serving test suite uses)."""
    model = OFSCIL.from_registry(BACKBONE, OFSCILConfig(backbone=BACKBONE),
                                 seed=seed)
    model.freeze_feature_extractor()
    rng = np.random.default_rng(seed + 42)
    shots = rng.standard_normal(
        (BASE_CLASSES * SHOTS_PER_CLASS, *IMAGE_SHAPE)).astype(np.float32)
    for class_id in range(BASE_CLASSES):
        start = class_id * SHOTS_PER_CLASS
        model.learn_class(shots[start:start + SHOTS_PER_CLASS], class_id)
    return model, shots


def learn_shots_for(class_id: int) -> np.ndarray:
    """Deterministic novel-class shots keyed by the class id alone, so the
    driver and any replaying verifier materialise identical bits."""
    rng = np.random.default_rng(10_000 + class_id)
    return rng.standard_normal(
        (SHOTS_PER_CLASS, *IMAGE_SHAPE)).astype(np.float32)


class ScenarioRun:
    """One scenario's server, query pools, and check bookkeeping."""

    def __init__(self, name: str, seed: int, **server_kwargs):
        self.name = name
        self.seed = seed
        self.checks: List[str] = []
        self.model, self.shots = build_model(seed)
        rng = np.random.default_rng(seed + 17)
        self.queries = rng.standard_normal(
            (24, *IMAGE_SHAPE)).astype(np.float32)
        # A shape the compiled stack genuinely rejects: the backbone is
        # spatially shape-agnostic, but a wrong channel count cannot pass
        # the first conv — the typed-error path, not a silent answer.
        self.malformed_image = rng.standard_normal(
            (4, 16, 16)).astype(np.float32)
        # A legitimate batch big enough to overflow a scenario-shrunk ring
        # slot: it must still answer correctly through the pickle fallback.
        self.oversized_batch = rng.standard_normal(
            (32, *IMAGE_SHAPE)).astype(np.float32)
        kwargs = dict(num_workers=2, max_latency_s=0.02)
        kwargs.update(server_kwargs)
        self.server = Server(self.model, **kwargs)
        self.chaos = ChaosController(self.server)

    # ------------------------------------------------------------------
    def reference(self):
        """A fresh single-process predictor over the *current* model state
        — the ground truth every served answer must match bit-for-bit."""
        return self.model.runtime_predictor()

    def check(self, condition: bool, label: str) -> None:
        if not condition:
            raise ScenarioFailure(f"[{self.name}] FAILED: {label}")
        self.checks.append(label)

    def parity_sweep(self, label: str = "final parity sweep") -> None:
        """Bit-for-bit sweep: served predict + backbone features against
        the single-process reference."""
        reference = self.reference()
        self.check(
            np.array_equal(self.server.predict(self.queries),
                           reference.predict(self.queries)),
            f"{label}: predict bitwise")
        self.check(
            np.array_equal(
                self.server.extract_backbone_features(self.queries[:8]),
                reference.extract_backbone_features(self.queries[:8])),
            f"{label}: backbone features bitwise")

    def coherent_stats(self) -> dict:
        """Invariants the stats surface must satisfy in *any* state."""
        report = self.server.stats_dict()
        self.check(report["samples"] >= report["batches_dispatched"],
                   "stats: samples cover dispatched batches")
        self.check(0.0 <= report["shed_rate"] <= 1.0,
                   "stats: shed rate within [0, 1]")
        self.check(report["ema_batch_latency_s"] >= 0.0,
                   "stats: latency EMA non-negative")
        self.check(all(count >= 0
                       for count in report["inflight_per_worker"]),
                   "stats: in-flight counts non-negative")
        self.check(
            set(report["dead_workers"]).issubset(
                range(report["num_workers"])),
            "stats: dead-worker ids valid")
        self.check(len(report["workers"]) == report["num_workers"],
                   "stats: one record per worker")
        return report

    def counters(self) -> dict:
        report = self.server.stats.as_dict()
        return {
            "single_requests": report["single_requests"],
            "batch_requests": report["batch_requests"],
            "samples": report["samples"],
            "batches_dispatched": report["batches_dispatched"],
            "requests_shed": report["requests_shed"],
            "batch_latency_p50_ms": report["batch_latency_p50_ms"],
            "batch_latency_p99_ms": report["batch_latency_p99_ms"],
        }

    def close(self) -> None:
        self.chaos.heal(timeout=30.0)
        self.server.close()


# ---------------------------------------------------------------------------
# Workload driver
# ---------------------------------------------------------------------------
def drive_workload(run: ScenarioRun, workload: Workload,
                   time_scale: float = 1.0) -> dict:
    """Execute a workload schedule against the run's server.

    Async ops enqueue through :meth:`Server.submit`; sync ops (``predict``,
    ``oversized``, ``learn``) run on a small thread pool so they do not
    stall the arrival schedule — which also makes concurrent sync callers a
    standing part of every scenario.  Returns the raw per-op outcomes for
    the scenario to assert on.
    """
    server = run.server
    pool = run.shots
    async_ops: List[tuple] = []        # (op, future)
    sync_ops: List[tuple] = []         # (op, thread-future)
    sheds = 0
    started = time.monotonic()
    with ThreadPoolExecutor(max_workers=3,
                            thread_name_prefix="scenario-sync") as executor:
        for op in workload.ops:
            delay = op.at_s * time_scale - (time.monotonic() - started)
            if delay > 0:
                time.sleep(delay)
            try:
                if op.kind == "submit":
                    image = pool[op.index % len(pool)]
                    async_ops.append((op, server.submit(image)))
                elif op.kind == "malformed":
                    async_ops.append(
                        (op, server.submit(run.malformed_image)))
                elif op.kind == "predict":
                    image = pool[op.index % len(pool)][None]
                    sync_ops.append(
                        (op, executor.submit(server.predict, image)))
                elif op.kind == "oversized":
                    sync_ops.append(
                        (op, executor.submit(server.predict,
                                             run.oversized_batch)))
                elif op.kind == "learn":
                    sync_ops.append(
                        (op, executor.submit(server.learn_class,
                                             learn_shots_for(op.index),
                                             op.index)))
                else:  # pragma: no cover - loadgen only emits known kinds
                    raise ValueError(f"unknown op kind {op.kind!r}")
            except ServerOverloaded:
                sheds += 1
    outcomes = {"sheds": sheds, "async": [], "sync": []}
    for op, future in async_ops:
        try:
            outcomes["async"].append(
                (op, future.result(timeout=RESULT_TIMEOUT_S), None))
        except Exception as exc:  # noqa: BLE001 - classified by scenario
            outcomes["async"].append((op, None, exc))
    for op, future in sync_ops:
        try:
            outcomes["sync"].append(
                (op, future.result(timeout=RESULT_TIMEOUT_S), None))
        except Exception as exc:  # noqa: BLE001
            outcomes["sync"].append((op, None, exc))
    return outcomes


def _split_outcomes(outcomes: dict, kind: str) -> tuple:
    """(successes, failures) of one op kind from a driver outcome dict."""
    channel = "async" if kind in ("submit", "malformed") else "sync"
    entries = [entry for entry in outcomes[channel]
               if entry[0].kind == kind]
    successes = [entry for entry in entries if entry[2] is None]
    failures = [entry for entry in entries if entry[2] is not None]
    return successes, failures


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------
def scenario_steady_poisson(seed: int) -> dict:
    """Mixed traffic under Poisson load, tracing on: parity + typed
    rejections for malformed/oversized + coherent trace export."""
    trace_path = Path(tempfile.mkdtemp(prefix="repro-scn-")) / "trace.jsonl"
    # slot_bytes is shrunk so the oversized sync batches overflow a ring
    # slot and exercise the inline-pickle fallback under live load.
    run = ScenarioRun("steady_poisson", seed, trace_sample=1.0,
                      trace_exporter=JsonlSpanExporter(trace_path),
                      slot_bytes=65536)
    try:
        expected = run.reference().predict(run.shots)
        # Phase 1 — version-stable exact labels for a deterministic slice.
        futures = [run.server.submit(run.shots[i]) for i in range(12)]
        labels = [future.result(timeout=RESULT_TIMEOUT_S)
                  for future in futures]
        run.check(labels == [int(label) for label in expected[:12]],
                  "pre-churn async labels match reference bitwise")
        # Phase 2 — the generated mixed workload (learn bursts included).
        workload = generate_workload(
            "steady_poisson", seed, num_ops=48, arrival="poisson",
            rate_hz=120.0, sync_fraction=0.15, malformed_fraction=0.08,
            oversized_fraction=0.06, learn_bursts=2,
            first_learn_class=BASE_CLASSES, query_pool=len(run.shots))
        outcomes = drive_workload(run, workload)
        run.check(outcomes["sheds"] == 0,
                  "no shedding below the admission limits")
        submits, submit_failures = _split_outcomes(outcomes, "submit")
        run.check(not submit_failures,
                  "every well-formed async submit answered")
        valid_ids = set(range(BASE_CLASSES + 2))
        run.check(all(int(label) in valid_ids for _, label, _ in submits),
                  "async labels within the learned class-id set")
        malformed_ok, malformed_failed = _split_outcomes(outcomes,
                                                         "malformed")
        run.check(not malformed_ok and all(
            isinstance(exc, RemoteWorkerError)
            for _, _, exc in malformed_failed),
            "malformed submits fail with typed RemoteWorkerError")
        oversized_ok, oversized_failed = _split_outcomes(outcomes,
                                                         "oversized")
        run.check(not oversized_failed and all(
            int(label) in valid_ids
            for _, labels, _ in oversized_ok for label in labels),
            "oversized batches answer via the ring-overflow fallback")
        learns, learn_failures = _split_outcomes(outcomes, "learn")
        run.check(len(learns) == 2 and not learn_failures,
                  "both learn bursts applied")
        run.parity_sweep("post-churn")
        report = run.coherent_stats()
        run.check(report["prototype_broadcasts"] >= 1,
                  "learn bursts broadcast prototypes")
        run.check(report["dead_workers"] == [],
                  "malformed traffic kills requests, not workers")
        counters = run.counters()
        workload_summary = workload.summary()
    finally:
        run.close()
    # The trace file is complete only because close() flushed the exporter.
    spans = read_jsonl_spans(trace_path)
    roots = [span for span in spans if span.get("parent_id") is None]
    span_ids = {span["span_id"] for span in spans}
    orphans = [span for span in spans
               if span.get("parent_id") is not None
               and span["parent_id"] not in span_ids]
    run.check(len(roots) >= 12, "traced roots exported for async submits")
    run.check(not orphans, "every exported span parents into the trace")
    return {"workload": workload_summary, "counters": counters,
            "checks": run.checks}


def scenario_burst_admission(seed: int) -> dict:
    """Concurrent bursty overload: exact admission cap, typed shedding,
    and EMA decay un-sticking the SLO gate."""
    run = ScenarioRun("burst_admission", seed, max_pending=8,
                      max_latency_s=0.005, ema_halflife_s=0.3)
    try:
        expected = run.reference().predict(run.shots)
        accepted: List[tuple] = []
        sheds: List[Exception] = []
        peak = {"outstanding": 0}
        stop_sampling = threading.Event()

        def sample_outstanding() -> None:
            while not stop_sampling.is_set():
                peak["outstanding"] = max(peak["outstanding"],
                                          run.server.outstanding)
                time.sleep(0.0005)

        def flood(thread_id: int) -> None:
            for i in range(25):
                index = (thread_id * 25 + i) % len(run.shots)
                try:
                    future = run.server.submit(run.shots[index])
                except ServerOverloaded as exc:
                    sheds.append(exc)
                else:
                    accepted.append((index, future))

        sampler = threading.Thread(target=sample_outstanding, daemon=True)
        sampler.start()
        threads = [threading.Thread(target=flood, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop_sampling.set()
        sampler.join(timeout=5.0)
        run.check(peak["outstanding"] <= 8,
                  "outstanding requests never exceed the admission cap")
        run.check(len(sheds) > 0, "the burst was shed, not queued")
        run.check(all(isinstance(exc, ServerOverloaded) for exc in sheds),
                  "every rejection is a typed ServerOverloaded")
        for index, future in accepted:
            label = future.result(timeout=RESULT_TIMEOUT_S)
            run.check(int(label) == int(expected[index]),
                      f"accepted request {index} answered bitwise")
        # Sticky-shed regression: a stale run of 1s latency readings must
        # decay instead of shedding the now-idle server forever.
        run.server.latency_slo_s = 0.25
        for _ in range(10):
            run.server.stats.observe_batch_latency(1.0)
        try:
            run.server.submit(run.shots[0])
            raise ScenarioFailure("[burst_admission] FAILED: stale latency "
                                  "EMA did not trip the SLO gate")
        except ServerOverloaded:
            run.checks.append("stale latency EMA trips the SLO gate")
        time.sleep(1.2)                   # > grace + 2 half-lives at 0.3s
        label = run.server.submit(
            run.shots[0]).result(timeout=RESULT_TIMEOUT_S)
        run.check(int(label) == int(expected[0]),
                  "SLO gate re-admits once the stale EMA decays")
        run.server.latency_slo_s = None
        report = run.coherent_stats()
        run.check(report["requests_shed"] == len(sheds) + 1,
                  "shed accounting matches the observed rejections")
        counters = run.counters()
    finally:
        run.close()
    return {"workload": {"name": "burst_admission", "num_ops": 100,
                         "arrival": "concurrent-flood"},
            "counters": counters, "checks": run.checks}


def scenario_kill_shard(seed: int) -> dict:
    """SIGKILL one shard mid-stream: survivors answer bit-identically,
    the corpse's in-flight work fails typed, scatter re-dispatches."""
    run = ScenarioRun("kill_shard", seed)
    try:
        expected = run.reference().predict(run.shots)
        run.server.predict(run.queries[:8])          # warm both replicas
        futures: List[tuple] = []
        for i in range(30):
            if i == 8:
                run.chaos.kill_worker(1)
            index = i % len(run.shots)
            futures.append((index, run.server.submit(run.shots[index])))
            time.sleep(0.005)
        successes = 0
        for index, future in futures:
            try:
                label = future.result(timeout=RESULT_TIMEOUT_S)
            except RemoteWorkerError:
                continue          # typed: the corpse took it down
            successes += 1
            run.check(int(label) == int(expected[index]),
                      f"post-kill async answer {index} bitwise")
        run.check(successes >= 10,
                  "the surviving shard kept answering the stream")
        started = time.monotonic()
        run.parity_sweep("degraded pool")
        run.check(time.monotonic() - started < 60.0,
                  "degraded sync predict completes promptly")
        report = run.coherent_stats()
        run.check(report["dead_workers"] == [1],
                  "stats name exactly the killed shard")
        run.check(report["live_workers"] == [0],
                  "stats keep the survivor live")
        counters = run.counters()
    finally:
        run.close()
    return {"workload": {"name": "kill_shard", "num_ops": 30,
                         "arrival": "paced-stream"},
            "counters": counters, "checks": run.checks}


def scenario_hang_shard(seed: int) -> dict:
    """SIGSTOP one shard: shared scatter deadline (no compounding),
    partial broadcast, async rerouting, SIGCONT heals completely."""
    run = ScenarioRun("hang_shard", seed, micro_batch=8)
    try:
        run.server.predict(run.queries)              # warm both replicas
        run.chaos.hang_worker(0)
        deadline_s = 4.0
        started = time.monotonic()
        try:
            run.server.engine.scatter("backbone", run.queries,
                                      timeout=deadline_s)
            raise ScenarioFailure("[hang_shard] FAILED: scatter over a "
                                  "hung shard did not time out")
        except TimeoutError:
            elapsed = time.monotonic() - started
            run.check(elapsed < 2.0 * deadline_s,
                      "scatter respects one shared deadline "
                      f"({elapsed:.1f}s for {deadline_s:.1f}s budget)")
        # Broadcast tolerates the mute shard and reports who answered.
        answered = run.server.engine.broadcast("ping", timeout=2.0)
        run.check(sorted(answered) == [1],
                  "broadcast returns the answering shard and omits the "
                  "hung one")
        # Async traffic reroutes around the hung shard (its in-flight
        # count stays elevated, so least-loaded routing avoids it).
        expected = run.reference().predict(run.shots)
        futures = [(i, run.server.submit(run.shots[i])) for i in range(8)]
        for index, future in futures:
            label = future.result(timeout=RESULT_TIMEOUT_S)
            run.check(int(label) == int(expected[index]),
                      f"rerouted async answer {index} bitwise")
        run.chaos.resume_worker(0)
        time.sleep(0.2)                  # let the woken shard drain
        run.parity_sweep("post-heal")
        report = run.coherent_stats()
        run.check(report["dead_workers"] == [],
                  "a hung-then-resumed shard is never declared dead")
        counters = run.counters()
    finally:
        run.close()
    return {"workload": {"name": "hang_shard", "num_ops": 8,
                         "arrival": "scripted"},
            "counters": counters, "checks": run.checks}


def scenario_slow_shard(seed: int) -> dict:
    """One slow replica under diurnal load: slow is not wrong."""
    run = ScenarioRun("slow_shard", seed)
    try:
        run.server.predict(run.queries[:8])          # warm both replicas
        acked = run.chaos.slow_shard(1, slow_s=0.03)
        run.check(acked.get("slow_s") == 0.03, "slow shard acked the fault")
        workload = generate_workload(
            "slow_shard", seed, num_ops=30, arrival="diurnal",
            rate_hz=120.0, sync_fraction=0.2, learn_bursts=1,
            first_learn_class=BASE_CLASSES, query_pool=len(run.shots))
        outcomes = drive_workload(run, workload)
        submits, submit_failures = _split_outcomes(outcomes, "submit")
        run.check(not submit_failures and outcomes["sheds"] == 0,
                  "every request answered despite the slow shard")
        valid_ids = set(range(BASE_CLASSES + 1))
        run.check(all(int(label) in valid_ids for _, label, _ in submits),
                  "slow-shard labels within the learned class-id set")
        records = run.server.worker_stats()
        run.check(records[1].get("chaos", {}).get("slow_s") == 0.03,
                  "worker stats expose the active chaos settings")
        run.parity_sweep("slow shard active")
        run.chaos.heal()
        records = run.server.worker_stats()
        run.check(not records[1].get("chaos", {}).get("slow_s"),
                  "heal clears the slow-shard fault")
        run.coherent_stats()
        counters = run.counters()
        workload_summary = workload.summary()
    finally:
        run.close()
    return {"workload": workload_summary, "counters": counters,
            "checks": run.checks}


def scenario_corrupt_frames(seed: int) -> dict:
    """Corrupted result frames fail their requests typed — bounded blast
    radius, no collector crash, full parity afterwards."""
    injector = ChaosInjector(max_corruptions=2)
    run = ScenarioRun("corrupt_frames", seed, chaos=injector)
    try:
        expected = run.reference().predict(run.shots)
        run.server.predict(run.queries[:8])          # warm, uncorrupted
        injector.arm()
        failures: List[Exception] = []
        for i in range(10):
            try:
                label = run.server.submit(
                    run.shots[i]).result(timeout=RESULT_TIMEOUT_S)
            except RemoteWorkerError as exc:
                failures.append(exc)
            else:
                run.check(int(label) == int(expected[i]),
                          f"uncorrupted answer {i} bitwise")
        injector.disarm()
        run.check(len(failures) == injector.corrupted == 2,
                  "exactly the corrupted frames failed their requests")
        run.check(all("undecodable result" in str(exc)
                      for exc in failures),
                  "corrupted frames degrade to typed undecodable errors")
        run.parity_sweep("post-corruption")
        report = run.coherent_stats()
        run.check(report["dead_workers"] == [],
                  "frame corruption kills requests, not workers")
        counters = run.counters()
    finally:
        run.close()
    return {"workload": {"name": "corrupt_frames", "num_ops": 10,
                         "arrival": "sequential"},
            "counters": counters, "checks": run.checks}


def scenario_ring_exhaustion(seed: int) -> dict:
    """Result rings permanently full: every reply takes the pickle
    fallback and stays bit-identical."""
    run = ScenarioRun("ring_exhaustion", seed)
    try:
        run.server.predict(run.queries[:8])          # warm both replicas
        for worker in run.server.engine.live_workers:
            acked = run.chaos.exhaust_result_ring(worker, on=True)
            run.check(acked.get("exhaust_result_ring") is True,
                      f"worker {worker} acked ring exhaustion")
        workload = generate_workload(
            "ring_exhaustion", seed, num_ops=30, arrival="bursty",
            rate_hz=200.0, sync_fraction=0.3, query_pool=len(run.shots))
        outcomes = drive_workload(run, workload)
        expected = run.reference().predict(run.shots)
        submits, submit_failures = _split_outcomes(outcomes, "submit")
        run.check(not submit_failures and outcomes["sheds"] == 0,
                  "every request answered through the pickle fallback")
        run.check(all(int(label) == int(expected[op.index % len(run.shots)])
                      for op, label, _ in submits),
                  "fallback-path async labels match reference bitwise")
        run.parity_sweep("ring exhausted")
        records = run.server.worker_stats()
        run.check(all(record.get("chaos", {}).get("exhaust_result_ring")
                      for record in records),
                  "worker stats expose the ring-exhaustion fault")
        run.chaos.heal()
        run.parity_sweep("post-heal")
        run.coherent_stats()
        counters = run.counters()
        workload_summary = workload.summary()
    finally:
        run.close()
    return {"workload": workload_summary, "counters": counters,
            "checks": run.checks}


#: name -> scenario callable (runs the scenario, returns its record body).
SCENARIOS: Dict[str, Callable[[int], dict]] = {
    "steady_poisson": scenario_steady_poisson,
    "burst_admission": scenario_burst_admission,
    "kill_shard": scenario_kill_shard,
    "hang_shard": scenario_hang_shard,
    "slow_shard": scenario_slow_shard,
    "corrupt_frames": scenario_corrupt_frames,
    "ring_exhaustion": scenario_ring_exhaustion,
}


# ---------------------------------------------------------------------------
# Entrypoints
# ---------------------------------------------------------------------------
def run_scenario(name: str, seed: int = 0) -> dict:
    """Run one scenario; raises :class:`ScenarioFailure` on any violated
    check, returns its bench record on success."""
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"choose from {sorted(SCENARIOS)}")
    started = time.monotonic()
    body = SCENARIOS[name](seed)
    return {"scenario": name, "seed": seed, "ok": True,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "elapsed_s": round(time.monotonic() - started, 3),
            "num_checks": len(body.get("checks", [])), **body}


def run_matrix(seed: int = 0, names: Optional[List[str]] = None,
               bench_path=DEFAULT_BENCH_PATH,
               write_bench: bool = True,
               progress: Optional[Callable[[str], None]] = None
               ) -> List[dict]:
    """Run the scenario matrix; record each scenario's result trend.

    Fails fast: the first :class:`ScenarioFailure` propagates (the run is
    a correctness gate, not a survey).  On success every scenario has
    appended one record to its ``{"latest","history"}`` trend in
    ``bench_path``.
    """
    records = []
    for name in names if names is not None else list(SCENARIOS):
        if progress is not None:
            progress(f"scenario {name} (seed {seed}) ...")
        record = run_scenario(name, seed)
        if write_bench:
            append_keyed_bench_record(bench_path, name, record)
        if progress is not None:
            progress(f"  ok: {record['num_checks']} checks, "
                     f"{record['elapsed_s']:.1f}s")
        records.append(record)
    return records
