"""Primitive differentiable operations used by :class:`repro.nn.Tensor`.

Each operation is a :class:`~repro.nn.tensor.Function` subclass.  Forward
methods receive raw ``numpy`` arrays (tensor arguments are unwrapped by
``Function.apply``) plus any non-tensor configuration arguments; backward
methods receive the gradient of the output and return one gradient per
tensor input, in order.
"""

from __future__ import annotations

import numpy as np

from .tensor import Function, unbroadcast


class Add(Function):
    def forward(self, a, b):
        self.save_for_backward(a.shape, b.shape)
        return a + b

    def backward(self, grad):
        a_shape, b_shape = self.saved
        return unbroadcast(grad, a_shape), unbroadcast(grad, b_shape)


class Sub(Function):
    def forward(self, a, b):
        self.save_for_backward(a.shape, b.shape)
        return a - b

    def backward(self, grad):
        a_shape, b_shape = self.saved
        return unbroadcast(grad, a_shape), unbroadcast(-grad, b_shape)


class Mul(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a * b

    def backward(self, grad):
        a, b = self.saved
        return unbroadcast(grad * b, a.shape), unbroadcast(grad * a, b.shape)


class Div(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a / b

    def backward(self, grad):
        a, b = self.saved
        grad_a = grad / b
        grad_b = -grad * a / (b * b)
        return unbroadcast(grad_a, a.shape), unbroadcast(grad_b, b.shape)


class Neg(Function):
    def forward(self, a):
        return -a

    def backward(self, grad):
        return (-grad,)


class Pow(Function):
    def forward(self, a, exponent):
        self.save_for_backward(a, exponent)
        return a ** exponent

    def backward(self, grad):
        a, exponent = self.saved
        return (grad * exponent * a ** (exponent - 1.0),)


class MatMul(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a @ b

    def backward(self, grad):
        a, b = self.saved
        if a.ndim == 1 and b.ndim == 1:
            return grad * b, grad * a
        if b.ndim == 1:
            grad_a = np.outer(grad, b) if a.ndim == 2 else grad[..., None] * b
            grad_b = np.tensordot(grad, a, axes=(tuple(range(grad.ndim)),
                                                 tuple(range(a.ndim - 1))))
            return unbroadcast(grad_a, a.shape), unbroadcast(grad_b, b.shape)
        if a.ndim == 1:
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.outer(a, grad) if b.ndim == 2 else a[..., None] * grad
            return unbroadcast(grad_a, a.shape), unbroadcast(grad_b, b.shape)
        grad_a = grad @ np.swapaxes(b, -1, -2)
        grad_b = np.swapaxes(a, -1, -2) @ grad
        return unbroadcast(grad_a, a.shape), unbroadcast(grad_b, b.shape)


class Sum(Function):
    def forward(self, a, axis=None, keepdims=False):
        self.save_for_backward(a.shape, axis, keepdims)
        return a.sum(axis=axis, keepdims=keepdims)

    def backward(self, grad):
        shape, axis, keepdims = self.saved
        grad = np.asarray(grad)
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(ax % len(shape) for ax in axes)
            for ax in sorted(axes):
                grad = np.expand_dims(grad, ax)
        return (np.broadcast_to(grad, shape).copy(),)


class Mean(Function):
    def forward(self, a, axis=None, keepdims=False):
        self.save_for_backward(a.shape, axis, keepdims)
        return a.mean(axis=axis, keepdims=keepdims)

    def backward(self, grad):
        shape, axis, keepdims = self.saved
        grad = np.asarray(grad)
        if axis is None:
            count = int(np.prod(shape))
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(ax % len(shape) for ax in axes)
            count = int(np.prod([shape[ax] for ax in axes]))
            if not keepdims:
                for ax in sorted(axes):
                    grad = np.expand_dims(grad, ax)
        return (np.broadcast_to(grad, shape).copy() / count,)


class Max(Function):
    def forward(self, a, axis=None, keepdims=False):
        out = a.max(axis=axis, keepdims=keepdims)
        self.save_for_backward(a, axis, keepdims, out)
        return out

    def backward(self, grad):
        a, axis, keepdims, out = self.saved
        grad = np.asarray(grad)
        out_expanded = out
        grad_expanded = grad
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(ax % a.ndim for ax in axes)
            for ax in sorted(axes):
                out_expanded = np.expand_dims(out_expanded, ax)
                grad_expanded = np.expand_dims(grad_expanded, ax)
        mask = (a == out_expanded).astype(a.dtype)
        # Split gradient equally among ties to keep the operation well defined.
        counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        return (mask * grad_expanded / counts,)


class Reshape(Function):
    def forward(self, a, shape):
        self.save_for_backward(a.shape)
        return a.reshape(shape)

    def backward(self, grad):
        (shape,) = self.saved
        return (grad.reshape(shape),)


class Transpose(Function):
    def forward(self, a, axes=None):
        self.save_for_backward(axes, a.ndim)
        return np.transpose(a, axes)

    def backward(self, grad):
        axes, ndim = self.saved
        if axes is None:
            return (np.transpose(grad),)
        inverse = np.argsort(axes)
        return (np.transpose(grad, inverse),)


class Exp(Function):
    def forward(self, a):
        out = np.exp(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * out,)


class Log(Function):
    def forward(self, a):
        self.save_for_backward(a)
        return np.log(a)

    def backward(self, grad):
        (a,) = self.saved
        return (grad / a,)


class Sqrt(Function):
    def forward(self, a):
        out = np.sqrt(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * 0.5 / out,)


class Abs(Function):
    def forward(self, a):
        self.save_for_backward(a)
        return np.abs(a)

    def backward(self, grad):
        (a,) = self.saved
        return (grad * np.sign(a),)


class Clip(Function):
    def forward(self, a, low, high):
        self.save_for_backward(a, low, high)
        return np.clip(a, low, high)

    def backward(self, grad):
        a, low, high = self.saved
        mask = ((a >= low) & (a <= high)).astype(a.dtype)
        return (grad * mask,)


class ReLU(Function):
    def forward(self, a):
        mask = a > 0
        self.save_for_backward(mask)
        return a * mask

    def backward(self, grad):
        (mask,) = self.saved
        return (grad * mask,)


class ReLU6(Function):
    def forward(self, a):
        mask = (a > 0) & (a < 6.0)
        self.save_for_backward(mask)
        return np.clip(a, 0.0, 6.0)

    def backward(self, grad):
        (mask,) = self.saved
        return (grad * mask,)


class Sigmoid(Function):
    def forward(self, a):
        out = 1.0 / (1.0 + np.exp(-a))
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * out * (1.0 - out),)


class Tanh(Function):
    def forward(self, a):
        out = np.tanh(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * (1.0 - out * out),)


class LogSoftmax(Function):
    def forward(self, a, axis=-1):
        shifted = a - a.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_sum
        self.save_for_backward(out, axis)
        return out

    def backward(self, grad):
        out, axis = self.saved
        softmax = np.exp(out)
        return (grad - softmax * grad.sum(axis=axis, keepdims=True),)


class Softmax(Function):
    def forward(self, a, axis=-1):
        shifted = a - a.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=axis, keepdims=True)
        self.save_for_backward(out, axis)
        return out

    def backward(self, grad):
        out, axis = self.saved
        dot = (grad * out).sum(axis=axis, keepdims=True)
        return (out * (grad - dot),)


class Slice(Function):
    def forward(self, a, index):
        self.save_for_backward(a.shape, index)
        return a[index]

    def backward(self, grad):
        shape, index = self.saved
        out = np.zeros(shape, dtype=grad.dtype)
        np.add.at(out, index, grad)
        return (out,)


class Pad(Function):
    """Zero padding with a per-dimension ``(before, after)`` specification."""

    def forward(self, a, pad_width):
        self.save_for_backward(pad_width, a.shape)
        return np.pad(a, pad_width, mode="constant")

    def backward(self, grad):
        pad_width, shape = self.saved
        slices = tuple(slice(before, before + dim)
                       for (before, _after), dim in zip(pad_width, shape))
        return (grad[slices],)


class Stack(Function):
    def forward(self, *arrays, axis=0):
        self.save_for_backward(axis, len(arrays))
        return np.stack(arrays, axis=axis)

    def backward(self, grad):
        axis, count = self.saved
        pieces = np.split(grad, count, axis=axis)
        return tuple(np.squeeze(piece, axis=axis) for piece in pieces)


class Concat(Function):
    def forward(self, *arrays, axis=0):
        sizes = [array.shape[axis] for array in arrays]
        self.save_for_backward(axis, sizes)
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad):
        axis, sizes = self.saved
        splits = np.cumsum(sizes)[:-1]
        return tuple(np.split(grad, splits, axis=axis))


class Dropout(Function):
    """Inverted dropout: scales kept activations by ``1 / (1 - p)``."""

    def forward(self, a, p=0.5, seed=None):
        rng = np.random.default_rng(seed)
        keep = 1.0 - p
        mask = (rng.random(a.shape) < keep).astype(a.dtype) / max(keep, 1e-12)
        self.save_for_backward(mask)
        return a * mask

    def backward(self, grad):
        (mask,) = self.saved
        return (grad * mask,)


class Embedding(Function):
    """Row gather used for prototype lookup tables."""

    def forward(self, weight, indices):
        self.save_for_backward(weight.shape, np.asarray(indices))
        return weight[np.asarray(indices)]

    def backward(self, grad):
        shape, indices = self.saved
        out = np.zeros(shape, dtype=grad.dtype)
        np.add.at(out, indices, grad)
        return (out,)


class BatchNormTrain(Function):
    """Fused training-mode batch normalization (2d NCHW or 1d NC inputs).

    Computing the normalization in one fused operation (instead of composing
    mean/var/div primitives) substantially reduces the autograd overhead of
    the many BatchNorm layers in MobileNetV2-style backbones.
    """

    def forward(self, x, weight, bias, eps=1e-5, mean=None, var=None):
        axes = (0, 2, 3) if x.ndim == 4 else (0,)
        shape_keep = tuple(1 if axis in axes else size
                           for axis, size in enumerate(x.shape))
        if mean is None:
            mean = x.mean(axis=axes, keepdims=True)
        else:
            mean = np.asarray(mean, dtype=x.dtype).reshape(shape_keep)
        if var is None:
            var = x.var(axis=axes, keepdims=True)
        else:
            var = np.asarray(var, dtype=x.dtype).reshape(shape_keep)
        inv_std = 1.0 / np.sqrt(var + eps)
        x_hat = (x - mean) * inv_std
        shape = (1, -1, 1, 1) if x.ndim == 4 else (1, -1)
        out = x_hat * weight.reshape(shape) + bias.reshape(shape)
        self.save_for_backward(x_hat, inv_std, weight, axes, shape,
                               mean.reshape(-1), var.reshape(-1))
        return out

    def backward(self, grad):
        x_hat, inv_std, weight, axes, shape, _mean, _var = self.saved
        count = 1
        for axis in axes:
            count *= grad.shape[axis]
        grad_bias = grad.sum(axis=axes)
        grad_weight = (grad * x_hat).sum(axis=axes)
        grad_xhat = grad * weight.reshape(shape)
        sum_grad_xhat = grad_xhat.sum(axis=axes, keepdims=True)
        sum_grad_xhat_xhat = (grad_xhat * x_hat).sum(axis=axes, keepdims=True)
        grad_x = (inv_std / count) * (
            count * grad_xhat - sum_grad_xhat - x_hat * sum_grad_xhat_xhat)
        return grad_x, grad_weight, grad_bias

    @property
    def batch_statistics(self):
        """(mean, biased variance) of the normalized batch, as flat vectors."""
        return self.saved[5], self.saved[6]
