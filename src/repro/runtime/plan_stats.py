"""Print optimizer + memory-plan statistics for a registry backbone.

CI runs this after the fast suite (``python -m repro.runtime.plan_stats``)
so plan-shape or memory-plan regressions — more steps, fewer fused
epilogues, more arena slots, a bigger peak — are visible in the job log of
every push, not only when a perf floor finally trips.  The report includes
the graph rewrite pipeline's per-rule application counts
(``pass.<rule_name>`` lines, from the optimized plan's ``pass_stats``) and
the process plan-cache counters: the probe compiles the same model through
two predictors, so a healthy cache reports at least one hit.

``python -m repro.runtime.plan_stats <backbone> int8`` reports the integer
plan instead: the model is put through the deterministic PTQ recipe (seeded
init, calibration on the synthetic base session, no QAT stages — the same
construction the conformance fixtures use), so the int8 step/fusion/arena
counts of both backbone families are pinned in the job log too.

Flags:

``--profile``
    additionally executes the warm-up batch under a
    :class:`~repro.obs.planprof.PlanProfiler` and appends the per-op profile
    table — wall time, call counts, bytes moved and effective bandwidth.
``--dot``
    print the optimized plan's SSA graph as Graphviz ``dot`` instead of the
    stats table (nodes labeled op/name, edges register + dtype + shape);
    pipe through ``dot -Tsvg`` to render the IR.
``--assert-max-steps N``
    exit non-zero if the optimized plan has more than ``N`` steps — the CI
    gate against rewrite rules silently ceasing to fire.
"""

from __future__ import annotations

import sys
import time

import numpy as np

DEFAULT_BACKBONE = "mobilenetv2_x4_tiny"
WARMUP_SAMPLES = 8


def _build_model(backbone: str, mode: str):
    from ..core import OFSCIL, OFSCILConfig

    model = OFSCIL.from_registry(backbone, OFSCILConfig(backbone=backbone),
                                 seed=0)
    if mode == "int8":
        from ..data import build_synthetic_fscil
        from ..quant import QuantizationConfig, quantize_ofscil_model

        benchmark = build_synthetic_fscil("test", seed=0)
        model, _report = quantize_ofscil_model(
            model, benchmark.base_train,
            config=QuantizationConfig(qat_pretrain_epochs=0,
                                      qat_metalearn_iterations=0,
                                      calibration_batches=2,
                                      calibration_batch_size=32))
    elif mode != "float32":
        raise ValueError(f"unknown mode {mode!r}; expected float32 or int8")
    return model


def plan_stats(backbone: str = DEFAULT_BACKBONE,
               mode: str = "float32", profile: bool = False) -> dict:
    """Compile the backbone, serve one batch, and report plan/arena stats.

    Builds the engines twice through one :class:`~repro.runtime.plan_cache.
    PlanCache` — the second predictor must hit — and reports both compile
    wall times next to the cache counters.
    """
    from ..models import get_config
    from .plan_cache import PlanCache
    from .predictor import BatchedPredictor

    model = _build_model(backbone, mode)
    cache = PlanCache()
    run_mode = getattr(model.config, "runtime_mode", mode)
    started = time.perf_counter()
    predictor = BatchedPredictor(model,
                                 micro_batch=model.config.feature_batch_size,
                                 mode=run_mode, profile=profile,
                                 plan_cache=cache)
    predictor.backbone_engine, predictor.fcr_engine
    compile_cold_ms = (time.perf_counter() - started) * 1e3
    started = time.perf_counter()
    recompiled = BatchedPredictor(model, mode=run_mode, plan_cache=cache)
    recompiled.backbone_engine, recompiled.fcr_engine
    compile_cached_ms = (time.perf_counter() - started) * 1e3
    size = get_config(backbone).input_size
    # One real batch materialises the recorded-shape memory plan.
    predictor.embed(np.zeros((WARMUP_SAMPLES, 3, size, size),
                             dtype=np.float32))
    engine = predictor.backbone_engine
    plan = engine.plan
    memory_plan = engine.memory_plan
    peak = memory_plan.peak_bytes(engine.micro_batch)
    unplanned = memory_plan.unplanned_bytes(engine.micro_batch)
    stats = {
        "backbone": backbone,
        "mode": predictor.mode,
        "plan_steps": len(plan),
        "fused_steps": plan.num_fused(),
        "integer_steps": plan.num_integer(),
        "arena_slots": memory_plan.num_slots,
        "arena_peak_bytes": peak,
        "arena_unplanned_bytes": unplanned,
        "peak_reduction": round(1.0 - peak / unplanned, 3) if unplanned else 0.0,
        "micro_batch": engine.micro_batch,
        "num_threads": engine.num_threads,
        "compile_cold_ms": round(compile_cold_ms, 2),
        "compile_cached_ms": round(compile_cached_ms, 2),
    }
    for rule, count in sorted(plan.pass_stats.items()):
        stats[f"pass.{rule}"] = count
    for key, value in cache.stats().items():
        stats[f"plan_cache.{key}"] = value
    stats["profiler"] = predictor.profiler
    stats["_engine"] = engine
    return stats


def plan_dot(backbone: str = DEFAULT_BACKBONE, mode: str = "float32") -> str:
    """Graphviz dump of the optimized plan's SSA graph (with run shapes)."""
    from .ir import Graph

    stats = plan_stats(backbone, mode)
    engine = stats["_engine"]
    shapes = dict(engine.memory_plan.shapes) if engine.memory_plan else {}
    return Graph.from_plan(engine.plan, shapes=shapes).to_dot()


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    profile = "--profile" in argv
    dot = "--dot" in argv
    argv = [arg for arg in argv if arg not in ("--profile", "--dot")]
    max_steps = None
    if "--assert-max-steps" in argv:
        index = argv.index("--assert-max-steps")
        try:
            max_steps = int(argv[index + 1])
        except (IndexError, ValueError):
            print("--assert-max-steps requires an integer", file=sys.stderr)
            return 2
        del argv[index:index + 2]
    backbone = argv[0] if argv else DEFAULT_BACKBONE
    mode = argv[1] if len(argv) > 1 else "float32"
    if dot:
        print(plan_dot(backbone, mode))
        return 0
    stats = plan_stats(backbone, mode, profile=profile)
    profiler = stats.pop("profiler")
    stats.pop("_engine")
    width = max(len(key) for key in stats)
    for key, value in stats.items():
        print(f"{key:<{width}}  {value}")
    if profiler is not None:
        print()
        print(profiler.table())
    if max_steps is not None and stats["plan_steps"] > max_steps:
        print(f"plan_steps regression: {stats['plan_steps']} > "
              f"--assert-max-steps {max_steps}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
