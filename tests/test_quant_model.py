"""Model-level quantization: weights, activations, full workflow, Fig. 3 sweep."""

import numpy as np
import pytest

from repro import nn
from repro.core import OFSCIL, OFSCILConfig
from repro.nn.tensor import Tensor
from repro.quant import (
    ActivationQuantizationPass,
    QuantizationConfig,
    em_memory_kb,
    format_precision_table,
    integer_weight_size_bytes,
    prototype_precision_sweep,
    quantizable_layers,
    quantize_ofscil_model,
    quantize_weights,
)

BACKBONE = "mobilenetv2_x4_tiny"


def small_net(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, rng=rng),
        nn.BatchNorm2d(8),
        nn.ReLU6(),
        nn.Conv2d(8, 8, 3, padding=1, groups=8, rng=rng),
        nn.ReLU6(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 4, rng=rng),
    )


class TestWeightQuantization:
    def test_quantizable_layers_found(self):
        net = small_net()
        names = [name for name, _ in quantizable_layers(net)]
        assert len(names) == 3   # two convs + one linear

    def test_weights_are_modified_in_place_and_on_grid(self, rng):
        net = small_net()
        original = net[0].weight.data.copy()
        report = quantize_weights(net, bits=8)
        assert report.num_layers == 3
        assert not np.array_equal(net[0].weight.data, original)
        threshold = report.thresholds["0.weight"]
        scale = threshold / 127
        codes = net[0].weight.data / scale
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-4)

    def test_quantization_error_small_for_8_bits(self):
        net = small_net()
        report = quantize_weights(net, bits=8)
        assert report.mean_mse < 1e-4

    def test_per_channel_quantization_not_worse(self):
        net_a, net_b = small_net(seed=3), small_net(seed=3)
        per_tensor = quantize_weights(net_a, bits=4, per_channel=False)
        per_channel = quantize_weights(net_b, bits=4, per_channel=True)
        assert per_channel.mean_mse <= per_tensor.mean_mse + 1e-6

    def test_integer_weight_size(self):
        net = small_net()
        size = integer_weight_size_bytes(net, bits=8)
        params_with_bias = sum(module.weight.data.size for _, module in quantizable_layers(net))
        assert size >= params_with_bias   # weights at 1 byte + 32-bit biases


class TestActivationQuantization:
    def test_calibrate_then_quantize(self, rng):
        net = small_net()
        act_pass = ActivationQuantizationPass(net, bits=8)
        assert len(act_pass.quantizers) == 3   # two ReLU6 + global pool
        images = rng.uniform(0, 1, (32, 3, 8, 8)).astype(np.float32)
        report = act_pass.calibrate(images, batch_size=16)
        assert report.num_points == 3
        act_pass.enable()
        out_quant = net(Tensor(images[:4])).data
        act_pass.disable()
        out_float = net(Tensor(images[:4])).data
        assert not np.allclose(out_quant, out_float)
        assert np.abs(out_quant - out_float).max() < 0.2

    def test_uncalibrated_freeze_raises(self):
        net = small_net()
        act_pass = ActivationQuantizationPass(net, bits=8)
        with pytest.raises(RuntimeError):
            act_pass.quantizers[0].freeze()

    def test_detach_removes_hooks(self, rng):
        net = small_net()
        act_pass = ActivationQuantizationPass(net, bits=8)
        act_pass.calibrate(rng.uniform(0, 1, (8, 3, 8, 8)).astype(np.float32))
        act_pass.detach()
        assert all(not module._forward_hooks for _, module in net.named_modules())


class TestQuantizationWorkflow:
    @pytest.fixture(scope="class")
    def quantized(self, tiny_benchmark):
        model = OFSCIL.from_registry(BACKBONE, OFSCILConfig(backbone=BACKBONE), seed=5)
        config = QuantizationConfig(qat_pretrain_epochs=1, qat_metalearn_iterations=1,
                                    calibration_batches=2, calibration_batch_size=32)
        model, report = quantize_ofscil_model(model, tiny_benchmark.base_train,
                                              config=config)
        return model, report

    def test_report_contents(self, quantized):
        _, report = quantized
        assert report.weights.num_layers > 10
        assert report.activations.num_points > 5
        assert report.model_size_bytes > 0
        assert "qat_pretrain" in report.extras and "qat_metalearn" in report.extras

    def test_weights_are_int8_reconstructions(self, quantized):
        model, report = quantized
        name, module = next(iter(quantizable_layers(model.backbone)))
        threshold = None
        for key, value in report.weights.thresholds.items():
            if key.startswith(name):
                threshold = value
                break
        assert threshold is None or threshold > 0

    def test_quantized_model_still_classifies(self, quantized, tiny_benchmark):
        model, _ = quantized
        model.memory.reset()
        model.learn_base_session(tiny_benchmark.base_train, max_per_class=5)
        accuracy = model.accuracy(tiny_benchmark.test_upto(0))
        assert accuracy >= 0.0   # functional end to end

    def test_model_size_much_smaller_than_fp32(self, quantized):
        model, report = quantized
        fp32_bytes = sum(p.size * 4 for p in model.backbone.parameters())
        assert report.model_size_bytes < fp32_bytes


class TestPrototypePrecisionSweep:
    def test_em_memory_kb_paper_value(self):
        assert em_memory_kb(100, 256, 3) == pytest.approx(9.6)
        assert em_memory_kb(100, 256, 32) == pytest.approx(102.4)

    @pytest.fixture(scope="class")
    def sweep(self, trained_model, tiny_benchmark):
        return prototype_precision_sweep(trained_model, tiny_benchmark,
                                         bit_widths=(32, 8, 4, 3, 1))

    def test_rows_cover_requested_bits(self, sweep):
        assert [row.bits for row in sweep] == [32, 8, 4, 3, 1]

    def test_memory_decreases_with_bits(self, sweep):
        memories = [row.memory_kb for row in sweep]
        assert all(a > b for a, b in zip(memories, memories[1:]))

    def test_accuracy_stable_down_to_medium_precision(self, sweep):
        """8-bit and 4-bit prototypes must track the float accuracy closely
        (Fig. 3: the curve is flat until very low precision)."""
        reference = sweep[0]
        for row in sweep[1:3]:   # 8 and 4 bits
            assert abs(row.session0_accuracy - reference.session0_accuracy) < 0.05
            assert abs(row.final_session_accuracy - reference.final_session_accuracy) < 0.05

    def test_format_table(self, sweep):
        table = format_precision_table(sweep)
        assert "bits" in table and "EM kB" in table
