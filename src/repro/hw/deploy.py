"""Dory-style deployment of a network graph onto GAP9.

The deployment flow mirrors what the Dory code generator does for the paper:
fold BatchNorm into the preceding convolution, decide for every layer whether
its (int8) weights live in L2 or spill to the external L3, tile activations
through the 128 kB L1, and emit a per-layer execution schedule with cycle and
DMA costs.  The result is consumed by the profiler to produce Table IV and
Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..models.graph import (
    LayerSpec,
    act_spec,
    add_spec,
    bn_spec,
    global_pool_spec,
    linear_spec,
    pool_spec,
)
from .kernels import GraphCost, graph_cycles
from .memory import MemoryPlan, plan_memory
from .soc import GAP9Config


def fold_batchnorm(layers: List[LayerSpec]) -> List[LayerSpec]:
    """Remove standalone BatchNorm layers (folded into the preceding conv).

    Legacy spec-path folding: used only when deploying from a registry layer
    graph (``deploy_graph``/``deploy_backbone``), which re-derives the fold
    the runtime compiler already performs on the weights.  The preferred path
    is :meth:`DeploymentPlan.from_plan`, which consumes the compiled
    (already-folded) runtime plan so cost model and runtime share one graph.
    """
    return [layer for layer in layers if layer.op_type != "bn"]


def plan_layer_specs(plan, input_shape: Tuple[int, int, int] = (3, 32, 32)
                     ) -> List[LayerSpec]:
    """Describe a compiled runtime plan as a GAP9-deployable layer graph.

    Walks the plan's steps with shape inference over its registers and emits
    one :class:`LayerSpec` per costed operator.  Batch norm never appears —
    the compiler folded it into conv weights — so the result matches a
    registry layer graph after :func:`fold_batchnorm` on MACs and weight
    bytes by construction.  Fused activations become explicit ``act`` specs
    (0 MACs) to mirror the registry graphs; ``quantize``/``dequantize``/
    ``requantize`` steps cost nothing on GAP9 (they ride the conv
    requantization stage) and are skipped.

    Args:
        plan: a :class:`repro.runtime.InferencePlan` (float32 or int8 mode).
        input_shape: ``(channels, height, width)`` of one input sample.

    Raises:
        ValueError: if the plan contains opaque steps (eager module calls
            cannot be costed on the target).
    """
    shapes: Dict[str, Tuple[int, ...]] = {plan.input_register: tuple(input_shape)}
    specs: List[LayerSpec] = []
    for step in plan.steps:
        shape = shapes[step.inputs[0]]
        if step.op == "opaque":
            raise ValueError(
                f"step {step.name!r} is opaque (eager module call); compile "
                f"the model without foreign hooks before deploying")
        if step.op in ("quantize", "dequantize", "requantize", "qrequantize"):
            shapes[step.output] = shape
            continue
        if step.op == "flatten":
            shapes[step.output] = (_flat_features(shape),)
            continue
        if step.op in ("conv", "qconv", "qconv_dequant"):
            weight = step.arrays["weight"]
            out_c, c_per_group, kh, kw = weight.shape
            groups = step.attrs.get("groups", 1)
            stride = step.attrs.get("stride", 1)
            padding = step.attrs.get("padding", 0)
            c, h, w = shape
            out_h = (h + 2 * padding - kh) // stride + 1
            out_w = (w + 2 * padding - kw) // stride + 1
            op_type = "dwconv" if groups == c and groups == out_c else "conv"
            specs.append(LayerSpec(
                name=step.name, op_type=op_type, in_channels=c,
                out_channels=out_c, kernel_size=kh, stride=stride,
                in_hw=(h, w), out_hw=(out_h, out_w), groups=groups,
                macs=out_h * out_w * out_c * c_per_group * kh * kw,
                params=weight.size))
            if step.attrs.get("act") is not None:
                specs.append(act_spec(f"{step.name}.act", out_c,
                                      (out_h, out_w)))
            shapes[step.output] = (out_c, out_h, out_w)
        elif step.op == "qconv_add":
            # Superfused residual tail: cost exactly like the
            # ``qconv_dequant`` + ``add`` pair it replaced — a conv spec
            # under the original conv's name, then the residual add.
            weight = step.arrays["weight"]
            out_c, c_per_group, kh, kw = weight.shape
            groups = step.attrs.get("groups", 1)
            stride = step.attrs.get("stride", 1)
            padding = step.attrs.get("padding", 0)
            c, h, w = shape
            out_h = (h + 2 * padding - kh) // stride + 1
            out_w = (w + 2 * padding - kw) // stride + 1
            op_type = "dwconv" if groups == c and groups == out_c else "conv"
            conv_name = step.attrs.get("conv_name", f"{step.name}.conv")
            specs.append(LayerSpec(
                name=conv_name, op_type=op_type, in_channels=c,
                out_channels=out_c, kernel_size=kh, stride=stride,
                in_hw=(h, w), out_hw=(out_h, out_w), groups=groups,
                macs=out_h * out_w * out_c * c_per_group * kh * kw,
                params=weight.size))
            if step.attrs.get("act") is not None:
                specs.append(act_spec(f"{conv_name}.act", out_c,
                                      (out_h, out_w)))
            specs.append(add_spec(step.name, out_c, (out_h, out_w)))
            shapes[step.output] = (out_c, out_h, out_w)
        elif step.op in ("linear", "qlinear"):
            in_features = _flat_features(shape)
            if step.module is not None:
                out_features = step.module.weight.data.shape[0]
                has_bias = step.module.bias is not None
            else:
                out_features = step.arrays["weight"].shape[0]
                has_bias = "bias" in step.arrays
            specs.append(linear_spec(step.name, in_features, out_features,
                                     bias=has_bias))
            shapes[step.output] = (out_features,)
        elif step.op == "bn":
            c, h, w = shape
            specs.append(bn_spec(step.name, c, (h, w)))
            shapes[step.output] = shape
        elif step.op == "act":
            c, h, w = shape
            specs.append(act_spec(step.name, c, (h, w)))
            shapes[step.output] = shape
        elif step.op == "add":
            c, h, w = shape
            specs.append(add_spec(step.name, c, (h, w)))
            shapes[step.output] = shape
        elif step.op in ("global_pool", "qglobal_pool"):
            # The integer pooling variant costs identically on GAP9 (the
            # accumulation is the same; only the host-side rescale differs).
            c, h, w = shape
            specs.append(global_pool_spec(step.name, c, (h, w)))
            shapes[step.output] = (c,)
        elif step.op in ("max_pool", "avg_pool"):
            c, h, w = shape
            kernel = step.attrs["kernel_size"]
            stride = step.attrs["stride"]
            spec = pool_spec(step.name, c, (h, w), kernel, stride)
            specs.append(spec)
            shapes[step.output] = (c,) + spec.out_hw
        else:
            raise ValueError(f"cannot deploy plan step {step.op!r} "
                             f"({step.name!r})")
    return specs


def _flat_features(shape: Tuple[int, ...]) -> int:
    features = 1
    for dim in shape:
        features *= dim
    return features


@dataclass
class DeploymentPlan:
    """A network deployed onto GAP9: memory placement + execution schedule."""

    name: str
    layers: List[LayerSpec]
    memory_plan: MemoryPlan
    config: GAP9Config
    weight_bits: int = 8
    activation_bits: int = 8
    costs: Dict[int, GraphCost] = field(default_factory=dict)

    @classmethod
    def from_plan(cls, plan, input_hw: Tuple[int, int] = (32, 32),
                  config: Optional[GAP9Config] = None,
                  weight_bits: int = 8, activation_bits: int = 8,
                  in_channels: int = 3, name: Optional[str] = None
                  ) -> "DeploymentPlan":
        """Deploy a compiled runtime plan onto GAP9.

        The runtime compiler already folded batch norm into the conv weights,
        so the cost model and the runtime consume *one* folded graph — no
        second :func:`fold_batchnorm` pass, no chance for the two to
        disagree on MACs or weight bytes.

        Args:
            plan: :class:`repro.runtime.InferencePlan` from
                ``compile_backbone``/``compile_module`` (float32 or int8).
            input_hw: spatial input resolution of one sample.
            config: GAP9 SoC description (defaults to the paper's).
            weight_bits / activation_bits: deployed precisions.
            in_channels: input channel count of one sample.
            name: plan name override (defaults to the runtime plan's name).
        """
        config = config or GAP9Config()
        layers = plan_layer_specs(plan, (in_channels,) + tuple(input_hw))
        memory_plan = plan_memory(layers, config, weight_bits, activation_bits)
        return cls(name=name or plan.name, layers=layers,
                   memory_plan=memory_plan, config=config,
                   weight_bits=weight_bits, activation_bits=activation_bits)

    def cost(self, cores: int = 8) -> GraphCost:
        """Cycle cost of one inference at the requested core count (cached)."""
        if cores not in self.costs:
            self.costs[cores] = graph_cycles(self.layers, cores, self.config,
                                             self.memory_plan,
                                             self.weight_bits,
                                             self.activation_bits)
        return self.costs[cores]

    # ------------------------------------------------------------------
    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def weight_bytes(self) -> int:
        return sum(layer.weight_bytes(self.weight_bits) for layer in self.layers)

    def latency_ms(self, cores: int = 8) -> float:
        return self.config.cycles_to_ms(self.cost(cores).total_cycles)

    def macs_per_cycle(self, cores: int = 8) -> float:
        return self.cost(cores).macs_per_cycle

    def utilization(self, cores: int = 8) -> Dict[str, float]:
        """Compute / L3 activity factors used by the power model."""
        cost = self.cost(cores)
        total = cost.total_cycles
        if total <= 0:
            return {"compute": 0.0, "l3": 0.0}
        compute_fraction = min(cost.compute_cycles / total, 1.0)
        l3_cycles = 0.0
        for layer_cost, layer in zip(cost.layers, self.layers):
            placement = self.memory_plan.placement(layer.name)
            if placement.weight_level == "L3":
                l3_cycles += min(layer_cost.dma_cycles, layer_cost.total_cycles)
        return {"compute": compute_fraction, "l3": min(l3_cycles / total, 1.0)}

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "num_layers": len(self.layers),
            "total_macs": self.total_macs,
            "weight_bytes": self.weight_bytes,
            "l2_used_bytes": self.memory_plan.l2_used_bytes,
            "l3_used_bytes": self.memory_plan.l3_used_bytes,
            "layers_in_l3": self.memory_plan.layers_in_l3,
        }


def deploy_graph(name: str, layers: List[LayerSpec],
                 config: Optional[GAP9Config] = None,
                 weight_bits: int = 8, activation_bits: int = 8,
                 fold_bn: bool = True) -> DeploymentPlan:
    """Deploy a layer graph onto GAP9 and return the deployment plan."""
    config = config or GAP9Config()
    layers = fold_batchnorm(layers) if fold_bn else list(layers)
    memory_plan = plan_memory(layers, config, weight_bits, activation_bits)
    return DeploymentPlan(name=name, layers=layers, memory_plan=memory_plan,
                          config=config, weight_bits=weight_bits,
                          activation_bits=activation_bits)


def deploy_backbone(config_name: str, gap9: Optional[GAP9Config] = None,
                    weight_bits: int = 8, activation_bits: int = 8,
                    include_fcr: bool = False) -> DeploymentPlan:
    """Deploy a registered backbone configuration (paper profile) onto GAP9."""
    from ..models.registry import get_config
    backbone_config = get_config(config_name)
    layers = backbone_config.layer_specs(include_fcr=include_fcr)
    return deploy_graph(config_name, layers, gap9, weight_bits, activation_bits)
