"""Convolution and pooling primitives implemented with im2col.

The convolution kernel supports grouped convolutions so the depthwise
convolutions of MobileNetV2 share the same code path as dense convolutions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .tensor import Function


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Expand sliding windows of ``x`` (NCHW) into a column tensor.

    Returns an array of shape ``(N, C, kh, kw, out_h, out_w)``.
    """
    n, c, h, w = x.shape
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                   mode="constant")
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    return cols


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int],
           kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Inverse of :func:`im2col`: accumulate columns back into an image."""
    n, c, h, w = x_shape
    h_padded, w_padded = h + 2 * padding, w + 2 * padding
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    image = np.zeros((n, c, h_padded, w_padded), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            image[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return image[:, :, padding:h_padded - padding, padding:w_padded - padding]
    return image


class Conv2dFunction(Function):
    """Grouped 2-D convolution over NCHW inputs.

    Three execution paths are used, all mathematically equivalent:

    * dense convolutions (``groups == 1``): a batched GEMM over the im2col
      matrix (fastest path, hits BLAS),
    * depthwise convolutions (``groups == in_channels == out_channels``):
      an elementwise multiply-and-reduce over the kernel window,
    * general grouped convolutions: an einsum over per-group blocks.
    """

    def forward(self, x, weight, stride=1, padding=0, groups=1):
        n, c, h, w = x.shape
        out_c, c_per_group, kh, kw = weight.shape
        if c != c_per_group * groups:
            raise ValueError(
                f"input channels ({c}) incompatible with weight shape {weight.shape} "
                f"and groups={groups}")
        out_h = conv_output_size(h, kh, stride, padding)
        out_w = conv_output_size(w, kw, stride, padding)
        spatial = out_h * out_w

        # Fast path: a 1x1 stride-1 dense convolution is a plain channel-mixing
        # matmul; skipping im2col avoids copying the whole activation twice.
        pointwise = (kh == 1 and kw == 1 and stride == 1 and padding == 0
                     and groups == 1)
        if pointwise:
            x_mat = x.reshape(n, c, spatial)
            weight_mat = weight.reshape(out_c, c)
            out = np.matmul(weight_mat, x_mat).reshape(n, out_c, out_h, out_w)
            self.save_for_backward(x_mat, weight_mat, x.shape, weight.shape,
                                   stride, padding, groups, (out_h, out_w), "pointwise")
            return out

        cols = im2col(x, kh, kw, stride, padding)
        depthwise = groups == c and groups == out_c

        if groups == 1:
            cols_mat = cols.reshape(n, c * kh * kw, spatial)
            weight_mat = weight.reshape(out_c, c * kh * kw)
            out = np.matmul(weight_mat, cols_mat)
        elif depthwise:
            cols_dw = cols.reshape(n, c, kh * kw, spatial)
            weight_dw = weight.reshape(c, kh * kw)
            out = np.einsum("nckl,ck->ncl", cols_dw, weight_dw)
        else:
            cols_g = cols.reshape(n, groups, c_per_group * kh * kw, spatial)
            weight_g = weight.reshape(groups, out_c // groups, c_per_group * kh * kw)
            out = np.einsum("gok,ngkl->ngol", weight_g, cols_g, optimize=True)
        out = np.ascontiguousarray(out).reshape(n, out_c, out_h, out_w)

        self.save_for_backward(cols, weight, x.shape, weight.shape,
                               stride, padding, groups, (out_h, out_w),
                               "depthwise" if depthwise else "grouped" if groups > 1 else "dense")
        return out

    def backward(self, grad):
        (cols, weight, x_shape, w_shape, stride, padding, groups,
         out_size, path) = self.saved
        n, c = x_shape[0], x_shape[1]
        out_c, c_per_group, kh, kw = w_shape
        out_h, out_w = out_size
        spatial = out_h * out_w
        depthwise = path == "depthwise"

        if path == "pointwise":
            x_mat, weight_mat = cols, weight
            grad_mat = grad.reshape(n, out_c, spatial)
            grad_weight = np.tensordot(grad_mat, x_mat,
                                       axes=((0, 2), (0, 2))).reshape(w_shape)
            grad_x = np.matmul(weight_mat.T, grad_mat).reshape(x_shape)
            return grad_x, grad_weight

        if groups == 1:
            cols_mat = cols.reshape(n, c * kh * kw, spatial)
            weight_mat = weight.reshape(out_c, c * kh * kw)
            grad_mat = grad.reshape(n, out_c, spatial)
            grad_weight = np.tensordot(grad_mat, cols_mat,
                                       axes=((0, 2), (0, 2))).reshape(w_shape)
            grad_cols = np.matmul(weight_mat.T, grad_mat)
        elif depthwise:
            cols_dw = cols.reshape(n, c, kh * kw, spatial)
            weight_dw = weight.reshape(c, kh * kw)
            grad_dw = grad.reshape(n, c, spatial)
            grad_weight = np.einsum("ncl,nckl->ck", grad_dw, cols_dw).reshape(w_shape)
            grad_cols = grad_dw[:, :, None, :] * weight_dw[None, :, :, None]
        else:
            cols_g = cols.reshape(n, groups, c_per_group * kh * kw, spatial)
            weight_g = weight.reshape(groups, out_c // groups, c_per_group * kh * kw)
            grad_g = grad.reshape(n, groups, out_c // groups, spatial)
            grad_weight = np.einsum("ngol,ngkl->gok", grad_g, cols_g,
                                    optimize=True).reshape(w_shape)
            grad_cols = np.einsum("gok,ngol->ngkl", weight_g, grad_g, optimize=True)

        grad_cols = grad_cols.reshape(n, c, kh, kw, out_h, out_w)
        grad_x = col2im(grad_cols, x_shape, kh, kw, stride, padding)
        return grad_x, grad_weight


class AvgPool2dFunction(Function):
    """Average pooling over square windows."""

    def forward(self, x, kernel_size, stride):
        n, c, h, w = x.shape
        out_h = conv_output_size(h, kernel_size, stride, 0)
        out_w = conv_output_size(w, kernel_size, stride, 0)
        cols = im2col(x, kernel_size, kernel_size, stride, 0)
        out = cols.mean(axis=(2, 3))
        self.save_for_backward(x.shape, kernel_size, stride, (out_h, out_w))
        return out

    def backward(self, grad):
        x_shape, kernel_size, stride, out_size = self.saved
        n, c, _, _ = x_shape
        out_h, out_w = out_size
        window = kernel_size * kernel_size
        grad_cols = np.broadcast_to(
            grad[:, :, None, None, :, :] / window,
            (n, c, kernel_size, kernel_size, out_h, out_w)).astype(grad.dtype)
        grad_x = col2im(grad_cols, x_shape, kernel_size, kernel_size, stride, 0)
        return (grad_x,)


class MaxPool2dFunction(Function):
    """Max pooling over square windows."""

    def forward(self, x, kernel_size, stride):
        n, c, h, w = x.shape
        out_h = conv_output_size(h, kernel_size, stride, 0)
        out_w = conv_output_size(w, kernel_size, stride, 0)
        cols = im2col(x, kernel_size, kernel_size, stride, 0)
        flat = cols.reshape(n, c, kernel_size * kernel_size, out_h, out_w)
        argmax = flat.argmax(axis=2)
        out = np.take_along_axis(flat, argmax[:, :, None, :, :], axis=2)[:, :, 0]
        self.save_for_backward(x.shape, kernel_size, stride, argmax, (out_h, out_w))
        return out

    def backward(self, grad):
        x_shape, kernel_size, stride, argmax, out_size = self.saved
        n, c, _, _ = x_shape
        out_h, out_w = out_size
        grad_flat = np.zeros((n, c, kernel_size * kernel_size, out_h, out_w),
                             dtype=grad.dtype)
        np.put_along_axis(grad_flat, argmax[:, :, None, :, :],
                          grad[:, :, None, :, :], axis=2)
        grad_cols = grad_flat.reshape(n, c, kernel_size, kernel_size, out_h, out_w)
        grad_x = col2im(grad_cols, x_shape, kernel_size, kernel_size, stride, 0)
        return (grad_x,)
