"""Sampled request tracing with cross-process span propagation.

One traced request through the serving stack yields a parented span tree::

    server.submit                      (coordinator, root)
    └── batcher.coalesce               (coordinator)
        └── shard.dispatch             (coordinator)
            └── worker.execute         (worker process)
                ├── engine.run         (worker process, backbone)
                └── engine.run         (worker process, FCR)

The sampling decision is made exactly once, at the root
(:meth:`Tracer.start_trace`); everything below inherits it, so an unsampled
request pays a single ``random() < rate`` comparison and nothing else.  Span
context — a ``(trace_id, span_id)`` pair — crosses the process boundary
inside the transport control frames (see
:func:`repro.serve.transport.pack_payload`); the worker finishes its spans
locally and ships them back attached to the result frame, where the
coordinator's tracer :meth:`adopts <Tracer.adopt>` them into one export
stream.  A worker that dies mid-request never returns its spans; the engine
then records a synthetic ``worker.execute`` span with ``status="failed"`` so
the trace tree is complete even for the request that hit the corpse.

Spans export as JSON lines (:class:`JsonlSpanExporter`) — one dict per line,
greppable and loadable with nothing but the standard library — or into
memory for tests (:class:`InMemorySpanExporter`).

:func:`ambient_span` is the zero-coupling hook for lower layers: the worker
activates its ``worker.execute`` span as the *ambient* span, and
:class:`~repro.runtime.engine.InferenceEngine` opens an ``engine.run`` child
under whatever span is ambient — or does nothing, at the cost of one
context-variable read, when tracing is off.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, List, Optional, Sequence, Tuple

#: (tracer, span) the current execution context is inside, if any.
_AMBIENT: ContextVar[Optional[Tuple["Tracer", "Span"]]] = ContextVar(
    "repro_obs_ambient_span", default=None)


def _new_id() -> str:
    return os.urandom(8).hex()


class Span:
    """One timed operation of a trace; export with :meth:`to_dict`."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "process",
                 "start_s", "duration_s", "status", "error", "attrs")

    def __init__(self, trace_id: str, span_id: str, parent_id: Optional[str],
                 name: str, process: str, start_s: float,
                 attrs: Optional[dict] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.process = process
        self.start_s = start_s
        self.duration_s = 0.0
        self.status = "ok"
        self.error = None
        self.attrs = attrs or {}

    @property
    def context(self) -> Tuple[str, str]:
        """The ``(trace_id, span_id)`` pair to propagate to children."""
        return (self.trace_id, self.span_id)

    def to_dict(self) -> dict:
        record = {"trace_id": self.trace_id, "span_id": self.span_id,
                  "parent_id": self.parent_id, "name": self.name,
                  "process": self.process, "start_s": self.start_s,
                  "duration_s": self.duration_s, "status": self.status}
        if self.error:
            record["error"] = self.error
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class InMemorySpanExporter:
    """Collects finished spans in memory (tests, worker-side buffering)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._spans: List[dict] = []

    def export(self, span: dict) -> None:
        with self._lock:
            self._spans.append(span)

    @property
    def spans(self) -> List[dict]:
        with self._lock:
            return list(self._spans)

    def drain(self) -> List[dict]:
        """Return and clear the buffered spans (the worker flush path)."""
        with self._lock:
            spans, self._spans = self._spans, []
        return spans


class JsonlSpanExporter:
    """Appends finished spans to a file, one JSON object per line.

    The file is opened lazily on the first export and the handle is kept —
    exporting a span is one buffered ``write``, not an open/append/close
    cycle per span.  That makes :meth:`flush` / :meth:`close` part of the
    contract: spans still sitting in the stdio buffer — exactly the ones
    covering a shutdown — reach disk only when the owner flushes.
    :meth:`Server.close` does so through :meth:`Tracer.close`; a span
    exported *after* close reopens the file in append mode, so a straggling
    done-callback degrades to the slow path instead of raising.
    """

    def __init__(self, path):
        self.path = str(path)
        self._lock = threading.Lock()
        self._stream = None

    def export(self, span: dict) -> None:
        line = json.dumps(span, sort_keys=True, default=str)
        with self._lock:
            if self._stream is None or self._stream.closed:
                self._stream = open(self.path, "a", encoding="utf-8")
            self._stream.write(line + "\n")

    def flush(self) -> None:
        """Push buffered spans to disk without closing the file."""
        with self._lock:
            if self._stream is not None and not self._stream.closed:
                self._stream.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._stream is not None and not self._stream.closed:
                self._stream.close()


def read_jsonl_spans(path) -> List[dict]:
    """Load spans written by :class:`JsonlSpanExporter`."""
    spans = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


class Tracer:
    """Creates, finishes and exports spans for one process.

    ``sample_rate`` only gates :meth:`start_trace` (the root); child spans
    via :meth:`start_span` are always recorded because their parent already
    won the sampling draw.  With ``sample_rate=0`` (the default) the tracer
    is inert: ``start_trace`` is one comparison returning ``None``.
    """

    def __init__(self, sample_rate: float = 0.0, exporter=None,
                 process: str = "coordinator",
                 clock=time.time):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        self.sample_rate = sample_rate
        self.exporter = exporter if exporter is not None \
            else InMemorySpanExporter()
        self.process = process
        self._clock = clock

    # ------------------------------------------------------------------
    def start_trace(self, name: str,
                    attrs: Optional[dict] = None) -> Optional[Span]:
        """Root span of a new trace, or ``None`` when the draw loses."""
        if self.sample_rate <= 0.0 or (self.sample_rate < 1.0
                                       and random.random() >= self.sample_rate):
            return None
        trace_id = _new_id()
        return Span(trace_id, _new_id(), None, name, self.process,
                    self._clock(), attrs)

    def start_span(self, name: str, parent: Optional[Span] = None,
                   ctx: Optional[Sequence[str]] = None,
                   start_s: Optional[float] = None,
                   attrs: Optional[dict] = None) -> Span:
        """Child span under ``parent`` (same-process) or ``ctx`` (remote)."""
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif ctx is not None:
            trace_id, parent_id = str(ctx[0]), str(ctx[1])
        else:
            trace_id, parent_id = _new_id(), None
        return Span(trace_id, _new_id(), parent_id, name, self.process,
                    self._clock() if start_s is None else start_s, attrs)

    def end_span(self, span: Optional[Span], status: str = "ok",
                 error: Optional[str] = None,
                 end_s: Optional[float] = None) -> None:
        """Finalize and export; a ``None`` span (unsampled) is a no-op."""
        if span is None:
            return
        end = self._clock() if end_s is None else end_s
        span.duration_s = max(0.0, end - span.start_s)
        span.status = status
        span.error = error
        self.exporter.export(span.to_dict())

    def record_span(self, name: str, ctx: Sequence[str], start_s: float,
                    status: str = "ok", error: Optional[str] = None,
                    attrs: Optional[dict] = None) -> None:
        """One-shot span (start + immediate end) — the synthetic-span path
        used when the real owner of the span can no longer report it, e.g. a
        ``worker.execute`` marked ``failed`` after a SIGKILL."""
        span = self.start_span(name, ctx=ctx, start_s=start_s, attrs=attrs)
        self.end_span(span, status=status, error=error)

    def adopt(self, span_dicts: Sequence[dict]) -> None:
        """Export spans finished in another process (already dicts)."""
        for span in span_dicts:
            if isinstance(span, dict):
                self.exporter.export(span)

    def flush(self) -> None:
        """Flush the exporter's buffers, if it has any (duck-typed: an
        in-memory exporter has nothing to flush and nothing to implement)."""
        flush = getattr(self.exporter, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        """Flush and close the exporter, if it supports it.  Called by
        ``Server.close()`` so a file-backed exporter cannot lose the tail
        of the trace — the spans covering the shutdown itself — in a
        never-flushed buffer."""
        close = getattr(self.exporter, "close", None)
        if close is not None:
            close()
        else:
            self.flush()

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None,
             ctx: Optional[Sequence[str]] = None,
             attrs: Optional[dict] = None):
        span = self.start_span(name, parent=parent, ctx=ctx, attrs=attrs)
        try:
            yield span
        except Exception as exc:
            self.end_span(span, status="error",
                          error=f"{type(exc).__name__}: {exc}")
            raise
        else:
            self.end_span(span)


# ---------------------------------------------------------------------------
# Ambient span: how layers that know nothing about each other nest spans
# ---------------------------------------------------------------------------
def activate(tracer: Tracer, span: Span):
    """Install ``span`` as the ambient span; returns the reset token."""
    return _AMBIENT.set((tracer, span))


def deactivate(token) -> None:
    _AMBIENT.reset(token)


def current_span() -> Optional[Span]:
    state = _AMBIENT.get()
    return state[1] if state is not None else None


@contextmanager
def ambient_span(name: str, attrs: Optional[dict] = None, attrs_fn=None):
    """Open a child of the ambient span, or do nothing if there is none.

    This is what :meth:`InferenceEngine.run` calls: in a traced worker the
    engine's execution shows up as an ``engine.run`` span under
    ``worker.execute``; everywhere else the cost is a single context-variable
    read.  ``attrs_fn`` is a zero-argument callable evaluated only when a
    span is actually opened — attribute construction is free on the
    untraced path.
    """
    state = _AMBIENT.get()
    if state is None:
        yield None
        return
    tracer, parent = state
    if attrs_fn is not None:
        attrs = dict(attrs or (), **attrs_fn())
    span = tracer.start_span(name, parent=parent, attrs=attrs)
    token = _AMBIENT.set((tracer, span))
    try:
        yield span
    except Exception as exc:
        tracer.end_span(span, status="error",
                        error=f"{type(exc).__name__}: {exc}")
        raise
    else:
        tracer.end_span(span)
    finally:
        _AMBIENT.reset(token)


def span_tree(spans: Sequence[dict]) -> Dict[Optional[str], List[dict]]:
    """Group exported span dicts by ``parent_id`` (a test/debug helper)."""
    children: Dict[Optional[str], List[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)
    return children
