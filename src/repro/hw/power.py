"""Power and energy model of the GAP9 deployment.

Average power is decomposed into a static baseline (fabric controller, pads,
leakage), the dynamic power of the compute cluster (proportional to how busy
the worker cores are), and the external-memory interface power (proportional
to the fraction of time spent streaming from L3).  The three coefficients are
calibrated against Table IV of the paper and scale with V²·f for other
operating points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .soc import GAP9Config, OperatingPoint


@dataclass
class PowerBreakdown:
    """Average power of one operation phase."""

    base_mw: float
    cluster_mw: float
    l3_mw: float

    @property
    def total_mw(self) -> float:
        return self.base_mw + self.cluster_mw + self.l3_mw


@dataclass
class EnergyReport:
    """Latency / power / energy of one measured operation (Table IV row)."""

    operation: str
    backbone: str
    time_ms: float
    power_mw: float
    energy_mj: float
    cycles: float = 0.0
    macs: int = 0

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.cycles if self.cycles else 0.0

    def as_row(self) -> dict:
        return {
            "operation": self.operation,
            "backbone": self.backbone,
            "time_ms": self.time_ms,
            "power_mw": self.power_mw,
            "energy_mj": self.energy_mj,
        }


class PowerModel:
    """Average-power estimator for a compute phase on GAP9."""

    def __init__(self, config: Optional[GAP9Config] = None):
        self.config = config or GAP9Config()

    def average_power_mw(self, compute_utilization: float,
                         l3_utilization: float,
                         cores: Optional[int] = None,
                         operating_point: Optional[OperatingPoint] = None
                         ) -> PowerBreakdown:
        """Average power given activity factors in [0, 1]."""
        power = self.config.power
        point = operating_point or self.config.operating_point
        scale = power.scale_factor(point)
        cores = cores if cores is not None else self.config.worker_cores
        core_fraction = cores / self.config.worker_cores
        cluster = power.cluster_active_mw * scale * core_fraction * \
            min(max(compute_utilization, 0.0), 1.0)
        l3 = power.l3_active_mw * scale * min(max(l3_utilization, 0.0), 1.0)
        base = power.base_mw * (0.6 + 0.4 * scale)
        return PowerBreakdown(base_mw=base, cluster_mw=cluster, l3_mw=l3)

    def energy_mj(self, time_ms: float, power_mw: float) -> float:
        """Energy in millijoules of a phase lasting ``time_ms`` at ``power_mw``."""
        return time_ms * power_mw / 1e3

    def report(self, operation: str, backbone: str, cycles: float,
               compute_utilization: float, l3_utilization: float,
               macs: int = 0, cores: Optional[int] = None) -> EnergyReport:
        """Build a Table IV-style row from a cycle count and activity factors."""
        time_ms = self.config.cycles_to_ms(cycles)
        power = self.average_power_mw(compute_utilization, l3_utilization, cores)
        return EnergyReport(operation=operation, backbone=backbone,
                            time_ms=time_ms, power_mw=power.total_mw,
                            energy_mj=self.energy_mj(time_ms, power.total_mw),
                            cycles=cycles, macs=macs)


def combine_reports(operation: str, backbone: str, reports) -> EnergyReport:
    """Compose sequential phases into one report (time/energy add up)."""
    reports = list(reports)
    time_ms = sum(report.time_ms for report in reports)
    energy_mj = sum(report.energy_mj for report in reports)
    cycles = sum(report.cycles for report in reports)
    macs = sum(report.macs for report in reports)
    power = 1e3 * energy_mj / time_ms if time_ms else 0.0
    return EnergyReport(operation=operation, backbone=backbone, time_ms=time_ms,
                        power_mw=power, energy_mj=energy_mj, cycles=cycles,
                        macs=macs)
