#!/usr/bin/env python3
"""Estimate the on-device cost of O-FSCIL on the GAP9 microcontroller.

Uses the GAP9 simulator (memory hierarchy + cycle + power models calibrated
against the paper's measurements) to answer the deployment questions of
Section V / Table IV / Fig. 2:

* How long does a backbone inference take, and at what energy?
* How expensive is learning a new class online (the "EM update")?
* What does the optional FCR fine-tuning cost in comparison?
* How well does each operation parallelize over the 8 worker cores?
* How much memory does the explicit memory need at reduced precision?

Run:  python examples/gap9_deployment.py [--backbone mobilenetv2_x4] [--shots 5]
"""

import argparse

from repro.hw import DeploymentPlan, GAP9Profiler, format_table4
from repro.models import get_config, table1_rows
from repro.quant import em_memory_kb
from repro.report import format_table
from repro.runtime import compile_backbone


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backbone", default="mobilenetv2_x4",
                        choices=("mobilenetv2", "mobilenetv2_x2",
                                 "mobilenetv2_x4", "resnet12", "resnet20"))
    parser.add_argument("--shots", type=int, default=5)
    parser.add_argument("--finetune-epochs", type=int, default=100)
    parser.add_argument("--classes", type=int, default=100,
                        help="number of classes stored in the explicit memory")
    args = parser.parse_args()

    profiler = GAP9Profiler()

    print("=== Backbone complexity (Table I) ===")
    rows = table1_rows()
    print(format_table(
        ["Backbone", "d_a", "d_p", "Params [M]", "MACs [M]"],
        [[r["name"], r["d_a"], r["d_p"], round(r["params_m"], 2), round(r["macs_m"], 1)]
         for r in rows]))

    print("\n=== Deployment summary ===")
    plan = profiler.deployment(args.backbone)
    summary = plan.summary()
    print(f"{args.backbone}: {summary['num_layers']} layers, "
          f"{summary['total_macs'] / 1e6:.1f} M MACs, "
          f"{summary['weight_bytes'] / 1e6:.2f} MB int8 weights "
          f"({summary['l2_used_bytes'] / 1e6:.2f} MB in L2, "
          f"{summary['l3_used_bytes'] / 1e6:.2f} MB spilled to L3, "
          f"{summary['layers_in_l3']} layers stream weights from L3)")

    print("\n=== One folded graph: runtime plan -> GAP9 cost model ===")
    config = get_config(args.backbone)
    backbone = config.build(seed=0)
    backbone.eval()
    compiled = compile_backbone(backbone)
    from_plan = DeploymentPlan.from_plan(
        compiled, input_hw=(config.input_size, config.input_size))
    print(f"compiled runtime plan ({len(compiled)} steps, BN folded once) "
          f"deploys to {from_plan.total_macs / 1e6:.1f} M MACs / "
          f"{from_plan.weight_bytes / 1e6:.2f} MB int8 weights — "
          f"{'matches' if from_plan.total_macs == plan.total_macs else 'DIFFERS FROM'} "
          f"the spec-path deployment, from the same folded graph the host "
          f"runtime executes.")

    print("\n=== Per-class cost (Table IV) ===")
    print(format_table4(profiler.table4(shots=args.shots,
                                        finetune_epochs=args.finetune_epochs)))

    em = profiler.profile_em_update(args.backbone, shots=args.shots)
    print(f"\nLearning one new class on {args.backbone}: {em.time_ms:.0f} ms, "
          f"{em.energy_mj:.1f} mJ — i.e. roughly "
          f"{1000.0 / em.time_ms:.1f} new classes per second within a "
          f"{em.power_mw:.0f} mW envelope.")

    print("\n=== Micro-batched inference (runtime deployment) ===")
    batch_rows = []
    for batch in (1, 2, 4, 8, 16):
        report = profiler.profile_batched_inference(args.backbone, batch=batch)
        batch_rows.append([batch, round(report.time_ms / batch, 2),
                           round(profiler.batched_speedup(args.backbone, batch), 2)])
    print(format_table(["micro-batch", "ms / sample", "speedup vs batch-1"],
                       batch_rows))
    print("(weight DMA and layer launch overhead amortize across the batch, "
          "mirroring the host-side repro.runtime engine)")

    print("\n=== Parallelization (Fig. 2) ===")
    curves = profiler.fig2_macs_per_cycle()
    table_rows = []
    for name, series in curves["backbone"].items():
        table_rows.append([f"backbone {name}"] + [round(v, 2) for v in series])
    table_rows.append(["FCR"] + [round(v, 2) for v in list(curves["fcr"].values())[0]])
    table_rows.append(["FCR finetune"] +
                      [round(v, 2) for v in list(curves["finetune"].values())[0]])
    print(format_table(["operation", "1 core", "2 cores", "4 cores", "8 cores"],
                       table_rows))

    print("\n=== Explicit memory footprint (Fig. 3 memory axis) ===")
    config = get_config(args.backbone)
    footprint_rows = [[bits, round(em_memory_kb(args.classes, config.prototype_dim,
                                                bits), 1)]
                      for bits in (32, 8, 4, 3, 2, 1)]
    print(format_table(["prototype bits", f"EM size for {args.classes} classes [kB]"],
                       footprint_rows))
    print("\n(3-bit prototypes store 100 classes in 9.6 kB — the paper's figure.)")


if __name__ == "__main__":
    main()
