"""GAP9 system-on-chip description.

The simulator models the parts of GAP9 that determine O-FSCIL's latency and
energy: the 9-core compute cluster (8 worker cores + 1 orchestrator), the
L1 / L2 / on-board L3 memory hierarchy with DMA engines, and the
voltage/frequency operating point used by the paper (650 mV, 240 MHz — the
most energy-efficient point of the device).

All throughput and power constants are *calibrated* against the measurements
the paper reports (Table IV, Fig. 2); they are documented here so the cost
model is transparent and adjustable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class OperatingPoint:
    """Voltage/frequency operating point of the cluster."""

    name: str = "efficient"
    voltage_v: float = 0.65
    frequency_hz: float = 240e6

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.frequency_hz


#: Operating points exposed by the GAP9 product brief (approximate).
OPERATING_POINTS: Dict[str, OperatingPoint] = {
    "efficient": OperatingPoint("efficient", voltage_v=0.65, frequency_hz=240e6),
    "performance": OperatingPoint("performance", voltage_v=0.80, frequency_hz=370e6),
    "low_power": OperatingPoint("low_power", voltage_v=0.60, frequency_hz=150e6),
}


@dataclass
class MemoryConfig:
    """Sizes and bandwidths of the GAP9 memory hierarchy."""

    l1_bytes: int = 128 * 1024          # shared cluster TCDM
    l2_bytes: int = 1536 * 1024         # 1.5 MB interleaved L2
    l3_bytes: int = 8 * 1024 * 1024     # external octo-SPI RAM
    #: sustained DMA bandwidth between L2 and the cluster L1 [bytes/cycle]
    l2_l1_bandwidth: float = 8.0
    #: sustained bandwidth when streaming from the external L3 [bytes/cycle]
    l3_l2_bandwidth: float = 0.45
    #: fixed DMA programming / synchronization cost per transfer [cycles]
    dma_setup_cycles: int = 150


@dataclass
class ComputeConfig:
    """Per-core sustained throughput of the int8 kernels [MAC/cycle/core].

    Values are calibrated so the aggregate MACs/cycle of the three MobileNetV2
    variants reproduces Fig. 2 (≈6.5 for x4 at 8 cores, lower for the more
    strided variants) and the absolute latencies of Table IV.
    """

    conv_macs_per_cycle: float = 0.95
    dwconv_macs_per_cycle: float = 0.30
    linear_macs_per_cycle: float = 0.95
    #: effective efficiency of the tiled FCR fine-tuning GEMMs (forward +
    #: weight gradient with poor L1 reuse); calibrated against Fig. 2 (right).
    finetune_efficiency: float = 0.30
    #: per-layer fixed cost: kernel launch, barriers, im2col / data
    #: marshalling on the small CIFAR-sized feature maps [cycles]
    layer_overhead_cycles: int = 50000
    #: additional per-layer overhead that grows with the number of cores
    #: (fork/join, cache contention) [cycles/core]
    per_core_overhead_cycles: int = 600


@dataclass
class PowerConfig:
    """Power model parameters [mW] at the efficient operating point.

    ``P = base + cluster * compute_utilization + l3 * l3_utilization``,
    calibrated against Table IV (backbone ≈ 44 mW, FCR ≈ 48 mW,
    fine-tuning ≈ 50 mW) and scaled with V²f for other operating points.
    """

    base_mw: float = 17.5
    cluster_active_mw: float = 29.0
    l3_active_mw: float = 31.5
    reference_voltage_v: float = 0.65
    reference_frequency_hz: float = 240e6

    def scale_factor(self, operating_point: OperatingPoint) -> float:
        """Dynamic-power scaling V^2 * f relative to the reference point."""
        voltage_ratio = (operating_point.voltage_v / self.reference_voltage_v) ** 2
        frequency_ratio = operating_point.frequency_hz / self.reference_frequency_hz
        return voltage_ratio * frequency_ratio


@dataclass
class GAP9Config:
    """Complete configuration of the simulated GAP9 device."""

    cluster_cores: int = 9
    worker_cores: int = 8
    operating_point: OperatingPoint = field(
        default_factory=lambda: OPERATING_POINTS["efficient"])
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    compute: ComputeConfig = field(default_factory=ComputeConfig)
    power: PowerConfig = field(default_factory=PowerConfig)

    @property
    def frequency_hz(self) -> float:
        return self.operating_point.frequency_hz

    def cycles_to_ms(self, cycles: float) -> float:
        return 1e3 * self.operating_point.cycles_to_seconds(cycles)


def default_gap9() -> GAP9Config:
    """The configuration used throughout the paper's measurements."""
    return GAP9Config()
