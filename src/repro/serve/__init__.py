"""Sharded multi-worker serving on top of the batched inference runtime.

:mod:`repro.runtime` compiles a model into flat op plans and serves it from
one process; this package scales that out to a pool of worker processes:

* :mod:`repro.serve.snapshot` — freezes compiled plans and prototype state
  into fully picklable, module-ref-free snapshots that can cross process
  boundaries (opaque fallbacks are inlined or rejected with an explicit
  :class:`PlanSerializationError`);
* :mod:`repro.serve.sharded` — :class:`ShardedEngine`, a multiprocessing
  worker pool where each worker owns a plan replica plus its own buffer
  cache and executes micro-batches pushed by the coordinator;
* :mod:`repro.serve.server` — :class:`Server`, the dynamic batcher: it
  coalesces single-sample requests under a latency budget, round-robins
  micro-batches over the shards, and keeps worker prototype replicas in
  sync with the explicit memory through its ``version`` counter.

Typical use::

    from repro.serve import Server

    with Server(model, num_workers=4) as server:   # or model.serve(4)
        labels = server.predict(images)            # == BatchedPredictor, bit-for-bit
        server.learn_class(shots, class_id=42)     # broadcast to every worker
        future = server.submit(image)              # dynamic-batched single query
        print(server.stats_dict())
"""

from .server import DEFAULT_MAX_LATENCY_S, Server
from .sharded import (
    DEFAULT_NUM_WORKERS,
    DEFAULT_START_METHOD,
    RemoteWorkerError,
    ShardedEngine,
)
from .snapshot import (
    ModelSnapshot,
    PlanSerializationError,
    PlanSnapshot,
    PrototypeState,
    snapshot_model,
    snapshot_plan,
    snapshot_prototypes,
)
from .stats import ServeStats

__all__ = [
    "Server",
    "DEFAULT_MAX_LATENCY_S",
    "ShardedEngine",
    "RemoteWorkerError",
    "DEFAULT_NUM_WORKERS",
    "DEFAULT_START_METHOD",
    "ModelSnapshot",
    "PlanSnapshot",
    "PrototypeState",
    "PlanSerializationError",
    "snapshot_plan",
    "snapshot_model",
    "snapshot_prototypes",
    "ServeStats",
]
