"""Serving statistics: throughput counters, queue depth, batch histogram."""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict

#: Batch latencies retained for the percentile window (bounded so a
#: long-running server's stats surface stays O(1) in memory).
LATENCY_WINDOW = 512

#: Smoothing factor of the exponential moving average the admission
#: controller's SLO estimate reads (higher = reacts faster to load shifts).
EMA_ALPHA = 0.2


def _percentile(samples, fraction: float) -> float:
    """Nearest-rank percentile of an unsorted sample list (0.0 if empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


@dataclass
class ServeStats:
    """Thread-safe counters for one :class:`~repro.serve.server.Server`.

    ``batch_size_histogram`` maps coalesced-batch size to occurrence count —
    the shape of this histogram is the dynamic batcher's report card: a
    saturating workload should pile mass at ``max_batch``, a trickle of
    single requests should sit at 1 with ``max_latency`` bounding the wait.

    ``requests_shed`` counts submits rejected by admission control
    (:class:`~repro.serve.server.ServerOverloaded`); the shed *rate* against
    accepted requests is the overload report card.  Batch latencies feed
    both a bounded percentile window (p50/p99 in the stats surface) and the
    EMA estimate the latency-SLO gate uses.
    """

    single_requests: int = 0
    batch_requests: int = 0
    samples: int = 0
    batches_dispatched: int = 0
    batch_size_histogram: Dict[int, int] = field(default_factory=dict)
    max_queue_depth: int = 0
    prototype_broadcasts: int = 0
    requests_shed: int = 0
    started_at: float = field(default_factory=time.perf_counter)
    _batch_latencies: Deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW), repr=False)
    _ema_batch_latency_s: float = field(default=0.0, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # ------------------------------------------------------------------
    def observe_submit(self, queue_depth: int) -> None:
        with self._lock:
            self.single_requests += 1
            if queue_depth > self.max_queue_depth:
                self.max_queue_depth = queue_depth

    def observe_batch_request(self, num_samples: int) -> None:
        with self._lock:
            self.batch_requests += 1
            self.samples += num_samples

    def observe_dispatch(self, batch_size: int) -> None:
        with self._lock:
            self.batches_dispatched += 1
            self.samples += batch_size
            self.batch_size_histogram[batch_size] = \
                self.batch_size_histogram.get(batch_size, 0) + 1

    def observe_broadcast(self) -> None:
        with self._lock:
            self.prototype_broadcasts += 1

    def observe_shed(self) -> None:
        with self._lock:
            self.requests_shed += 1

    def observe_batch_latency(self, seconds: float) -> None:
        with self._lock:
            self._batch_latencies.append(seconds)
            if self._ema_batch_latency_s <= 0.0:
                self._ema_batch_latency_s = seconds
            else:
                self._ema_batch_latency_s = (
                    EMA_ALPHA * seconds
                    + (1.0 - EMA_ALPHA) * self._ema_batch_latency_s)

    # ------------------------------------------------------------------
    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self.started_at

    @property
    def samples_per_s(self) -> float:
        elapsed = self.elapsed_s
        return self.samples / elapsed if elapsed > 0 else 0.0

    @property
    def ema_batch_latency_s(self) -> float:
        with self._lock:
            return self._ema_batch_latency_s

    @property
    def shed_rate(self) -> float:
        """Fraction of submit attempts rejected by admission control."""
        with self._lock:
            attempts = self.single_requests + self.requests_shed
            return self.requests_shed / attempts if attempts else 0.0

    def batch_latency_percentiles_ms(self) -> Dict[str, float]:
        with self._lock:
            window = list(self._batch_latencies)
        return {"p50": _percentile(window, 0.50) * 1e3,
                "p99": _percentile(window, 0.99) * 1e3}

    def as_dict(self) -> dict:
        percentiles = self.batch_latency_percentiles_ms()
        with self._lock:
            attempts = self.single_requests + self.requests_shed
            return {
                "single_requests": self.single_requests,
                "batch_requests": self.batch_requests,
                "samples": self.samples,
                "batches_dispatched": self.batches_dispatched,
                "batch_size_histogram": dict(self.batch_size_histogram),
                "max_queue_depth": self.max_queue_depth,
                "prototype_broadcasts": self.prototype_broadcasts,
                "requests_shed": self.requests_shed,
                "shed_rate": (self.requests_shed / attempts
                              if attempts else 0.0),
                "batch_latency_p50_ms": round(percentiles["p50"], 3),
                "batch_latency_p99_ms": round(percentiles["p99"], 3),
                "ema_batch_latency_s": self._ema_batch_latency_s,
                "elapsed_s": self.elapsed_s,
                "samples_per_s": self.samples_per_s,
            }
