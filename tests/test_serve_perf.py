"""Saturation benchmark: sharded multi-worker serving vs a single worker.

Drives a saturating workload through :class:`repro.serve.Server` at two
worker counts, appends the measurements to ``BENCH_serve.json`` at the
repository root (run history, like ``BENCH_runtime.json``), and asserts that
multi-worker serving beats the single-worker baseline by the required
scaling factor.  Both configurations pin one BLAS thread per worker, so the
comparison isolates process-level sharding from library threading.

The scaling assertion needs real hardware parallelism: on a single-core host
(CI sandboxes, cgroup-limited containers) the measurement is still recorded
but the assertion is skipped — the slow CI suite runs on multi-core runners
where it is enforced.

Slow-marked: saturation runs take tens of seconds; the fast suite covers the
serving layer's correctness in ``tests/test_serve.py``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import OFSCIL, OFSCILConfig
from repro.report import append_bench_record
from repro.serve import Server

pytestmark = pytest.mark.slow

BACKBONE = "mobilenetv2_x4_tiny"
SCALING_FLOOR = 1.5
SATURATION_SAMPLES = 768
ASYNC_REQUESTS = 256
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"


@pytest.fixture(scope="module")
def bench_model():
    model = OFSCIL.from_registry(BACKBONE, OFSCILConfig(backbone=BACKBONE),
                                 seed=0)
    model.freeze_feature_extractor()
    rng = np.random.default_rng(0)
    shots = rng.standard_normal((40, 3, 16, 16)).astype(np.float32)
    for class_id in range(8):
        model.learn_class(shots[class_id * 5:(class_id + 1) * 5], class_id)
    return model


def _sync_throughput(model, num_workers: int, images: np.ndarray) -> float:
    """Samples/s of the synchronous batch path at ``num_workers`` shards."""
    with Server(model, num_workers=num_workers) as server:
        server.predict(images[:64])                    # warm caches + queues
        start = time.perf_counter()
        server.predict(images)
        elapsed = time.perf_counter() - start
    return images.shape[0] / elapsed


def test_multi_worker_scaling_beats_single_worker(bench_model):
    cores = len(os.sched_getaffinity(0))
    multi_workers = max(2, min(4, cores))
    rng = np.random.default_rng(1)
    images = rng.standard_normal(
        (SATURATION_SAMPLES, 3, 16, 16)).astype(np.float32)

    # Sanity: sharding must not change results before we time anything.
    reference = bench_model.runtime_predictor().predict(images[:128])
    with Server(bench_model, num_workers=multi_workers) as server:
        np.testing.assert_array_equal(server.predict(images[:128]), reference)

        # Dynamic batcher under a saturating single-sample request flood.
        start = time.perf_counter()
        futures = [server.submit(image) for image in images[:ASYNC_REQUESTS]]
        for future in futures:
            future.result(timeout=300)
        async_elapsed = time.perf_counter() - start
        histogram = server.stats.as_dict()["batch_size_histogram"]

    single_rate = _sync_throughput(bench_model, 1, images)
    multi_rate = _sync_throughput(bench_model, multi_workers, images)
    scaling = multi_rate / single_rate

    record = {
        "backbone": BACKBONE,
        "cores": cores,
        "saturation_samples": SATURATION_SAMPLES,
        "single_worker_samples_per_s": round(single_rate, 1),
        "multi_worker_samples_per_s": round(multi_rate, 1),
        "multi_workers": multi_workers,
        "scaling": round(scaling, 2),
        "scaling_floor": SCALING_FLOOR,
        "scaling_enforced": cores >= 2,
        "async_requests": ASYNC_REQUESTS,
        "async_samples_per_s": round(ASYNC_REQUESTS / async_elapsed, 1),
        "async_batch_size_histogram": {str(size): count
                                       for size, count in sorted(
                                           histogram.items())},
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    append_bench_record(BENCH_PATH, record)

    # The flood must actually have been coalesced into multi-sample batches.
    assert max(histogram) > 1, f"no dynamic batching happened: {histogram}"

    if cores < 2:
        pytest.skip(f"only {cores} core(s) available: multi-worker scaling "
                    f"cannot beat a single worker without hardware "
                    f"parallelism (measured {scaling:.2f}x; recorded in "
                    f"{BENCH_PATH.name})")
    assert scaling >= SCALING_FLOOR, (
        f"{multi_workers}-worker serving is only {scaling:.2f}x a single "
        f"worker (required >= {SCALING_FLOOR}x on {cores} cores); see "
        f"{BENCH_PATH}")


def test_serve_bench_record_is_written_and_valid(bench_model):
    # File-order dependency, mirroring test_runtime_perf: guards the
    # BENCH_serve.json artefact contract.
    data = json.loads(BENCH_PATH.read_text())
    record = data["latest"]
    assert record["backbone"] == BACKBONE
    assert record["single_worker_samples_per_s"] > 0
    assert record["multi_worker_samples_per_s"] > 0
    assert data["history"] and data["history"][-1] == record
