"""Loss functions used by the O-FSCIL training pipeline.

Implements the standard cross-entropy loss (with hard or soft targets, the
latter required for Mixup/CutMix), the multi-margin metalearning loss of
Eq. (4), and the feature-orthogonality regularizer of Eq. (1) from the paper.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from . import functional as F
from .tensor import Tensor


def cross_entropy(logits: Tensor, targets: Union[np.ndarray, Tensor],
                  label_smoothing: float = 0.0) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer or soft targets.

    Args:
        logits: ``(B, C)`` unnormalized class scores.
        targets: either an integer label vector of shape ``(B,)`` or a soft
            target distribution of shape ``(B, C)`` (as produced by Mixup).
        label_smoothing: optional label smoothing factor in ``[0, 1)``.
    """
    num_classes = logits.shape[-1]
    if isinstance(targets, Tensor):
        target_dist = targets.data
    else:
        targets = np.asarray(targets)
        if targets.ndim == 1:
            target_dist = F.one_hot(targets, num_classes)
        else:
            target_dist = targets.astype(np.float32)
    if label_smoothing > 0.0:
        target_dist = (1.0 - label_smoothing) * target_dist + label_smoothing / num_classes
    log_probs = F.log_softmax(logits, axis=-1)
    nll = -(Tensor(target_dist) * log_probs).sum(axis=-1)
    return nll.mean()


def multi_margin_loss(similarities: Tensor, labels: np.ndarray,
                      margin: float = 0.1, num_classes: Optional[int] = None) -> Tensor:
    """Squared multi-margin loss of Eq. (4).

    ``L = sum_{i != gt} max(0, m - l_gt + l_i)^2 / |C0|`` averaged over the
    batch, where ``l`` are (ReLU-sharpened) cosine similarities.

    Args:
        similarities: ``(B, C)`` similarity scores between queries and
            class prototypes.
        labels: ``(B,)`` integer ground-truth labels.
        margin: margin ``m`` (the paper uses 0.1 after a grid search).
        num_classes: the normalizer ``|C0|``; defaults to ``C``.
    """
    labels = np.asarray(labels, dtype=np.int64)
    batch, classes = similarities.shape
    denom = float(num_classes if num_classes is not None else classes)
    one_hot = F.one_hot(labels, classes)
    gt_scores = (similarities * Tensor(one_hot)).sum(axis=-1, keepdims=True)
    violations = (similarities - gt_scores + margin) * Tensor(1.0 - one_hot)
    hinged = F.relu(violations)
    per_sample = (hinged * hinged).sum(axis=-1) / denom
    return per_sample.mean()


def orthogonality_loss(features: Tensor, mode: str = "covariance",
                       normalize: bool = True) -> Tensor:
    """Feature orthogonality regularizer of Eq. (1).

    The paper regularizes ``theta_pb^T theta_pb`` towards the identity, i.e.
    it decorrelates the *feature dimensions* of the batch so that the
    embedding does not collapse onto the low-dimensional hyperplane spanned
    by the base-class classifier, leaving orthogonal directions available for
    future classes.

    Args:
        features: ``(B, d_p)`` batch of prototypical features ``theta_p``.
        mode: ``"covariance"`` (default, the paper's Eq. (1)) penalizes the
            ``d_p x d_p`` dimension-correlation matrix against the identity;
            ``"gram"`` penalizes the ``B x B`` sample Gram matrix against the
            identity (sample-wise orthogonality, as in orthogonal projection
            losses).
        normalize: normalize the matrix rows/columns so the diagonal target
            of 1 is attainable independently of the feature scale.
    """
    if mode not in ("gram", "covariance"):
        raise ValueError(f"unknown orthogonality mode {mode!r}")
    if mode == "covariance":
        # Correlation matrix of feature dimensions: columns are normalized
        # across the batch, so the diagonal is exactly one and off-diagonal
        # entries are inter-dimension correlations in [-1, 1].
        feats = F.l2_normalize(features, axis=0) if normalize else features
        product = feats.transpose() @ feats
        identity = np.eye(feats.shape[1], dtype=np.float32)
    else:
        feats = F.l2_normalize(features, axis=-1) if normalize else features
        product = feats @ feats.transpose()
        identity = np.eye(feats.shape[0], dtype=np.float32)
    diff = product - Tensor(identity)
    return (diff * diff).mean()


def pretraining_loss(logits: Tensor, targets: Union[np.ndarray, Tensor],
                     features: Tensor, ortho_weight: float = 0.1,
                     ortho_mode: str = "covariance",
                     label_smoothing: float = 0.0) -> Tensor:
    """Combined pretraining loss of Eq. (2): ``L_ce + lambda * L_ortho``."""
    ce = cross_entropy(logits, targets, label_smoothing=label_smoothing)
    if ortho_weight <= 0.0:
        return ce
    ortho = orthogonality_loss(features, mode=ortho_mode)
    return ce + ortho_weight * ortho


def mse_loss(prediction: Tensor, target: Union[np.ndarray, Tensor]) -> Tensor:
    """Mean squared error (used by the on-device FCR fine-tuning)."""
    target_t = target if isinstance(target, Tensor) else Tensor(np.asarray(target, dtype=np.float32))
    diff = prediction - target_t
    return (diff * diff).mean()


def cosine_embedding_loss(prediction: Tensor, target: Union[np.ndarray, Tensor]) -> Tensor:
    """1 - cosine similarity, averaged over the batch.

    Used when fine-tuning the FCR to maximize the similarity between the FCR
    output and the bipolarized class prototype.
    """
    target_t = target if isinstance(target, Tensor) else Tensor(np.asarray(target, dtype=np.float32))
    sims = F.cosine_similarity(prediction, target_t, axis=-1)
    return (1.0 - sims).mean()
