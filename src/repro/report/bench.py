"""Benchmark artefact files with an append-only run history.

The perf-regression harnesses (``tests/test_runtime_perf.py``,
``tests/test_serve_perf.py``) record their measurements in JSON files at the
repository root.  Overwriting a single record on every run made the bench
trajectory invisible; :func:`append_bench_record` keeps a bounded history
instead::

    {
      "latest":  {...most recent record...},
      "history": [{...oldest...}, ..., {...most recent...}]
    }

Legacy single-record files (the pre-history format) are migrated in place:
the old record becomes the first history entry.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

#: Default cap on retained history entries per bench file.
DEFAULT_HISTORY_LIMIT = 100


def load_bench(path) -> dict:
    """Read a bench file into ``{"latest": ..., "history": [...]}`` form.

    Missing, unreadable, or legacy files normalise into the same shape so
    callers never branch on the on-disk format.
    """
    path = Path(path)
    if not path.exists():
        return {"latest": None, "history": []}
    try:
        data = json.loads(path.read_text())
    except (ValueError, OSError):
        return {"latest": None, "history": []}
    if not isinstance(data, dict):
        return {"latest": None, "history": []}
    if "history" in data:
        history = [entry for entry in data.get("history", [])
                   if isinstance(entry, dict)]
        latest = data.get("latest") or (history[-1] if history else None)
        return {"latest": latest, "history": history}
    if data:                               # legacy single-record file
        return {"latest": data, "history": [data]}
    return {"latest": None, "history": []}


def append_bench_record(path, record: dict,
                        limit: Optional[int] = DEFAULT_HISTORY_LIMIT) -> dict:
    """Append ``record`` to the bench file at ``path`` and return the data.

    Args:
        path: JSON file location (created if missing).
        record: the new measurement; becomes ``latest`` and the last
            ``history`` entry.
        limit: maximum history entries to retain (oldest dropped first);
            ``None`` keeps everything.
    """
    data = load_bench(path)
    data["history"].append(record)
    if limit is not None and len(data["history"]) > limit:
        # NB: a plain [-limit:] slice would keep everything at limit=0.
        data["history"] = data["history"][-limit:] if limit > 0 else []
    data["latest"] = record
    Path(path).write_text(json.dumps(data, indent=2) + "\n")
    return data


def load_keyed_bench(path) -> dict:
    """Read a *keyed* bench file: ``{key: {"latest", "history"}}``.

    The multi-trend variant used by ``BENCH_scenarios.json``, where each
    scenario keeps its own independent trend in one file.  Missing or
    unreadable files normalise to ``{}``; malformed per-key entries
    normalise the same way :func:`load_bench` does.
    """
    path = Path(path)
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text())
    except (ValueError, OSError):
        return {}
    if not isinstance(data, dict):
        return {}
    keyed = {}
    for key, entry in data.items():
        if not isinstance(entry, dict):
            continue
        history = [item for item in entry.get("history", [])
                   if isinstance(item, dict)]
        latest = entry.get("latest") or (history[-1] if history else None)
        keyed[key] = {"latest": latest, "history": history}
    return keyed


def append_keyed_bench_record(path, key: str, record: dict,
                              limit: Optional[int] = DEFAULT_HISTORY_LIMIT
                              ) -> dict:
    """Append ``record`` under ``key`` in a keyed bench file.

    Same semantics as :func:`append_bench_record`, but the file holds one
    ``{"latest", "history"}`` trend per key, so e.g. every scenario in a
    matrix run accumulates its own history side by side.
    """
    data = load_keyed_bench(path)
    entry = data.setdefault(key, {"latest": None, "history": []})
    entry["history"].append(record)
    if limit is not None and len(entry["history"]) > limit:
        entry["history"] = entry["history"][-limit:] if limit > 0 else []
    entry["latest"] = record
    Path(path).write_text(json.dumps(data, indent=2) + "\n")
    return data
