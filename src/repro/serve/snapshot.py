"""Picklable snapshots of compiled inference state.

The runtime's :class:`~repro.runtime.plan.InferencePlan` is *almost*
picklable: conv steps carry only folded weight arrays, but ``linear`` steps
read their weights from the live module at execution time and ``opaque``
steps call the module eagerly.  Neither survives a process boundary, so the
serving layer snapshots a plan into a fully module-ref-free form:

* ``linear`` steps freeze the current weight/bias into the step arrays (the
  executor falls back to the frozen arrays when no module is attached);
* ``opaque`` steps are recompiled and inlined when possible (e.g. a module
  whose forward hooks were removed after the original compile) and otherwise
  raise :class:`PlanSerializationError` with an actionable message — a plan
  must never silently change semantics when it is shipped to a worker.

:func:`snapshot_model` bundles the backbone and FCR plans of an O-FSCIL
model together with the normalised prototype state of its explicit memory
(:class:`PrototypeState`, keyed by ``ExplicitMemory.version``) into a
:class:`ModelSnapshot` — everything a worker process needs to serve
``predict`` / ``similarities`` on its own.

Snapshots and prototype states are the *control-plane* payloads of the
serving transport: they cross process boundaries as pickle (at worker
startup and on ``set_prototypes`` broadcasts), while per-request tensor
traffic rides the zero-copy shared-memory rings in
:mod:`repro.serve.transport` — pickling here is a deliberate choice for
rich, rarely-shipped objects, not the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.compiler import compile_module, has_hooks
from ..runtime.kernels import normalize_prototypes
from ..runtime.optimizer import MemoryPlan
from ..runtime.plan import InferencePlan, Step


class PlanSerializationError(RuntimeError):
    """A plan cannot be snapshotted without changing its semantics."""


# ---------------------------------------------------------------------------
# Prototype state
# ---------------------------------------------------------------------------
@dataclass
class PrototypeState:
    """Normalised prototype matrix of an explicit memory, at one version.

    ``matrix_normed`` is produced by the same
    :func:`~repro.runtime.kernels.normalize_prototypes` helper the
    :class:`~repro.runtime.predictor.BatchedPredictor` cache uses, so worker
    replicas and the in-process predictor serve bit-identical scores.
    """

    matrix_normed: np.ndarray      # (num_classes, dim) float32, rows unit-norm
    ids: np.ndarray                # (num_classes,) int64
    version: int

    @property
    def num_classes(self) -> int:
        return int(self.ids.shape[0])

    def select(self, class_ids: Optional[Sequence[int]]
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Restrict the matrix to ``class_ids`` (order-preserving)."""
        if class_ids is None:
            return self.matrix_normed, self.ids
        index = {int(c): i for i, c in enumerate(self.ids)}
        try:
            rows = [index[int(c)] for c in class_ids]
        except KeyError as exc:
            raise KeyError(f"class {exc.args[0]} is not stored in the "
                           f"prototype state (version {self.version})") from exc
        return self.matrix_normed[rows], self.ids[rows]


def snapshot_prototypes(memory) -> PrototypeState:
    """Freeze an :class:`~repro.core.explicit_memory.ExplicitMemory`."""
    matrix, ids = memory.prototype_matrix()
    return PrototypeState(matrix_normed=normalize_prototypes(matrix),
                          ids=ids, version=memory.version)


# ---------------------------------------------------------------------------
# Plan snapshots
# ---------------------------------------------------------------------------
@dataclass
class PlanSnapshot:
    """A module-ref-free :class:`InferencePlan`, safe to pickle.

    Optimized plans snapshot with their optimization state and (when the
    source engine has served traffic) the arena :class:`MemoryPlan`, so a
    worker restoring the snapshot executes the identical step sequence in
    the identical memory layout without replanning.
    """

    steps: List[Step]
    input_register: str
    output_register: str
    name: str
    optimized: bool = False
    memory_plan: Optional[MemoryPlan] = None
    #: graph-rewrite application counts of the optimized plan; carried so a
    #: restoring worker's ``opt_rule_applications`` gauges report the same
    #: pipeline statistics as the coordinator that compiled the plan.
    pass_stats: Optional[dict] = None

    def restore(self) -> InferencePlan:
        """Rebuild an executable plan (arrays are shared, not copied)."""
        return InferencePlan(steps=list(self.steps),
                             input_register=self.input_register,
                             output_register=self.output_register,
                             name=self.name,
                             optimized=getattr(self, "optimized", False),
                             pass_stats=dict(getattr(self, "pass_stats", None)
                                             or {}))

    def restore_memory_plan(self) -> Optional[MemoryPlan]:
        """Arena spec captured with the plan (None on legacy snapshots)."""
        return getattr(self, "memory_plan", None)

    def __len__(self) -> int:
        return len(self.steps)


def snapshot_plan(plan: InferencePlan,
                  memory_plan: Optional[MemoryPlan] = None) -> PlanSnapshot:
    """Snapshot ``plan`` into a fully picklable form.

    Raises:
        PlanSerializationError: if the plan contains an opaque step that has
            no compiled equivalent (hooked or unknown modules).
    """
    steps: List[Step] = []
    inlined = False
    for step in plan.steps:
        if step.op == "opaque":
            steps.extend(_inline_opaque(step))
            inlined = True
        elif step.module is not None:
            if step.op != "linear":
                raise PlanSerializationError(
                    f"step {step.name!r} ({step.op}) carries an unexpected "
                    f"live module reference")
            steps.append(_freeze_linear(step))
        else:
            steps.append(step)
    if inlined:
        # Inlining renames registers and introduces steps the optimizer has
        # never seen: the memory plan recorded against the original plan no
        # longer applies, and the optimized flag must not carry over (it
        # would permanently exempt the inlined steps from the passes).
        # Workers re-optimize and replan on first use.
        memory_plan = None
    return PlanSnapshot(steps=steps, input_register=plan.input_register,
                        output_register=plan.output_register, name=plan.name,
                        optimized=plan.optimized and not inlined,
                        memory_plan=memory_plan,
                        pass_stats=dict(getattr(plan, "pass_stats", None)
                                        or {}) if not inlined else None)


def _freeze_linear(step: Step) -> Step:
    module = step.module
    arrays = {"weight": module.weight.data.copy()}
    if module.bias is not None:
        arrays["bias"] = module.bias.data.copy()
    return Step(op="linear", name=step.name, inputs=step.inputs,
                output=step.output, arrays=arrays, attrs=dict(step.attrs),
                module=None)


def _inline_opaque(step: Step) -> List[Step]:
    """Replace an opaque step by the compiled plan of its module.

    Opaque steps exist for two reasons: the module (sub)tree carried forward
    hooks when the plan was compiled, or the compiler did not know the module
    type.  Hooks are arbitrary callables with side effects — they cannot
    cross a process boundary, so they are a hard error.  A module whose hooks
    have been removed since (e.g. fake-quantisation probes detached for
    deployment) recompiles cleanly and is inlined instead.
    """
    module = step.module
    if has_hooks(module):
        raise PlanSerializationError(
            f"step {step.name!r} wraps a module with forward hooks; hooks "
            f"(e.g. activation fake-quantisation probes) cannot be shipped "
            f"to worker processes — remove them before serving")
    sub = compile_module(module, step.name)
    still_opaque = [s.name for s in sub.steps if s.op == "opaque"]
    if still_opaque:
        raise PlanSerializationError(
            f"step {step.name!r} contains module(s) {still_opaque} with no "
            f"compiled equivalent; add a lowering rule or replace them "
            f"before serving")
    frozen = snapshot_plan(sub)
    if not frozen.steps:
        # Identity sub-plan (e.g. a bare Dropout): emit an explicit copy so
        # the parent's output register still gets written.
        return [Step(op="act", name=step.name, inputs=step.inputs,
                     output=step.output, attrs={"act": None})]

    def rename(register: str) -> str:
        if register == frozen.input_register:
            return step.inputs[0]
        if register == frozen.output_register:
            return step.output
        return f"{step.output}:{register}"

    return [Step(op=s.op, name=s.name,
                 inputs=tuple(rename(r) for r in s.inputs),
                 output=rename(s.output), arrays=s.arrays, attrs=s.attrs,
                 module=None)
            for s in frozen.steps]


# ---------------------------------------------------------------------------
# Model snapshots
# ---------------------------------------------------------------------------
@dataclass
class ModelSnapshot:
    """Everything a worker needs to serve an O-FSCIL model replica."""

    backbone: PlanSnapshot         # images -> theta_a
    fcr: PlanSnapshot              # theta_a -> theta_p
    prototypes: PrototypeState
    micro_batch: int
    relu_sharpening: bool
    backbone_name: str
    #: numeric mode of the compiled plans ("float32" or "int8"); workers pick
    #: the matching prototype-similarity kernel so every replica answers with
    #: the same arithmetic as the coordinator's predictor.
    mode: str = "float32"


def snapshot_model(model, micro_batch: Optional[int] = None) -> ModelSnapshot:
    """Snapshot an :class:`~repro.core.ofscil.OFSCIL` model for serving.

    The plans are taken from the model's cached
    :class:`~repro.runtime.BatchedPredictor` (compiling it if needed), so
    the snapshot captures exactly what the in-process serving path executes —
    including the integer lowering when the model runs in int8 mode (whose
    ``quantize``/``requantize``/``qconv`` steps are plain array/attr steps,
    so int8 plans snapshot without any special casing).
    """
    predictor = model.runtime_predictor()
    return ModelSnapshot(
        backbone=snapshot_plan(predictor.backbone_engine.plan,
                               predictor.backbone_engine.memory_plan),
        fcr=snapshot_plan(predictor.fcr_engine.plan,
                          predictor.fcr_engine.memory_plan),
        prototypes=snapshot_prototypes(model.memory),
        micro_batch=micro_batch or predictor.micro_batch,
        relu_sharpening=bool(getattr(model.config, "relu_sharpening", False)),
        backbone_name=str(getattr(model.config, "backbone", "")),
        mode=predictor.mode)
