"""End-to-end integration tests: the full O-FSCIL story on a tiny benchmark.

These tests tie every subsystem together: synthetic data -> pretraining ->
metalearning -> online incremental learning -> (optional) quantization ->
GAP9 deployment cost estimation.
"""

import numpy as np
import pytest

from repro.core import (
    FinetuneConfig,
    evaluate_fscil,
    finetune_fcr,
    raw_pixel_ncm,
)
from repro.hw import GAP9Profiler
from repro.models import get_config
from repro.quant import QuantizationConfig, em_memory_kb, quantize_ofscil_model


class TestEndToEnd:
    def test_training_improves_over_untrained_backbone(self, trained_model,
                                                       fresh_model, tiny_benchmark):
        """Pretraining + metalearning must beat prototypes built on an
        untrained (random-feature) backbone of the same architecture."""
        trained = evaluate_fscil(trained_model, tiny_benchmark)
        untrained = evaluate_fscil(fresh_model, tiny_benchmark,
                                   method="untrained backbone")
        assert trained.base_accuracy > untrained.base_accuracy

    def test_ofscil_matches_or_beats_raw_pixel_ncm_on_base_classes(
            self, trained_model, tiny_benchmark):
        """On the miniature test profile the pixel-space NCM is a strong
        baseline; the learned extractor must at least match it on the base
        session (on the full laptop-scale protocol it wins by ~3x — see the
        Table II benchmark)."""
        ofscil = evaluate_fscil(trained_model, tiny_benchmark)
        ncm = raw_pixel_ncm(tiny_benchmark)
        assert ofscil.base_accuracy >= ncm.base_accuracy - 1e-9

    def test_incremental_learning_keeps_base_knowledge(self, trained_model,
                                                       tiny_benchmark):
        """Accuracy on the base classes after learning all sessions must stay
        well above chance — the EM prevents catastrophic forgetting."""
        result = evaluate_fscil(trained_model, tiny_benchmark)
        base_test = tiny_benchmark.test_upto(0)
        base_accuracy_after_all_sessions = float(
            (trained_model.predict(base_test.images) == base_test.labels).mean())
        chance = 1.0 / tiny_benchmark.protocol.num_classes
        assert base_accuracy_after_all_sessions > 2 * chance
        assert result.final_accuracy > chance

    def test_session_accuracy_decays_gracefully(self, trained_model, tiny_benchmark):
        """Accuracy decreases as classes accumulate (the Table II shape), but
        the drop from one session to the next stays bounded."""
        result = evaluate_fscil(trained_model, tiny_benchmark)
        accuracies = result.session_accuracy
        assert accuracies[0] >= accuracies[-1]

    def test_online_learning_single_class_immediately_usable(self, trained_model,
                                                             tiny_benchmark):
        trained_model.memory.reset()
        trained_model.learn_base_session(tiny_benchmark.base_train)
        session = tiny_benchmark.session(1)
        new_class = int(session.class_ids[0])
        mask = session.support.labels == new_class
        trained_model.learn_class(session.support.images[mask], new_class)
        test = tiny_benchmark.test.filter_classes([new_class])
        predictions = trained_model.predict(test.images)
        # The newly learned class is predicted at least sometimes.
        assert (predictions == new_class).mean() > 0.0

    def test_finetuning_after_full_protocol_runs(self, trained_model, tiny_benchmark):
        evaluate_fscil(trained_model, tiny_benchmark)
        result = finetune_fcr(trained_model, FinetuneConfig(iterations=10, seed=0))
        assert np.isfinite(result.final_loss)

    def test_quantized_model_accuracy_close_to_float(self, trained_model,
                                                     tiny_benchmark):
        """Table II: int8 quantization must not collapse accuracy."""
        float_result = evaluate_fscil(trained_model, tiny_benchmark)

        import copy
        quant_model = copy.deepcopy(trained_model)
        quant_model.backbone.unfreeze()
        quant_model.fcr.unfreeze()
        quant_model, _report = quantize_ofscil_model(
            quant_model, tiny_benchmark.base_train,
            config=QuantizationConfig(qat_pretrain_epochs=0,
                                      qat_metalearn_iterations=2,
                                      calibration_batches=2))
        quant_result = evaluate_fscil(quant_model, tiny_benchmark,
                                      method="O-FSCIL [int8]")
        assert quant_result.average_accuracy > 0.6 * float_result.average_accuracy

    def test_em_memory_budget_matches_paper_scaling(self, trained_model,
                                                    tiny_benchmark):
        """At 3-bit precision the paper stores 100 prototypes in 9.6 kB; the
        same accounting must hold for the deployed configuration."""
        trained_model.memory.reset()
        trained_model.learn_base_session(tiny_benchmark.base_train)
        low_precision = trained_model.memory.requantize(3)
        measured_kb = low_precision.memory_bytes() / 1000.0
        expected_kb = em_memory_kb(low_precision.num_classes,
                                   trained_model.prototype_dim, 3)
        assert measured_kb == pytest.approx(expected_kb)

    def test_deployment_cost_of_paper_configuration(self):
        """The full pipeline's hardware story: learning a class on the paper's
        smallest backbone costs on the order of 12 mJ, and fine-tuning is an
        order of magnitude more expensive."""
        profiler = GAP9Profiler()
        em = profiler.profile_em_update("mobilenetv2", shots=5)
        finetune = profiler.profile_fcr_finetune("mobilenetv2")
        assert em.energy_mj == pytest.approx(12.0, rel=0.25)
        assert finetune.energy_mj > 20 * em.energy_mj
        assert em.time_ms < 400.0       # real-time: learning well under a second

    def test_table1_and_deployment_agree_on_macs(self):
        config = get_config("mobilenetv2_x4")
        profiler = GAP9Profiler()
        plan = profiler.deployment("mobilenetv2_x4")
        # The deployment graph (BN folded, no FCR) must account for the same
        # MAC count as the registry's analytic summary (within the BN share).
        assert plan.total_macs == pytest.approx(
            config.summary(include_fcr=False).total_macs, rel=0.02)
