"""Reporting helpers: tables and experiment records."""

import numpy as np
import pytest

from repro.report import (
    ExperimentRecord,
    dict_rows_to_table,
    format_table,
    load_records,
    relative_error,
    save_records,
)


class TestTables:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.23456], ["bbb", 2.0]])
        lines = table.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.235" in table   # default precision 3

    def test_format_table_with_title(self):
        table = format_table(["x"], [[1]], title="My title")
        assert table.splitlines()[0] == "My title"

    def test_dict_rows_to_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        table = dict_rows_to_table(rows)
        assert "a" in table and "4.500" in table

    def test_dict_rows_column_selection(self):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        table = dict_rows_to_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_empty_rows(self):
        assert "(empty table)" in dict_rows_to_table([])

    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(90.0, 100.0) == pytest.approx(-0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == np.inf


class TestRecords:
    def test_json_roundtrip(self, tmp_path):
        record = ExperimentRecord(
            experiment_id="table4", description="energy", workload="5-shot",
            measured={"energy_mj": 11.2}, paper={"energy_mj": 11.35},
            notes="within 2%")
        restored = ExperimentRecord.from_json(record.to_json())
        assert restored.experiment_id == "table4"
        assert restored.measured["energy_mj"] == pytest.approx(11.2)

    def test_numpy_values_serialize(self):
        record = ExperimentRecord(
            experiment_id="fig3", description="", workload="",
            measured={"acc": np.float32(0.5), "curve": np.array([1.0, 2.0])})
        text = record.to_json()
        assert "0.5" in text

    def test_save_and_load_records(self, tmp_path):
        records = [ExperimentRecord(experiment_id=f"exp{i}", description="d",
                                    workload="w", measured={"x": i})
                   for i in range(3)]
        path = save_records(records, tmp_path / "out" / "records.json")
        assert path.exists()
        loaded = load_records(path)
        assert len(loaded) == 3
        assert loaded[1].measured["x"] == 1
