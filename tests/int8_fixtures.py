"""Deterministic builder + golden fixtures for the int8 runtime conformance suite.

The golden fixtures commit a frozen (input, expected-output) set for fully
deterministic quantized models — one per backbone family on the integer
runtime:

* ``tests/fixtures/int8_golden.npz`` — MobileNetV2 (``mobilenetv2_x4_tiny``);
* ``tests/fixtures/int8_resnet_golden.npz`` — the BasicBlock ResNet trunk
  (``resnet20_tiny``, exercising the strided 1x1 downsample shortcut, the
  identity-shortcut scale join, Dory-style block-output requantization and
  the integer global average pool).

Each model is reconstructed from seeds alone (no training stages), so the
int8 execution path can be checked for *exact* reproduction across runs,
machines with different BLAS backends (the integer GEMMs are exact by
construction) and snapshot round-trips.

Regenerate after an intentional change to the quantization or int8 lowering
semantics with::

    PYTHONPATH=src python tests/int8_fixtures.py

and commit the refreshed ``.npz`` files together with the change that caused
them.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core import OFSCIL, OFSCILConfig
from repro.data import build_synthetic_fscil
from repro.quant import QuantizationConfig, quantize_ofscil_model

#: Default conformance backbone (the original fixture) and the ResNet trunk
#: added by the backbone-generic conformance matrix.
BACKBONE = "mobilenetv2_x4_tiny"
RESNET_BACKBONE = "resnet20_tiny"
MODEL_SEED = 7
NUM_CLASSES = 4
SHOTS_PER_CLASS = 3
IMAGE_SHAPE = (3, 16, 16)

_FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures"
FIXTURE_PATH = _FIXTURE_DIR / "int8_golden.npz"
RESNET_FIXTURE_PATH = _FIXTURE_DIR / "int8_resnet_golden.npz"

#: backbone name -> committed golden fixture file.
FIXTURE_PATHS = {
    BACKBONE: FIXTURE_PATH,
    RESNET_BACKBONE: RESNET_FIXTURE_PATH,
}


def load_golden(backbone: str = BACKBONE) -> dict:
    """Load the committed golden arrays for ``backbone`` (asserts presence)."""
    path = FIXTURE_PATHS[backbone]
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with "
        f"'PYTHONPATH=src python tests/int8_fixtures.py'")
    with np.load(path) as data:
        return {key: data[key] for key in data.files}


def build_quantized_model(backbone: str = BACKBONE):
    """The conformance model: seeded init + PTQ, no training stages.

    Skipping the QAT refinement keeps construction to a few seconds and —
    more importantly — removes every gradient-descent stage from the
    reproduction path, so the model is a pure function of the seeds.  The
    same recipe covers every backbone family; only the registry name varies.
    """
    benchmark = build_synthetic_fscil("test", seed=0)
    model = OFSCIL.from_registry(backbone, OFSCILConfig(backbone=backbone),
                                 seed=MODEL_SEED)
    config = QuantizationConfig(qat_pretrain_epochs=0,
                                qat_metalearn_iterations=0,
                                calibration_batches=2,
                                calibration_batch_size=32)
    model, report = quantize_ofscil_model(model, benchmark.base_train,
                                          config=config)
    model.freeze_feature_extractor()
    shots = learn_shots()
    for class_id in range(NUM_CLASSES):
        start = class_id * SHOTS_PER_CLASS
        model.learn_class(shots[start:start + SHOTS_PER_CLASS], class_id)
    return model, report


def learn_shots() -> np.ndarray:
    rng = np.random.default_rng(123)
    return rng.standard_normal(
        (NUM_CLASSES * SHOTS_PER_CLASS, *IMAGE_SHAPE)).astype(np.float32)


def golden_inputs() -> np.ndarray:
    rng = np.random.default_rng(321)
    return rng.standard_normal((8, *IMAGE_SHAPE)).astype(np.float32)


def compute_golden(model) -> dict:
    """Expected int8-path tensors for the committed query images."""
    predictor = model.runtime_predictor()
    images = golden_inputs()
    theta_a = predictor.extract_backbone_features(images)
    theta_p = predictor.project(theta_a)
    sims, ids = predictor.similarities_from_features(theta_p)
    labels = predictor.predict_features(theta_p)
    return {"images": images, "theta_a": theta_a, "theta_p": theta_p,
            "sims": sims, "ids": ids, "labels": labels}


def regenerate(backbone: str = BACKBONE, path: Path = None) -> Path:
    path = path if path is not None else FIXTURE_PATHS[backbone]
    model, _report = build_quantized_model(backbone)
    arrays = compute_golden(model)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


if __name__ == "__main__":
    for name in FIXTURE_PATHS:
        print(f"wrote {regenerate(name)}")
