"""Opt-in per-op profiling of compiled plan execution.

A :class:`PlanProfiler` hangs off :meth:`InferencePlan.execute
<repro.runtime.plan.InferencePlan.execute>` (plumbed through
:class:`~repro.runtime.engine.InferenceEngine` and
:class:`~repro.runtime.BatchedPredictor`): every executed step records its
wall time into a per-step fixed-bucket histogram and its bytes moved
(inputs read + output written) into a per-step counter — all
:mod:`repro.obs.metrics` instruments, so recording is lock-free per thread
and safe under the engine's chunk thread pool.

With no profiler attached the executor pays a single ``is not None`` test
per step; profiling is strictly opt-in (``plan_stats --profile``, or
``BatchedPredictor(..., profile=True)``), because a per-step
``perf_counter`` pair is real overhead on microsecond kernels.

The profile surfaces as a per-op table (:meth:`PlanProfiler.table`): one row
per plan step in execution order plus an aggregate per op kind — the
baseline any native-kernel backend has to beat, kernel by kernel.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry

#: Per-step wall-time buckets (seconds): compiled steps run from a few
#: microseconds (requantize on a tiny map) to tens of milliseconds (a fat
#: im2col GEMM), so the grid is geometric from 10 us to 1 s.
STEP_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 1.0)


class PlanProfiler:
    """Accumulates per-step wall time and bytes moved for one plan scope.

    One profiler may serve several engines (e.g. a predictor's backbone and
    FCR plans): steps are keyed by ``(plan_name, step_index)``, and the
    instruments live in the profiler's :class:`MetricsRegistry` under
    ``plan.<plan>.<index>.<op>.{seconds,bytes}``.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        #: (plan, index) -> (op, name, seconds-histogram, bytes-counter,
        #: calls-counter)
        self._steps: Dict[Tuple[str, int], tuple] = {}
        self._order: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------
    def record(self, plan_name: str, index: int, op: str, name: str,
               seconds: float, bytes_moved: int) -> None:
        key = (plan_name, index)
        entry = self._steps.get(key)
        if entry is None:
            with self._lock:
                entry = self._steps.get(key)
                if entry is None:
                    prefix = f"plan.{plan_name}.{index:03d}.{op}"
                    entry = (op, name,
                             self.registry.histogram(f"{prefix}.seconds",
                                                     STEP_TIME_BUCKETS),
                             self.registry.counter(f"{prefix}.bytes"),
                             self.registry.counter(f"{prefix}.calls"))
                    self._steps[key] = entry
                    self._order.append(key)
        entry[2].observe(seconds)
        entry[3].inc(bytes_moved)
        entry[4].inc()

    # ------------------------------------------------------------------
    def rows(self) -> List[dict]:
        """Per-step profile rows in first-execution order."""
        with self._lock:
            order = list(self._order)
            steps = dict(self._steps)
        rows = []
        for plan_name, index in order:
            op, name, hist, nbytes, calls = steps[(plan_name, index)]
            count = max(1, int(calls.value))
            total_s = hist.sum
            rows.append({
                "plan": plan_name,
                "step": index,
                "op": op,
                "name": name,
                "calls": int(calls.value),
                "total_s": total_s,
                "mean_us": total_s / count * 1e6,
                "p99_us": hist.quantile(0.99) * 1e6,
                "bytes_moved": int(nbytes.value),
                "gb_per_s": (nbytes.value / total_s / 1e9)
                if total_s > 0 else 0.0,
            })
        return rows

    def by_op(self) -> List[dict]:
        """Aggregate rows per op kind, sorted by total time descending."""
        totals: Dict[str, dict] = {}
        for row in self.rows():
            agg = totals.setdefault(row["op"], {"op": row["op"], "steps": 0,
                                                "calls": 0, "total_s": 0.0,
                                                "bytes_moved": 0})
            agg["steps"] += 1
            agg["calls"] += row["calls"]
            agg["total_s"] += row["total_s"]
            agg["bytes_moved"] += row["bytes_moved"]
        ranked = sorted(totals.values(), key=lambda a: -a["total_s"])
        grand_total = sum(agg["total_s"] for agg in ranked) or 1.0
        for agg in ranked:
            agg["share"] = agg["total_s"] / grand_total
        return ranked

    def as_dict(self) -> dict:
        return {"steps": self.rows(), "ops": self.by_op()}

    # ------------------------------------------------------------------
    def table(self) -> str:
        """The per-op profile as a fixed-width text table."""
        rows = self.rows()
        if not rows:
            return "# plan profile: no steps recorded"
        lines = [f"# plan profile: {len(rows)} steps",
                 f"{'plan':<10} {'step':>4} {'op':<14} {'name':<24} "
                 f"{'calls':>6} {'total_ms':>9} {'mean_us':>9} {'p99_us':>9} "
                 f"{'MB_moved':>9} {'GB/s':>6}"]
        for row in rows:
            lines.append(
                f"{row['plan']:<10} {row['step']:>4} {row['op']:<14} "
                f"{row['name'][:24]:<24} {row['calls']:>6} "
                f"{row['total_s'] * 1e3:>9.2f} {row['mean_us']:>9.1f} "
                f"{row['p99_us']:>9.1f} "
                f"{row['bytes_moved'] / 1e6:>9.2f} {row['gb_per_s']:>6.2f}")
        lines.append("")
        lines.append(f"{'op':<14} {'steps':>5} {'calls':>7} {'total_ms':>9} "
                     f"{'share':>6} {'MB_moved':>10}")
        for agg in self.by_op():
            lines.append(f"{agg['op']:<14} {agg['steps']:>5} "
                         f"{agg['calls']:>7} {agg['total_s'] * 1e3:>9.2f} "
                         f"{agg['share'] * 100:>5.1f}% "
                         f"{agg['bytes_moved'] / 1e6:>10.2f}")
        return "\n".join(lines)
