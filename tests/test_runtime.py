"""Batched inference runtime: compilation, fused kernels, parity, caching."""

import numpy as np
import pytest

from repro import nn
from repro.core import OFSCIL, OFSCILConfig
from repro.models.mobilenetv2 import ConvBNReLU
from repro.nn.tensor import Tensor
from repro.runtime import (
    BufferCache,
    InferenceEngine,
    assert_parity,
    bn_scale_shift,
    compare_with_eager,
    compile_backbone,
    compile_module,
    compile_ofscil,
    fold_conv_bn,
    has_hooks,
)
from repro.runtime.compare import normalized_error
from repro.runtime import kernels

TOLERANCE = 1e-5
TINY_BACKBONES = ("mobilenetv2_x4_tiny", "mobilenetv2_tiny", "resnet12_tiny",
                  "resnet20_tiny")


def eager_forward(module, x: np.ndarray) -> np.ndarray:
    module.eval()
    with nn.no_grad():
        return module(Tensor(np.asarray(x, dtype=np.float32))).data


def make_model(backbone: str, bits: int = 32, seed: int = 0) -> OFSCIL:
    config = OFSCILConfig(backbone=backbone, prototype_bits=bits, seed=seed)
    model = OFSCIL.from_registry(backbone, config, seed=seed)
    model.backbone.eval()
    model.fcr.eval()
    return model


class TestKernels:
    def test_fused_conv_matches_autograd_conv(self, rng):
        for trial in range(6):
            c_in = int(rng.integers(1, 5))
            c_out = int(rng.integers(1, 6))
            kernel = int(rng.choice([1, 3]))
            stride = int(rng.choice([1, 2]))
            padding = kernel // 2
            size = int(rng.integers(5, 11))
            batch = int(rng.integers(1, 5))
            x = rng.standard_normal((batch, c_in, size, size)).astype(np.float32)
            conv = nn.Conv2d(c_in, c_out, kernel, stride=stride,
                             padding=padding, rng=rng)
            expected = eager_forward(conv, x)
            weight, bias = fold_conv_bn(conv, None)
            actual = kernels.fused_conv(x, weight, bias, stride=stride,
                                        padding=padding)
            assert normalized_error(actual, expected) < TOLERANCE

    def test_fused_depthwise_conv(self, rng):
        channels = 6
        x = rng.standard_normal((3, channels, 8, 8)).astype(np.float32)
        conv = nn.Conv2d(channels, channels, 3, padding=1, groups=channels,
                         rng=rng)
        expected = eager_forward(conv, x)
        weight, bias = fold_conv_bn(conv, None)
        actual = kernels.fused_conv(x, weight, bias, padding=1, groups=channels)
        assert normalized_error(actual, expected) < TOLERANCE

    def test_fused_grouped_conv(self, rng):
        x = rng.standard_normal((2, 8, 6, 6)).astype(np.float32)
        conv = nn.Conv2d(8, 12, 3, padding=1, groups=2, rng=rng)
        expected = eager_forward(conv, x)
        weight, bias = fold_conv_bn(conv, None)
        actual = kernels.fused_conv(x, weight, bias, padding=1, groups=2)
        assert normalized_error(actual, expected) < TOLERANCE

    def test_activation_fusion(self, rng):
        x = rng.standard_normal((4, 3, 5, 5)).astype(np.float32) * 4
        conv = nn.Conv2d(3, 4, 3, padding=1, rng=rng)
        weight, bias = fold_conv_bn(conv, None)
        fused = kernels.fused_conv(x, weight, bias, padding=1, act="relu6")
        plain = kernels.fused_conv(x, weight, bias, padding=1)
        np.testing.assert_allclose(fused, np.clip(plain, 0.0, 6.0))

    def test_pooling_kernels_match_eager(self, rng):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        np.testing.assert_allclose(
            kernels.max_pool(x, 2, 2), eager_forward(nn.MaxPool2d(2), x))
        np.testing.assert_allclose(
            kernels.avg_pool(x, 2, 2), eager_forward(nn.AvgPool2d(2), x),
            rtol=1e-5, atol=1e-6)

    def test_buffer_cache_reuses_buffers(self, rng):
        cache = BufferCache()
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        first = kernels.im2col_cached(x, 3, 3, 1, 1, cache)
        buffers_after_first = len(cache)
        second = kernels.im2col_cached(x, 3, 3, 1, 1, cache)
        assert len(cache) == buffers_after_first
        assert first.base is second.base  # same backing allocation
        assert cache.nbytes > 0
        cache.clear()
        assert len(cache) == 0


class TestFolding:
    def test_fold_conv_bn_matches_separate_execution(self, rng):
        conv = nn.Conv2d(3, 6, 3, padding=1, bias=False, rng=rng)
        bn = nn.BatchNorm2d(6)
        # Non-trivial running stats.
        bn.update_buffer("running_mean",
                         rng.standard_normal(6).astype(np.float32))
        bn.update_buffer("running_var",
                         rng.uniform(0.3, 2.0, 6).astype(np.float32))
        bn.weight.data = rng.uniform(0.5, 1.5, 6).astype(np.float32)
        bn.bias.data = rng.standard_normal(6).astype(np.float32)
        bn.eval()
        x = rng.standard_normal((2, 3, 7, 7)).astype(np.float32)
        expected = eager_forward(bn, eager_forward(conv, x))
        weight, bias = fold_conv_bn(conv, bn)
        actual = kernels.fused_conv(x, weight, bias, padding=1)
        assert normalized_error(actual, expected) < TOLERANCE

    def test_bn_scale_shift(self, rng):
        bn = nn.BatchNorm1d(5)
        bn.update_buffer("running_mean",
                         rng.standard_normal(5).astype(np.float32))
        bn.update_buffer("running_var",
                         rng.uniform(0.5, 2.0, 5).astype(np.float32))
        bn.eval()
        x = rng.standard_normal((4, 5)).astype(np.float32)
        scale, shift = bn_scale_shift(bn)
        np.testing.assert_allclose(x * scale + shift, eager_forward(bn, x),
                                   rtol=1e-5, atol=1e-6)


class TestCompiler:
    def test_sequential_compiles_without_bn_or_act_steps(self, rng):
        net = nn.Sequential(ConvBNReLU(3, 8, rng=rng), ConvBNReLU(8, 8, rng=rng),
                            nn.GlobalAvgPool2d())
        net.eval()
        plan = compile_module(net)
        ops = [step.op for step in plan.steps]
        assert ops == ["conv", "conv", "global_pool"]
        assert plan.num_fused() == 2

    def test_compiled_plan_matches_eager(self, rng):
        net = nn.Sequential(ConvBNReLU(3, 8, rng=rng),
                            ConvBNReLU(8, 8, stride=2, rng=rng),
                            nn.GlobalAvgPool2d(),
                            nn.Linear(8, 4, rng=rng))
        net.eval()
        x = rng.standard_normal((5, 3, 12, 12)).astype(np.float32)
        engine = InferenceEngine(compile_module(net))
        assert normalized_error(engine.run(x), eager_forward(net, x)) < TOLERANCE

    def test_hooked_module_lowers_to_opaque(self, rng):
        net = nn.Sequential(ConvBNReLU(3, 4, rng=rng), nn.GlobalAvgPool2d())
        net.eval()
        calls = []

        def hook(module, output):
            calls.append(module)
            return output * 2.0

        net[0].act.register_forward_hook(hook)
        assert has_hooks(net)
        plan = compile_module(net)
        assert [step.op for step in plan.steps][0] == "opaque"
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        engine = InferenceEngine(plan)
        np.testing.assert_allclose(engine.run(x), eager_forward(net, x))
        assert calls  # the hook actually ran inside the opaque step

    def test_plan_describe_lists_every_step(self):
        model = make_model("mobilenetv2_x4_tiny")
        plan = compile_ofscil(model)
        description = plan.describe()
        assert len(description.splitlines()) == len(plan) + 1
        assert "conv" in description and "fcr" in description

    @pytest.mark.parametrize("backbone", TINY_BACKBONES)
    def test_all_registry_backbones_compile(self, backbone):
        model = make_model(backbone)
        plan = compile_backbone(model.backbone)
        assert len(plan) > 0
        assert all(step.op != "opaque" for step in plan.steps)


class TestParity:
    @pytest.mark.parametrize("backbone", TINY_BACKBONES)
    def test_feature_parity_against_eager_forward(self, backbone, rng):
        model = make_model(backbone)
        images = rng.standard_normal((9, 3, 16, 16)).astype(np.float32)
        report = assert_parity(model, images, atol=TOLERANCE)
        assert report.max_feature_error < TOLERANCE

    @pytest.mark.parametrize("batch_size", [1, 2, 7, 33, 64])
    def test_parity_across_batch_sizes(self, batch_size, rng):
        model = make_model("mobilenetv2_x4_tiny")
        images = rng.standard_normal((batch_size, 3, 16, 16)).astype(np.float32)
        runtime = model.runtime_predictor().embed(images)
        eager = model.embed(images, use_runtime=False)
        assert runtime.shape == eager.shape == (batch_size, model.prototype_dim)
        assert normalized_error(runtime, eager) < TOLERANCE

    @pytest.mark.parametrize("bits", [32, 8, 3])
    def test_prediction_parity_with_quantized_prototypes(self, bits, rng):
        model = make_model("mobilenetv2_x4_tiny", bits=bits)
        images = rng.standard_normal((40, 3, 16, 16)).astype(np.float32)
        for class_id in range(4):
            model.learn_class(images[class_id * 5:(class_id + 1) * 5], class_id)
        queries = images[20:]
        eager_features = model.embed(queries, use_runtime=False)
        eager = model.memory.predict(eager_features)
        runtime = model.runtime_predictor().predict(queries)
        np.testing.assert_array_equal(runtime, eager)
        report = compare_with_eager(model, queries, atol=TOLERANCE)
        assert report.ok and report.prediction_agreement == 1.0

    def test_parity_with_class_id_restriction(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        images = rng.standard_normal((30, 3, 16, 16)).astype(np.float32)
        for class_id in range(5):
            model.learn_class(images[class_id * 4:(class_id + 1) * 4], class_id)
        allowed = [1, 3, 4]
        sims_eager, ids_eager = model.memory.similarities(
            model.embed(images[20:], use_runtime=False), allowed)
        sims_rt, ids_rt = model.runtime_predictor().similarities_from_features(
            model.runtime_predictor().embed(images[20:]), allowed)
        np.testing.assert_array_equal(ids_eager, ids_rt)
        assert normalized_error(sims_rt, sims_eager) < TOLERANCE

    def test_random_shapes_property_style(self, rng):
        # Random conv stacks over random input sizes: the compiler must stay
        # faithful for shapes it has never seen in the model zoo.
        for trial in range(4):
            c1 = int(rng.integers(2, 6))
            c2 = int(rng.integers(2, 8))
            size = int(rng.integers(8, 17))
            batch = int(rng.integers(1, 9))
            net = nn.Sequential(ConvBNReLU(3, c1, rng=rng),
                                ConvBNReLU(c1, c2, stride=2, rng=rng),
                                ConvBNReLU(c2, c2, kernel_size=1, rng=rng),
                                nn.GlobalAvgPool2d())
            net.eval()
            x = rng.standard_normal((batch, 3, size, size)).astype(np.float32)
            engine = InferenceEngine(compile_module(net))
            assert normalized_error(engine.run(x),
                                    eager_forward(net, x)) < TOLERANCE


class TestEngine:
    def test_micro_batching_is_transparent(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        images = rng.standard_normal((50, 3, 16, 16)).astype(np.float32)
        whole = InferenceEngine(compile_backbone(model.backbone),
                                micro_batch=64).run(images)
        chunked = InferenceEngine(compile_backbone(model.backbone),
                                  micro_batch=8).run(images)
        assert normalized_error(chunked, whole) < TOLERANCE

    def test_project_single_feature_vector(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        vector = rng.standard_normal(model.feature_dim).astype(np.float32)
        runtime = model.project(vector)
        eager = model.project(vector, use_runtime=False)
        assert runtime.shape == eager.shape == (model.prototype_dim,)
        assert normalized_error(runtime, eager) < TOLERANCE

    def test_single_sample_without_batch_dim(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        image = rng.standard_normal((3, 16, 16)).astype(np.float32)
        engine = InferenceEngine(compile_backbone(model.backbone))
        out = engine.run(image)
        assert out.shape == (model.feature_dim,)

    def test_empty_batch_raises(self):
        model = make_model("mobilenetv2_x4_tiny")
        engine = InferenceEngine(compile_backbone(model.backbone))
        with pytest.raises(ValueError):
            engine.run(np.empty((0, 3, 16, 16), dtype=np.float32))

    def test_engine_counts_samples(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        engine = InferenceEngine(compile_backbone(model.backbone),
                                 micro_batch=16)
        engine.run(rng.standard_normal((40, 3, 16, 16)).astype(np.float32))
        assert engine.samples_run == 40
        assert engine.batches_run == 3


class TestPredictorCaching:
    def test_prototype_cache_follows_memory_version(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        images = rng.standard_normal((20, 3, 16, 16)).astype(np.float32)
        predictor = model.runtime_predictor()
        model.learn_class(images[:5], 0)
        matrix_before, _ = predictor.prototypes()
        assert matrix_before.shape[0] == 1
        model.learn_class(images[5:10], 1)
        matrix_after, ids = predictor.prototypes()
        assert matrix_after.shape[0] == 2
        np.testing.assert_array_equal(ids, [0, 1])

    def test_memory_version_counter_bumps_on_mutation(self):
        model = make_model("mobilenetv2_x4_tiny")
        memory = model.memory
        version = memory.version
        memory.set_prototype(7, np.ones(model.prototype_dim, dtype=np.float32))
        assert memory.version > version
        version = memory.version
        memory.remove_class(7)
        assert memory.version > version
        version = memory.version
        memory.reset()
        assert memory.version > version

    def test_stale_version_cache_entries_are_evicted(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        images = rng.standard_normal((20, 3, 16, 16)).astype(np.float32)
        predictor = model.runtime_predictor()
        for class_id in range(3):
            model.learn_class(images[class_id * 5:(class_id + 1) * 5], class_id)
        # Multiple selections of the SAME version coexist in the cache...
        predictor.prototypes()
        predictor.prototypes([0, 1])
        predictor.prototypes([2])
        assert len(predictor._proto_cache) == 3
        # ...but a new memory version evicts every stale entry at once.
        model.learn_class(images[15:], 3)
        predictor.prototypes()
        versions = {key[0] for key in predictor._proto_cache}
        assert versions == {model.memory.version}
        assert len(predictor._proto_cache) == 1

    def test_selection_cache_is_bounded_within_one_version(self, rng):
        # A frozen deployment never bumps the memory version, so per-request
        # class-id selections must not grow the cache without bound.
        model = make_model("mobilenetv2_x4_tiny")
        predictor = model.runtime_predictor()
        features = rng.standard_normal((40, model.prototype_dim))
        for class_id in range(30):
            model.memory.update_class(class_id, features[:2])
        cap = predictor.MAX_CACHED_SELECTIONS
        for first in range(cap + 10):
            predictor.prototypes([first, first + 1])
        assert len(predictor._proto_cache) == cap

    def test_cache_invalidation_across_relearn_and_reset(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        images = rng.standard_normal((10, 3, 16, 16)).astype(np.float32)
        predictor = model.runtime_predictor()
        model.learn_class(images[:5], 0)
        matrix_first, _ = predictor.prototypes()
        # Re-learning the SAME class refines the prototype; the cache must
        # not serve the stale matrix.
        model.learn_class(images[5:], 0)
        matrix_second, _ = predictor.prototypes()
        assert matrix_second.shape == matrix_first.shape
        assert not np.array_equal(matrix_second, matrix_first)
        # Clearing the memory invalidates too; prediction then refuses.
        model.memory.reset()
        matrix_empty, ids_empty = predictor.prototypes()
        assert matrix_empty.shape[0] == 0 and ids_empty.size == 0
        with pytest.raises(ValueError, match="empty"):
            predictor.predict(images[:2])

    def test_weight_rebind_triggers_recompile(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        images = rng.standard_normal((4, 3, 16, 16)).astype(np.float32)
        predictor = model.runtime_predictor()
        before = predictor.extract_backbone_features(images)
        # Rebind one conv weight (what optimizers and quantization do).
        conv = model.backbone.stem.conv
        conv.weight.data = conv.weight.data * 1.5
        after = predictor.extract_backbone_features(images)
        assert not np.allclose(before, after)
        eager = model.extract_backbone_features(images, use_runtime=False)
        assert normalized_error(after, eager) < TOLERANCE

    def test_fcr_finetune_visible_without_recompile(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        images = rng.standard_normal((4, 3, 16, 16)).astype(np.float32)
        predictor = model.runtime_predictor()
        theta_a = predictor.extract_backbone_features(images)
        before = predictor.project(theta_a)
        linear = model.fcr.linear
        linear.weight.data = linear.weight.data * 0.5
        after = predictor.project(theta_a)
        assert not np.allclose(after, before)
        eager = model.project(theta_a, use_runtime=False)
        assert normalized_error(after, eager) < TOLERANCE

    def test_hook_attachment_triggers_recompile(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        images = rng.standard_normal((4, 3, 16, 16)).astype(np.float32)
        predictor = model.runtime_predictor()
        predictor.extract_backbone_features(images)
        plan_ops = {step.op for step in predictor.backbone_engine.plan.steps}
        assert "opaque" not in plan_ops
        model.backbone.pool.register_forward_hook(lambda m, out: out * 0.0)
        hooked = predictor.extract_backbone_features(images)
        np.testing.assert_allclose(hooked, np.zeros_like(hooked))


class TestOFSCILIntegration:
    def test_model_routes_through_runtime_by_default(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        assert model.config.use_runtime
        images = rng.standard_normal((6, 3, 16, 16)).astype(np.float32)
        runtime = model.embed(images)
        eager = model.embed(images, use_runtime=False)
        assert normalized_error(runtime, eager) < TOLERANCE
        assert model.runtime_predictor().samples_served >= 6

    def test_accuracy_agrees_between_paths(self, trained_model, tiny_benchmark):
        trained_model.memory.reset()
        trained_model.learn_base_session(tiny_benchmark.base_train)
        test = tiny_benchmark.test_upto(0)
        fast = trained_model.accuracy(test)
        slow = trained_model.accuracy(test, use_runtime=False)
        assert fast == pytest.approx(slow, abs=0.02)
