"""Sharded serving layer: snapshots, worker pool, dynamic batcher, parity.

The parity tests are the acceptance criterion of the serving subsystem:
``Server.predict`` over 2 workers must match ``BatchedPredictor.predict``
**bit-for-bit** — including after an online ``learn_class`` — so sharding is
a pure throughput decision, never an accuracy one.  A module-scoped
two-worker server is shared across tests to amortise process startup; this
doubles as the CI smoke scenario (2-worker end-to-end predict + learn).
"""

import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro import nn
from repro.core import OFSCIL, OFSCILConfig
from repro.models.mobilenetv2 import ConvBNReLU
from repro.nn.tensor import Tensor
from repro.runtime import InferenceEngine, compile_module
from repro.serve import (
    EngineClosedError,
    PlanSerializationError,
    RemoteWorkerError,
    Server,
    ServerClosedError,
    ServerOverloaded,
    ShardedEngine,
    snapshot_model,
    snapshot_plan,
    snapshot_prototypes,
)

BACKBONE = "mobilenetv2_x4_tiny"
BASE_CLASSES = 6
SHOTS_PER_CLASS = 5
IMAGE_SHAPE = (3, 16, 16)


def make_learned_model(seed: int = 0):
    """A frozen model with BASE_CLASSES learned from deterministic shots."""
    model = OFSCIL.from_registry(BACKBONE, OFSCILConfig(backbone=BACKBONE),
                                 seed=seed)
    model.freeze_feature_extractor()
    rng = np.random.default_rng(42)
    shots = rng.standard_normal(
        (BASE_CLASSES * SHOTS_PER_CLASS, *IMAGE_SHAPE)).astype(np.float32)
    for class_id in range(BASE_CLASSES):
        start = class_id * SHOTS_PER_CLASS
        model.learn_class(shots[start:start + SHOTS_PER_CLASS], class_id)
    return model, shots


@pytest.fixture(scope="module")
def served():
    """(model, 2-worker server, shots) shared by the serving tests."""
    model, shots = make_learned_model()
    server = Server(model, num_workers=2, max_latency_s=0.05)
    yield model, server, shots
    server.close()


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(7)
    # Deliberately not a multiple of the micro-batch: the ragged tail chunk
    # must not perturb bit-for-bit parity.
    return rng.standard_normal((150, *IMAGE_SHAPE)).astype(np.float32)


# ---------------------------------------------------------------------------
# Plan / model snapshots (no processes involved)
# ---------------------------------------------------------------------------
class _Unlowerable(nn.Module):
    """A module type the plan compiler has no lowering rule for."""

    def forward(self, x):
        return x * 2.0


class TestPlanSnapshot:
    def test_snapshot_freezes_linear_and_survives_pickle(self, rng):
        net = nn.Sequential(ConvBNReLU(3, 8, rng=rng), nn.GlobalAvgPool2d(),
                            nn.Linear(8, 4, rng=rng))
        net.eval()
        plan = compile_module(net)
        snapshot = pickle.loads(pickle.dumps(snapshot_plan(plan)))
        assert all(step.module is None for step in snapshot.steps)
        linear_steps = [s for s in snapshot.steps if s.op == "linear"]
        assert linear_steps and "weight" in linear_steps[0].arrays
        x = rng.standard_normal((5, 3, 12, 12)).astype(np.float32)
        np.testing.assert_array_equal(snapshot.restore().execute(x),
                                      plan.execute(x))

    def test_frozen_linear_ignores_later_finetuning(self, rng):
        net = nn.Linear(6, 3, rng=rng)
        plan = compile_module(net)
        snapshot = snapshot_plan(plan)
        x = rng.standard_normal((4, 6)).astype(np.float32)
        before = snapshot.restore().execute(x)
        net.weight.data = net.weight.data * 2.0
        np.testing.assert_array_equal(snapshot.restore().execute(x), before)
        assert not np.array_equal(plan.execute(x), before)  # live plan moved

    def test_hooked_module_raises_serialization_error(self, rng):
        net = nn.Sequential(ConvBNReLU(3, 4, rng=rng), nn.GlobalAvgPool2d())
        net.eval()
        net[0].act.register_forward_hook(lambda module, out: out * 2.0)
        plan = compile_module(net)
        with pytest.raises(PlanSerializationError, match="hooks"):
            snapshot_plan(plan)

    def test_hook_removed_after_compile_inlines_opaque_step(self, rng):
        net = nn.Sequential(ConvBNReLU(3, 4, rng=rng), nn.GlobalAvgPool2d())
        net.eval()
        net[0].act.register_forward_hook(lambda module, out: out)
        plan = compile_module(net)           # hook forces an opaque step
        assert any(step.op == "opaque" for step in plan.steps)
        net[0].act.clear_forward_hooks()
        snapshot = snapshot_plan(plan)       # recompiles + inlines it
        assert all(step.op != "opaque" for step in snapshot.steps)
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        with nn.no_grad():
            expected = net(Tensor(x)).data
        engine = InferenceEngine(snapshot.restore())
        assert np.allclose(engine.run(x), expected, atol=1e-5)

    def test_unknown_module_raises_serialization_error(self, rng):
        net = nn.Sequential(_Unlowerable(), nn.GlobalAvgPool2d())
        plan = compile_module(net)
        with pytest.raises(PlanSerializationError, match="no.*compiled"):
            snapshot_plan(plan)


class TestModelSnapshot:
    def test_model_snapshot_roundtrip(self):
        model, _ = make_learned_model(seed=1)
        snapshot = pickle.loads(pickle.dumps(snapshot_model(model)))
        assert snapshot.backbone_name == BACKBONE
        assert snapshot.prototypes.num_classes == BASE_CLASSES
        assert snapshot.prototypes.version == model.memory.version
        assert len(snapshot.backbone) > 0 and len(snapshot.fcr) > 0

    def test_prototype_state_matches_predictor_cache(self):
        model, _ = make_learned_model(seed=1)
        state = snapshot_prototypes(model.memory)
        matrix, ids = model.runtime_predictor().prototypes()
        np.testing.assert_array_equal(state.matrix_normed, matrix)
        np.testing.assert_array_equal(state.ids, ids)

    def test_prototype_state_selection(self):
        model, _ = make_learned_model(seed=1)
        state = snapshot_prototypes(model.memory)
        matrix, ids = state.select([3, 1])
        np.testing.assert_array_equal(ids, [3, 1])
        np.testing.assert_array_equal(matrix, state.matrix_normed[[3, 1]])
        with pytest.raises(KeyError):
            state.select([99])

    def test_empty_memory_snapshot(self):
        memory_model = OFSCIL.from_registry(
            BACKBONE, OFSCILConfig(backbone=BACKBONE), seed=2)
        state = snapshot_prototypes(memory_model.memory)
        assert state.num_classes == 0
        assert state.matrix_normed.shape == (0, memory_model.prototype_dim)


# ---------------------------------------------------------------------------
# Sharded engine + server (2 spawned workers, module-scoped)
# ---------------------------------------------------------------------------
class TestShardedEngine:
    def test_scatter_backbone_features_bitwise(self, served, queries):
        model, server, _ = served
        scattered = server.extract_backbone_features(queries)
        local = model.runtime_predictor().extract_backbone_features(queries)
        np.testing.assert_array_equal(scattered, local)

    def test_worker_stats_one_record_per_worker(self, served):
        _, server, _ = served
        stats = server.worker_stats()
        assert sorted(record["worker_id"] for record in stats) == [0, 1]
        assert all(record["plan_steps"] > 0 for record in stats)
        # Replicas run the memory-planned executor: once a worker has served
        # a second batch (the first records shapes), its arena footprint
        # shows in the stats surface.
        served_workers = [record for record in stats
                          if record["samples_run"] > 0]
        assert served_workers
        assert all(record["arena_slots"] > 0
                   and record["arena_peak_bytes"] > 0
                   and record["cache_bytes"] > 0
                   for record in served_workers)
        report = server.stats_dict()
        assert report["cache_bytes"] == sum(record["cache_bytes"]
                                            for record in stats)
        assert "arena_peak_bytes" in report

    def test_worker_error_is_reraised_and_loop_survives(self, served):
        _, server, _ = served
        bad = np.zeros((2, 5, 16, 16), dtype=np.float32)  # wrong channels
        future = server.engine.submit("backbone", bad)
        with pytest.raises(RemoteWorkerError, match="ValueError"):
            future.result(timeout=60)
        # The worker loop survives an error and keeps serving.
        good = np.zeros((2, *IMAGE_SHAPE), dtype=np.float32)
        assert server.engine.submit("backbone", good).result(timeout=60) \
            .shape[0] == 2

    def test_unknown_kind_is_an_error(self, served):
        _, server, _ = served
        with pytest.raises(RemoteWorkerError, match="unknown work item"):
            server.engine.submit("frobnicate").result(timeout=60)


class TestServerParity:
    def test_predict_bit_for_bit(self, served, queries):
        model, server, _ = served
        np.testing.assert_array_equal(
            server.predict(queries), model.runtime_predictor().predict(queries))

    def test_similarities_bit_for_bit(self, served, queries):
        model, server, _ = served
        sims, ids = server.similarities(queries)
        ref_sims, ref_ids = model.runtime_predictor().similarities(queries)
        np.testing.assert_array_equal(sims, ref_sims)
        np.testing.assert_array_equal(ids, ref_ids)

    def test_class_id_restriction_bit_for_bit(self, served, queries):
        model, server, _ = served
        allowed = [0, 2, 5]
        np.testing.assert_array_equal(
            server.predict(queries[:40], class_ids=allowed),
            model.runtime_predictor().predict(queries[:40], class_ids=allowed))

    def test_learn_class_parity_and_broadcast(self, served, queries):
        model, server, shots = served
        rng = np.random.default_rng(99)
        new_shots = rng.standard_normal(
            (SHOTS_PER_CLASS, *IMAGE_SHAPE)).astype(np.float32)
        served_prototype = server.learn_class(new_shots, BASE_CLASSES)

        # A twin model learning the same classes through the single-process
        # path must end up with bit-identical prototypes.
        twin, _ = make_learned_model()
        twin_prototype = twin.learn_class(new_shots, BASE_CLASSES)
        np.testing.assert_array_equal(served_prototype, twin_prototype)

        # Serving stays bit-for-bit after the online update...
        np.testing.assert_array_equal(
            server.predict(queries), model.runtime_predictor().predict(queries))
        # ...and every worker replica acked the new memory version.
        versions = [record["prototype_version"]
                    for record in server.worker_stats()]
        assert versions == [model.memory.version] * server.num_workers
        assert all(record["prototype_classes"] == BASE_CLASSES + 1
                   for record in server.worker_stats())


class TestDynamicBatcher:
    def test_single_submits_coalesce_and_agree(self, served):
        model, server, shots = served
        # Learned shots as queries: large margins, so worker-side (per-shard)
        # classification agrees with the coordinator path even though tiny
        # small-batch GEMMs are not bitwise reproducible.
        futures = [server.submit(image) for image in shots[:12]]
        labels = np.array([future.result(timeout=120) for future in futures])
        np.testing.assert_array_equal(
            labels, model.runtime_predictor().predict(shots[:12]))
        histogram = server.stats.as_dict()["batch_size_histogram"]
        assert sum(size * count for size, count in histogram.items()) >= 12
        assert max(histogram) > 1, f"no coalescing happened: {histogram}"

    def test_predict_one_roundtrip(self, served):
        model, server, shots = served
        label = server.predict_one(shots[0])
        assert label == int(model.runtime_predictor().predict(shots[:1])[0])

    def test_stats_surface(self, served):
        _, server, _ = served
        report = server.stats_dict()
        assert report["num_workers"] == 2
        assert report["single_requests"] >= 13
        assert report["batches_dispatched"] >= 1
        assert report["samples"] > 0
        assert report["samples_per_s"] > 0
        assert len(report["workers"]) == 2

    def test_submit_after_close_raises_typed_error(self):
        model, _ = make_learned_model(seed=3)
        server = Server(model, num_workers=1)
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit(np.zeros(IMAGE_SHAPE, dtype=np.float32))
        server.close()                    # idempotent


class TestServeHook:
    def test_model_serve_context_manager(self):
        model, shots = make_learned_model(seed=4)
        with model.serve(num_workers=1) as server:
            labels = server.predict(shots[:8])
            np.testing.assert_array_equal(
                labels, model.runtime_predictor().predict(shots[:8]))


# ---------------------------------------------------------------------------
# Worker lifecycle + degraded stats (satellite regression tests)
# ---------------------------------------------------------------------------
class TestWorkerLifecycle:
    def test_shutdown_closes_worker_engine_thread_pools(self, monkeypatch):
        # A worker's snapshot-restored engines rebuild their chunk thread
        # pools lazily; the shutdown work item must close them so no
        # repro-engine thread outlives the worker loop.  The worker main
        # loop is queue-generic, so it runs here on an in-process thread
        # with plain queues, where the engine threads are observable.
        import queue as queue_module
        import threading

        from repro.runtime import engine as engine_module
        from repro.serve.worker import worker_main

        monkeypatch.setattr(engine_module, "default_num_threads", lambda: 2)
        model, shots = make_learned_model(seed=5)
        snapshot = snapshot_model(model, micro_batch=4)
        requests: "queue_module.Queue" = queue_module.Queue()
        results: "queue_module.Queue" = queue_module.Queue()
        before = set(threading.enumerate())
        worker = threading.Thread(target=worker_main,
                                  args=(0, snapshot, requests, results))
        worker.start()
        try:
            # 12 samples / micro_batch 4: the first chunk records the memory
            # plan, the remaining two run on the engine's thread pool.
            requests.put(("backbone", 0, shots[:12]))
            ticket, _, ok, payload = results.get(timeout=60)
            assert ok, payload
            pool_threads = [thread for thread in threading.enumerate()
                            if thread not in before
                            and thread.name.startswith("repro-engine")]
            assert pool_threads, "worker engines never built a thread pool"
        finally:
            requests.put(("shutdown", 1, None))
        ticket, _, ok, _ = results.get(timeout=60)
        assert ok and ticket == 1
        worker.join(timeout=30)
        assert not worker.is_alive()
        for thread in pool_threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in pool_threads), \
            "worker shutdown leaked engine thread-pool threads"


class TestDegradedStats:
    def test_stats_survive_a_dead_worker(self):
        # A shard that dies mid-collection degrades to a flagged record
        # instead of aborting the whole stats call: operators need the
        # surviving shards' counters most exactly when one shard is down.
        # max_respawns=0 pins the *degraded* stats surface: with the
        # supervisor on (the default) the corpse would be respawned and
        # dead_workers would legitimately empty out mid-assert.
        model, shots = make_learned_model(seed=6)
        with Server(model, num_workers=2, micro_batch=4,
                    max_latency_s=0.05, max_respawns=0) as server:
            server.predict(shots[:8])   # two chunks -> warms both replicas
            victim = server.engine._processes[0]
            # Let the victim's result-queue feeder thread go quiescent
            # before the hard kill.  Channels are fully per-worker, so a
            # worker terminated mid-write can only poison its *own* result
            # queue — the survivors' channels are untouchable by the corpse.
            # Its own channel may still deliver a truncated frame, which is
            # why stats collection degrades per shard instead of trusting
            # every channel.
            time.sleep(0.3)
            victim.terminate()
            victim.join(timeout=10)
            report = server.stats_dict(timeout=6.0)
            assert report["num_workers"] == 2
            assert report["dead_workers"] == [0]
            flagged, survivor = report["workers"]
            assert flagged["worker_id"] == 0
            assert "error" in flagged and flagged["alive"] is False
            assert survivor["worker_id"] == 1
            # The survivor normally answers with full stats; if its own
            # collection merely missed the deadline it degrades to a
            # flagged-but-alive record — never declared dead, and either
            # way the call returned partial stats instead of raising.  (A
            # hard-killed sibling cannot wedge this shard's channel: no
            # queue or lock is shared between workers.)
            if "error" in survivor:
                assert survivor["alive"] is True
                # Flagged as stale, so the incomplete aggregates are marked.
                assert report["stale_workers"] == [1]
            else:
                assert survivor["plan_steps"] > 0
                assert report["stale_workers"] == []
                assert report["cache_bytes"] > 0


# ---------------------------------------------------------------------------
# Fault injection, typed shutdown, admission control, transport parity
# ---------------------------------------------------------------------------
class TestFaultInjection:
    def test_sigkill_mid_flight_fails_fast_and_survivors_serve(self):
        # The headline regression of the per-worker transport (and the
        # reason channels are per-worker at all): on the old shared-queue
        # transport a worker SIGKILLed while writing a result died holding
        # the one shared write lock and wedged every surviving shard.  With
        # per-worker channels that failure mode is structurally impossible;
        # what this test pins is the remaining contract: the dead shard's
        # pending futures must fail fast with RemoteWorkerError (liveness
        # watchdog, not timeout), the survivors must keep answering
        # bit-for-bit, and the dead worker's ring slots must be reclaimed
        # rather than leaked.  max_respawns=0 keeps the corpse down — the
        # supervised-respawn path has its own tests (test_serve_recovery).
        model, shots = make_learned_model(seed=7)
        rng = np.random.default_rng(11)
        queries = rng.standard_normal((40, *IMAGE_SHAPE)).astype(np.float32)
        reference = model.runtime_predictor().predict(queries)
        with Server(model, num_workers=2, max_latency_s=0.05,
                    max_respawns=0) as server:
            server.predict(queries[:8])            # warm both replicas
            big = rng.standard_normal((64, *IMAGE_SHAPE)).astype(np.float32)
            inflight = [server.engine.submit("backbone", big, worker=0)
                        for _ in range(4)]
            os.kill(server.engine._processes[0].pid, signal.SIGKILL)

            started = time.monotonic()
            failures = 0
            for future in inflight:
                try:
                    future.result(timeout=30)
                except RemoteWorkerError:
                    failures += 1
            elapsed = time.monotonic() - started
            assert failures >= 1, "no pinned-to-victim request failed"
            # Fail *fast*: the watchdog polls at 0.2s, so well under the
            # engine's default collection timeout (120s) — the old transport
            # hung callers for the full timeout.
            assert elapsed < 15.0, f"dead-shard futures took {elapsed:.1f}s"

            # Survivors keep answering, still bit-for-bit with the local
            # predictor, on both the sync and the batched async paths.
            np.testing.assert_array_equal(server.predict(queries), reference)
            label = server.predict_one(shots[0], timeout=60)
            assert label == int(model.runtime_predictor()
                                .predict(shots[:1])[0])

            # stats() degrades the dead shard instead of hanging or raising.
            report = server.stats_dict(timeout=10.0)
            assert report["dead_workers"] == [0]
            assert report["live_workers"] == [1]

            # Explicitly routing new work at the corpse fails immediately.
            with pytest.raises(RemoteWorkerError, match="dead"):
                server.engine.submit("backbone", queries[:2], worker=0)

            # The watchdog reclaimed every slot the victim held.
            for ring in (server.engine._request_rings[0],
                         server.engine._result_rings[0]):
                assert ring is not None and ring.slots_in_use == 0


class TestEngineClose:
    def test_close_with_inflight_fails_futures_with_typed_error(self):
        # close() must not strand in-flight callers: whatever has not
        # resolved by the close deadline fails with EngineClosedError (a
        # typed shutdown error, distinct from a worker crash).
        model, _ = make_learned_model(seed=8)
        snapshot = snapshot_model(model, micro_batch=8)
        engine = ShardedEngine(snapshot, num_workers=1)
        try:
            rng = np.random.default_rng(3)
            big = rng.standard_normal((64, *IMAGE_SHAPE)).astype(np.float32)
            futures = [engine.submit("backbone", big) for _ in range(6)]
        finally:
            engine.close(timeout=0.05)
        shutdown_errors = 0
        for future in futures:
            assert future.done(), "close() left a future unresolved"
            exc = future.exception()
            if exc is not None:
                assert isinstance(exc, EngineClosedError)
                shutdown_errors += 1
        assert shutdown_errors >= 1, \
            "every batch resolved before a 50ms close deadline?"
        engine.close()                    # idempotent


class TestAdmissionControl:
    def test_full_admission_queue_sheds_with_typed_error(self):
        model, shots = make_learned_model(seed=3)
        with Server(model, num_workers=1, max_pending=0) as server:
            with pytest.raises(ServerOverloaded, match="admission queue"):
                server.submit(shots[0])
            report = server.stats.as_dict()
            assert report["requests_shed"] == 1
            assert report["shed_rate"] == 1.0

    def test_latency_slo_sheds_when_estimate_exceeds_budget(self):
        model, shots = make_learned_model(seed=3)
        with Server(model, num_workers=1, latency_slo_s=0.5) as server:
            # Seed the latency EMA as if batches were observed taking 1s:
            # the wait estimate for even one queued request then exceeds the
            # 0.5s SLO deterministically, no real saturation needed.
            server.stats.observe_batch_latency(1.0)
            with pytest.raises(ServerOverloaded, match="SLO"):
                server.submit(shots[0])
            assert server.stats.as_dict()["requests_shed"] == 1
            # The shed accounting shows up on the public stats surface too.
            report = server.stats_dict()
            assert report["requests_shed"] == 1
            assert report["latency_slo_s"] == 0.5

    def test_no_shedding_below_the_limits(self, served):
        _, server, shots = served
        future = server.submit(shots[0])       # default budgets: admitted
        assert future.result(timeout=120) is not None
        assert server.stats.as_dict()["shed_rate"] < 1.0


class TestTransportParity:
    def test_pickle_transport_matches_local_predictor_bitwise(self, queries):
        # use_shared_memory=False forces every tensor through the inline
        # pickle fallback.  It must be bit-for-bit with the local predictor —
        # the same oracle the default shm transport is pinned against above
        # (TestServerParity) — so shm and pickle transports are bit-identical
        # end-to-end through real spawned workers.
        model, _ = make_learned_model(seed=9)
        reference = model.runtime_predictor().predict(queries)
        with Server(model, num_workers=2, max_latency_s=0.05,
                    use_shared_memory=False) as server:
            assert all(ring is None for ring in server.engine._request_rings)
            np.testing.assert_array_equal(server.predict(queries), reference)
            sims, ids = server.similarities(queries[:32])
            ref_sims, ref_ids = model.runtime_predictor() \
                .similarities(queries[:32])
            np.testing.assert_array_equal(sims, ref_sims)
            np.testing.assert_array_equal(ids, ref_ids)
