"""Batched inference runtime: compiled op plans + fused NumPy kernels.

The training side of the reproduction runs on the autograd substrate in
:mod:`repro.nn`; this package is the deploy-time counterpart.  A model is
*compiled* once into a flat op plan (batch norm folded into convolutions,
activations fused into their producers, no gradient tape) and then executed
by a micro-batching engine with reusable im2col buffers.

Typical use::

    from repro.runtime import BatchedPredictor

    predictor = BatchedPredictor(model)          # compile once
    labels = predictor.predict(images)           # whole session in one shot
    sims, ids = predictor.similarities(images)

Parity against the eager path is checked with
:func:`repro.runtime.compare.assert_parity`.
"""

from .compare import (
    DEFAULT_ATOL,
    ParityReport,
    assert_parity,
    compare_with_eager,
)
from .compiler import (
    MODES,
    Int8CompilationError,
    bn_scale_shift,
    compile_backbone,
    compile_module,
    compile_ofscil,
    fold_conv_bn,
    has_hooks,
)
from .engine import DEFAULT_MICRO_BATCH, InferenceEngine, default_num_threads
from .ir import Graph, GraphInvariantError, Node, RewriteRule, Value
from .kernels import BufferCache
from .optimizer import (
    MemoryPlan,
    eliminate_common_subexpressions,
    eliminate_dead_steps,
    fold_identities,
    fuse_quantize_chains,
    optimize_plan,
    plan_memory,
    superfuse_residual_adds,
)
from .plan import InferencePlan, Step
from .plan_cache import PlanCache, default_plan_cache
from .predictor import BatchedPredictor

__all__ = [
    "InferencePlan",
    "Step",
    "MODES",
    "Int8CompilationError",
    "compile_module",
    "compile_backbone",
    "compile_ofscil",
    "fold_conv_bn",
    "bn_scale_shift",
    "has_hooks",
    "InferenceEngine",
    "DEFAULT_MICRO_BATCH",
    "default_num_threads",
    "BufferCache",
    "MemoryPlan",
    "optimize_plan",
    "eliminate_dead_steps",
    "fuse_quantize_chains",
    "fold_identities",
    "eliminate_common_subexpressions",
    "superfuse_residual_adds",
    "plan_memory",
    "Graph",
    "Value",
    "Node",
    "RewriteRule",
    "GraphInvariantError",
    "PlanCache",
    "default_plan_cache",
    "BatchedPredictor",
    "ParityReport",
    "compare_with_eager",
    "assert_parity",
    "DEFAULT_ATOL",
]
