"""Explicit Memory: prototype management, classification, precision."""

import numpy as np
import pytest

from repro.core import ExplicitMemory, bipolarize, quantize_prototype


@pytest.fixture()
def memory():
    return ExplicitMemory(dim=8)


class TestPrototypeManagement:
    def test_update_class_stores_mean(self, memory, rng):
        features = rng.standard_normal((5, 8)).astype(np.float32)
        prototype = memory.update_class(3, features)
        np.testing.assert_allclose(prototype, features.mean(axis=0), rtol=1e-5)
        assert 3 in memory
        assert memory.num_classes == 1

    def test_single_vector_update(self, memory, rng):
        vector = rng.standard_normal(8).astype(np.float32)
        prototype = memory.update_class(0, vector)
        np.testing.assert_allclose(prototype, vector, rtol=1e-6)

    def test_incremental_updates_are_running_mean(self, memory, rng):
        first = rng.standard_normal((3, 8)).astype(np.float32)
        second = rng.standard_normal((2, 8)).astype(np.float32)
        memory.update_class(1, first)
        memory.update_class(1, second)
        expected = np.concatenate([first, second]).mean(axis=0)
        np.testing.assert_allclose(memory.prototype(1), expected, rtol=1e-5)

    def test_dimension_mismatch_raises(self, memory, rng):
        with pytest.raises(ValueError):
            memory.update_class(0, rng.standard_normal((2, 5)))

    def test_set_prototype_and_shape_validation(self, memory, rng):
        memory.set_prototype(4, rng.standard_normal(8).astype(np.float32))
        assert 4 in memory
        with pytest.raises(ValueError):
            memory.set_prototype(5, rng.standard_normal(9).astype(np.float32))

    def test_remove_and_reset(self, memory, rng):
        memory.update_class(0, rng.standard_normal((2, 8)))
        memory.update_class(1, rng.standard_normal((2, 8)))
        memory.remove_class(0)
        assert 0 not in memory and 1 in memory
        memory.reset()
        assert len(memory) == 0

    def test_class_ids_sorted(self, memory, rng):
        for class_id in (7, 2, 5):
            memory.update_class(class_id, rng.standard_normal((1, 8)))
        assert memory.class_ids == [2, 5, 7]

    def test_prototype_matrix_missing_class_raises(self, memory, rng):
        memory.update_class(0, rng.standard_normal((1, 8)))
        with pytest.raises(KeyError):
            memory.prototype_matrix([0, 9])


class TestVersionCounter:
    def test_version_bumps_on_every_mutation_kind(self, memory, rng):
        version = memory.version
        memory.update_class(0, rng.standard_normal((2, 8)))
        assert memory.version == version + 1
        memory.set_prototype(1, rng.standard_normal(8).astype(np.float32))
        assert memory.version == version + 2
        memory.remove_class(1)
        assert memory.version == version + 3
        memory.reset()
        assert memory.version == version + 4

    def test_relearning_existing_class_bumps_version(self, memory, rng):
        memory.update_class(5, rng.standard_normal((3, 8)))
        version = memory.version
        before = memory.prototype(5).copy()
        memory.update_class(5, rng.standard_normal((3, 8)))
        assert memory.version > version
        assert not np.array_equal(memory.prototype(5), before)

    def test_requantize_does_not_mutate_source_version(self, memory, rng):
        memory.update_class(0, rng.standard_normal((2, 8)))
        version = memory.version
        clone = memory.requantize(4)
        assert memory.version == version
        assert clone.version > 0          # the clone counted its own inserts

    def test_empty_memory_prototype_matrix_is_well_shaped(self, memory):
        matrix, ids = memory.prototype_matrix()
        assert matrix.shape == (0, 8) and matrix.dtype == np.float32
        assert ids.shape == (0,) and ids.dtype == np.int64

    def test_reset_memory_returns_to_empty_matrix(self, memory, rng):
        memory.update_class(0, rng.standard_normal((2, 8)))
        memory.reset()
        matrix, ids = memory.prototype_matrix()
        assert matrix.shape == (0, 8) and ids.size == 0

    def test_similarities_against_empty_memory(self, memory, rng):
        sims, ids = memory.similarities(rng.standard_normal((3, 8)))
        assert sims.shape == (3, 0) and ids.size == 0

    def test_predict_against_empty_memory_raises(self, memory, rng):
        with pytest.raises(ValueError, match="empty"):
            memory.predict(rng.standard_normal((2, 8)))
        memory.update_class(0, rng.standard_normal((1, 8)))
        memory.reset()
        with pytest.raises(ValueError, match="empty"):
            memory.predict(rng.standard_normal((2, 8)))


class TestClassification:
    def test_predicts_nearest_prototype(self, memory):
        memory.set_prototype(10, np.array([1, 0, 0, 0, 0, 0, 0, 0], dtype=np.float32))
        memory.set_prototype(20, np.array([0, 1, 0, 0, 0, 0, 0, 0], dtype=np.float32))
        queries = np.array([[0.9, 0.1, 0, 0, 0, 0, 0, 0],
                            [0.1, 0.9, 0, 0, 0, 0, 0, 0]], dtype=np.float32)
        np.testing.assert_array_equal(memory.predict(queries), [10, 20])

    def test_cosine_similarity_is_scale_invariant(self, memory, rng):
        prototype = rng.standard_normal(8).astype(np.float32)
        memory.set_prototype(0, prototype)
        memory.set_prototype(1, rng.standard_normal(8).astype(np.float32))
        sims_small, _ = memory.similarities(prototype[None, :] * 0.01)
        sims_large, _ = memory.similarities(prototype[None, :] * 100)
        np.testing.assert_allclose(sims_small, sims_large, atol=1e-5)

    def test_restricted_class_subset(self, memory, rng):
        for class_id in range(4):
            memory.set_prototype(class_id, rng.standard_normal(8).astype(np.float32))
        predictions = memory.predict(rng.standard_normal((6, 8)), class_ids=[0, 1])
        assert set(predictions.tolist()) <= {0, 1}

    def test_similarities_shape_and_range(self, memory, rng):
        for class_id in range(5):
            memory.set_prototype(class_id, rng.standard_normal(8).astype(np.float32))
        sims, ids = memory.similarities(rng.standard_normal((3, 8)))
        assert sims.shape == (3, 5)
        assert np.all(sims <= 1.0 + 1e-5) and np.all(sims >= -1.0 - 1e-5)
        assert list(ids) == [0, 1, 2, 3, 4]


class TestPrecision:
    def test_memory_bytes_paper_figure(self):
        """100 classes x 256-dim x 3-bit prototypes = 9.6 kB (paper claim)."""
        memory = ExplicitMemory(dim=256, bits=3)
        assert memory.memory_bytes(num_classes=100) == pytest.approx(9600.0)

    def test_memory_bytes_scales_linearly_with_bits(self):
        memory = ExplicitMemory(dim=256)
        assert memory.memory_bytes(100, bits=8) == 2 * memory.memory_bytes(100, bits=4)

    def test_quantize_prototype_preserves_direction_at_8_bits(self, rng):
        prototype = rng.standard_normal(256).astype(np.float32)
        quantized = quantize_prototype(prototype, bits=8)
        cos = np.dot(prototype, quantized) / (
            np.linalg.norm(prototype) * np.linalg.norm(quantized))
        assert cos > 0.99

    def test_quantize_prototype_sign_at_1_bit(self, rng):
        prototype = rng.standard_normal(32).astype(np.float32)
        quantized = quantize_prototype(prototype, bits=1)
        np.testing.assert_array_equal(np.sign(quantized), np.sign(np.where(
            prototype >= 0, 1.0, -1.0)))

    def test_quantize_prototype_bit_range(self, rng):
        prototype = rng.standard_normal(64).astype(np.float32) * 10
        for bits in (3, 5, 8):
            quantized = quantize_prototype(prototype, bits=bits)
            limit = 2 ** (bits - 1)
            assert np.all(np.abs(quantized) <= limit)

    def test_quantize_invalid_bits(self, rng):
        with pytest.raises(ValueError):
            quantize_prototype(rng.standard_normal(8), bits=0)

    def test_quantize_zero_vector(self):
        np.testing.assert_array_equal(quantize_prototype(np.zeros(8), 4), np.zeros(8))

    def test_quantized_memory_stores_integer_grid(self, rng):
        memory = ExplicitMemory(dim=16, bits=4)
        memory.update_class(0, rng.standard_normal((4, 16)))
        prototype = memory.prototype(0)
        np.testing.assert_allclose(prototype, np.round(prototype))

    def test_requantize_copies_all_classes(self, rng):
        memory = ExplicitMemory(dim=16, bits=32)
        for class_id in range(6):
            memory.update_class(class_id, rng.standard_normal((3, 16)))
        low_precision = memory.requantize(3)
        assert low_precision.class_ids == memory.class_ids
        assert low_precision.bits == 3
        # The original memory is untouched.
        assert memory.bits == 32

    def test_requantized_classification_agrees_at_high_precision(self, rng):
        memory = ExplicitMemory(dim=64, bits=32)
        for class_id in range(10):
            memory.update_class(class_id, rng.standard_normal((5, 64)))
        queries = rng.standard_normal((50, 64))
        full = memory.predict(queries)
        eight_bit = memory.requantize(8).predict(queries)
        assert (full == eight_bit).mean() > 0.9

    def test_bipolarize(self):
        vector = np.array([0.5, -0.2, 0.0, -7.0])
        np.testing.assert_array_equal(bipolarize(vector), [1, -1, 1, -1])

    def test_bipolar_prototypes_from_memory(self, memory, rng):
        memory.update_class(0, rng.standard_normal((2, 8)))
        bipolar, ids = memory.bipolar_prototypes()
        assert set(np.unique(bipolar)) <= {-1.0, 1.0}
        assert list(ids) == [0]
