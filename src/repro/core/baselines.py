"""Reference baselines evaluated under the same FSCIL protocol.

Table II of the paper quotes published numbers of prior methods; running
those exact systems is out of scope for this reproduction, but three
representative baselines are re-implemented on the shared substrate so the
benchmark harness can produce a comparison table with the same structure:

* **Raw-pixel NCM** — nearest-class-mean classification in pixel space; the
  floor any learned feature extractor must beat.
* **Pretrain-only prototypes** (C-FSCIL "Mode 1" style) — the O-FSCIL
  architecture with plain cross-entropy pretraining and *no* orthogonality
  regularization, feature interpolation, or metalearning.
* **NC-FSCIL-lite** — pretraining against a fixed simplex-ETF cosine
  classifier (the neural-collapse-inspired idea of NC-FSCIL), then the same
  online prototype learning as O-FSCIL.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .. import nn
from ..data.dataset import ArrayDataset
from ..data.fscil_split import FSCILBenchmark
from ..models.heads import CosineClassifier, simplex_etf
from ..models.registry import get_config
from ..nn import losses
from ..nn.optim import SGD
from ..nn.tensor import Tensor
from ..data.dataset import DataLoader
from ..data.augment import AugmentationPipeline
from .evaluate import FSCILResult, evaluate_fscil, evaluate_with_predictor
from .ofscil import OFSCIL, OFSCILConfig
from .pretrain import PretrainConfig, pretrain


# Published CIFAR100 FSCIL accuracies (Table II of the paper), kept as
# reference constants so reports can juxtapose reproduction and literature.
PAPER_TABLE2_REFERENCE: Dict[str, Dict[str, object]] = {
    "MetaFSCIL": {"backbone": "ResNet20", "sessions": [74.50, 70.10, 66.84, 62.77, 59.48, 56.52, 54.36, 52.56, 49.97], "average": 60.79},
    "C-FSCIL": {"backbone": "ResNet12", "sessions": [77.47, 72.40, 67.47, 63.25, 59.84, 56.95, 54.42, 52.47, 50.47], "average": 61.64},
    "LIMIT": {"backbone": "ResNet20", "sessions": [73.81, 72.09, 67.87, 63.89, 60.70, 57.77, 55.67, 53.52, 51.23], "average": 61.84},
    "SAVC": {"backbone": "ResNet12", "sessions": [78.47, 72.86, 68.31, 64.00, 60.96, 58.28, 56.17, 53.91, 51.63], "average": 62.73},
    "ALICE": {"backbone": "ResNet18", "sessions": [79.00, 70.50, 67.10, 63.40, 61.20, 59.20, 58.10, 56.30, 54.10], "average": 63.21},
    "NC-FSCIL": {"backbone": "ResNet12", "sessions": [82.52, 76.82, 73.34, 69.68, 66.19, 62.85, 60.96, 59.02, 56.11], "average": 67.50},
    "O-FSCIL": {"backbone": "ResNet12", "sessions": [84.05, 79.10, 74.23, 69.96, 66.92, 63.89, 61.67, 59.51, 57.10], "average": 68.52},
    "O-FSCIL+FT": {"backbone": "ResNet12", "sessions": [84.02, 79.08, 74.34, 70.11, 66.95, 64.00, 61.86, 59.72, 57.50], "average": 68.62},
}


def raw_pixel_ncm(benchmark: FSCILBenchmark) -> FSCILResult:
    """Nearest-class-mean classifier operating directly on pixels."""
    prototypes: Dict[int, np.ndarray] = {}

    def add_prototypes(dataset: ArrayDataset) -> None:
        for class_id in dataset.classes:
            mask = dataset.labels == class_id
            prototypes[int(class_id)] = dataset.images[mask].reshape(mask.sum(), -1).mean(axis=0)

    add_prototypes(benchmark.base_train)
    for session in benchmark.sessions:
        add_prototypes(session.support)

    def predict(images: np.ndarray, allowed: np.ndarray) -> np.ndarray:
        ids = [int(c) for c in allowed if int(c) in prototypes]
        matrix = np.stack([prototypes[c] for c in ids])
        matrix = matrix / (np.linalg.norm(matrix, axis=1, keepdims=True) + 1e-12)
        flat = images.reshape(len(images), -1)
        flat = flat / (np.linalg.norm(flat, axis=1, keepdims=True) + 1e-12)
        sims = flat @ matrix.T
        return np.asarray(ids)[np.argmax(sims, axis=1)]

    return evaluate_with_predictor(predict, benchmark, method="Raw-pixel NCM")


def pretrain_only_baseline(benchmark: FSCILBenchmark, backbone_name: str,
                           pretrain_config: Optional[PretrainConfig] = None,
                           seed: int = 0) -> FSCILResult:
    """C-FSCIL Mode-1-style baseline: CE pretraining only, frozen prototypes.

    Uses the same backbone and FCR as O-FSCIL but disables augmentation,
    feature interpolation, the orthogonality regularizer and metalearning.
    """
    config = pretrain_config or PretrainConfig()
    config = PretrainConfig(**{**config.__dict__,
                               "use_augmentation": False,
                               "use_feature_interpolation": False,
                               "ortho_weight": 0.0})
    model = OFSCIL.from_registry(backbone_name, OFSCILConfig(backbone=backbone_name),
                                 seed=seed)
    pretrain(model.backbone, model.fcr, benchmark.base_train,
             num_classes=benchmark.protocol.base_classes, config=config)
    return evaluate_fscil(model, benchmark, method="Pretrain-only (C-FSCIL M1 style)",
                          backbone=backbone_name)


def ncfscil_lite_baseline(benchmark: FSCILBenchmark, backbone_name: str,
                          epochs: int = 5, batch_size: int = 64,
                          learning_rate: float = 0.05, seed: int = 0) -> FSCILResult:
    """NC-FSCIL-style baseline: align features to a fixed simplex ETF.

    The backbone + FCR are trained with cross-entropy against a *fixed*
    cosine classifier whose weights are the simplex-ETF prototypes reserved
    for all classes (base + future).  Incremental classes are then learned
    with the usual online prototype averaging.
    """
    backbone_config = get_config(backbone_name)
    model = OFSCIL.from_registry(backbone_name, OFSCILConfig(backbone=backbone_name),
                                 seed=seed)
    etf = simplex_etf(benchmark.protocol.num_classes, backbone_config.prototype_dim,
                      seed=seed + 1)
    classifier = CosineClassifier(backbone_config.prototype_dim,
                                  benchmark.protocol.num_classes,
                                  weights=etf, learnable=False, scale=10.0)

    augment = AugmentationPipeline(seed=seed + 2)
    parameters = model.backbone.parameters() + model.fcr.parameters()
    optimizer = SGD(parameters, lr=learning_rate, momentum=0.9, weight_decay=5e-4)
    loader = DataLoader(benchmark.base_train, batch_size=batch_size, shuffle=True,
                        seed=seed + 3)
    model.backbone.train()
    model.fcr.train()
    for _epoch in range(epochs):
        for images, labels in loader:
            images = augment(images)
            features = model.fcr(model.backbone(Tensor(images)))
            logits = classifier(features)
            loss = losses.cross_entropy(logits, labels)
            model.backbone.zero_grad()
            model.fcr.zero_grad()
            loss.backward()
            nn.optim.clip_grad_norm(parameters, 5.0)
            optimizer.step()
    model.backbone.eval()
    model.fcr.eval()
    return evaluate_fscil(model, benchmark, method="NC-FSCIL-lite (fixed ETF)",
                          backbone=backbone_name)
