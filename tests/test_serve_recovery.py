"""Self-healing serving: supervised respawn, hang escalation, journal.

Three layers, cheapest first:

1. **Backoff schedule** — pure math, deterministic under a seed, so the
   supervisor's waits are assertable numbers instead of sleep-and-hope.
2. **learn_class journal** — file-level round-trips, torn-tail tolerance,
   mid-file corruption detection, and bit-exact replay into a fresh
   :class:`ExplicitMemory`.
3. **Live recovery** (spawned workers) — SIGKILL → respawn → resync →
   rejoin, the crash-loop budget's typed give-up, SIGSTOP heartbeat
   escalation, ``max_respawns=0`` preserving the old degraded mode, and
   learn → crash → restore bit parity through a real server.

The process-spawning tests use a fast zero-jitter backoff and a tight
watchdog so recovery completes in tens of milliseconds of supervisor time;
the generous deadlines only bound CI-machine scheduling noise.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.explicit_memory import ExplicitMemory
from repro.serve import (
    BackoffSchedule,
    JournalCorruptError,
    JournalError,
    JournalReplayError,
    LearnJournal,
    RemoteWorkerError,
    Server,
    WorkerDiedError,
    snapshot_model,
)
from repro.serve.journal import MAGIC, read_journal, replay
from repro.serve.sharded import ShardedEngine

from test_serve import IMAGE_SHAPE, make_learned_model

#: Wall-clock bound on one supervised recovery in these tests (fast
#: backoff + spawn + replica restore + resync), generous for loaded CI.
RECOVERY_DEADLINE_S = 60.0


def fast_backoff(seed: int = 0) -> BackoffSchedule:
    return BackoffSchedule(base_s=0.05, cap_s=0.1, jitter=0.0, seed=seed)


def await_recovery(engine, worker: int, old_pid: int,
                   deadline_s: float = RECOVERY_DEADLINE_S) -> float:
    """Poll until ``worker`` is live under a new pid; returns elapsed."""
    started = time.monotonic()
    while time.monotonic() - started < deadline_s:
        if (worker in engine.live_workers
                and engine.worker_pids[worker] != old_pid):
            return time.monotonic() - started
    raise AssertionError(
        f"worker {worker} not respawned within {deadline_s}s "
        f"(live={engine.live_workers}, gave_up={engine.gave_up_workers})")


# ---------------------------------------------------------------------------
# Backoff schedule (pure math)
# ---------------------------------------------------------------------------
class TestBackoffSchedule:
    def test_zero_jitter_is_exact_capped_exponential(self):
        schedule = BackoffSchedule(base_s=0.25, cap_s=5.0, multiplier=2.0,
                                   jitter=0.0)
        assert [schedule.delay(n) for n in range(1, 7)] \
            == [0.25, 0.5, 1.0, 2.0, 4.0, 5.0]
        assert schedule.delay(100) == 5.0          # cap is a hard ceiling

    def test_seeded_schedules_are_deterministic(self):
        first = BackoffSchedule(seed=7)
        second = BackoffSchedule(seed=7)
        delays = [first.delay(n) for n in range(1, 9)]
        assert delays == [second.delay(n) for n in range(1, 9)]
        # A different seed draws different jitter for at least one attempt.
        third = BackoffSchedule(seed=8)
        assert delays != [third.delay(n) for n in range(1, 9)]

    def test_jitter_only_pulls_down_and_respects_floor(self):
        schedule = BackoffSchedule(base_s=1.0, cap_s=1.0, jitter=0.5, seed=3)
        for _ in range(200):
            delay = schedule.delay(1)
            assert 0.5 <= delay <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="base_s"):
            BackoffSchedule(base_s=0.0)
        with pytest.raises(ValueError, match="cap_s"):
            BackoffSchedule(base_s=1.0, cap_s=0.5)
        with pytest.raises(ValueError, match="multiplier"):
            BackoffSchedule(multiplier=0.9)
        with pytest.raises(ValueError, match="jitter"):
            BackoffSchedule(jitter=1.0)
        with pytest.raises(ValueError, match="1-based"):
            BackoffSchedule().delay(0)


# ---------------------------------------------------------------------------
# learn_class journal (file-level, no processes)
# ---------------------------------------------------------------------------
def journal_features(class_id: int, dim: int = 6,
                     rows: int = 3) -> np.ndarray:
    rng = np.random.default_rng(500 + class_id)
    return rng.standard_normal((rows, dim)).astype(np.float32)


def write_journal(path, num_classes: int = 3, dim: int = 6,
                  fsync: str = "never") -> ExplicitMemory:
    """Journal ``num_classes`` updates write-ahead while applying them to a
    reference memory, exactly like ``Server.learn_class`` does."""
    memory = ExplicitMemory(dim=dim)
    with LearnJournal(path, fsync=fsync) as journal:
        for class_id in range(num_classes):
            features = journal_features(class_id, dim=dim)
            journal.append(class_id, features, memory.version + 1)
            memory.update_class(class_id, features)
    return memory


class TestJournal:
    def test_roundtrip_bit_exact(self, tmp_path):
        path = tmp_path / "learn.journal"
        write_journal(path, num_classes=4)
        records = list(read_journal(path))
        assert [record.class_id for record in records] == [0, 1, 2, 3]
        assert [record.version for record in records] == [1, 2, 3, 4]
        for record in records:
            np.testing.assert_array_equal(
                record.features, journal_features(record.class_id))
            assert record.features.dtype == np.float32

    def test_replay_reconstructs_memory_bit_for_bit(self, tmp_path):
        path = tmp_path / "learn.journal"
        original = write_journal(path, num_classes=4)
        restored = ExplicitMemory(dim=6)
        applied = replay(path, restored)
        assert len(applied) == 4
        assert restored.version == original.version
        assert restored._counts == original._counts
        matrix, ids = restored.prototype_matrix()
        ref_matrix, ref_ids = original.prototype_matrix()
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(matrix, ref_matrix)

    def test_replay_is_idempotent_and_resumes_partially(self, tmp_path):
        path = tmp_path / "learn.journal"
        write_journal(path, num_classes=3)
        memory = ExplicitMemory(dim=6)
        # A memory already holding the first update skips it and applies
        # the rest — the respawned-mid-broadcast case.
        memory.update_class(0, journal_features(0))
        applied = replay(path, memory)
        assert [record.class_id for record in applied] == [1, 2]
        # A second replay applies nothing at all.
        assert replay(path, memory) == []

    def test_replay_version_gap_is_typed(self, tmp_path):
        path = tmp_path / "learn.journal"
        write_journal(path, num_classes=2)
        stale = ExplicitMemory(dim=6)
        stale._version = -3                 # journal starts at v1: gap
        with pytest.raises(JournalReplayError, match="cannot follow"):
            replay(path, stale)

    def test_torn_tail_is_discarded_silently(self, tmp_path):
        path = tmp_path / "learn.journal"
        write_journal(path, num_classes=3)
        intact = path.read_bytes()
        # Crash mid-append: truncate into the final record's payload.
        path.write_bytes(intact[:-7])
        records = list(read_journal(path))
        assert [record.class_id for record in records] == [0, 1]
        # The torn journal still replays the intact prefix.
        memory = ExplicitMemory(dim=6)
        assert len(replay(path, memory)) == 2

    def test_midfile_corruption_is_typed(self, tmp_path):
        path = tmp_path / "learn.journal"
        write_journal(path, num_classes=3)
        data = bytearray(path.read_bytes())
        data[len(MAGIC) + 12] ^= 0xFF       # flip a byte in record 0
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError, match="checksum"):
            list(read_journal(path))

    def test_missing_magic_is_typed(self, tmp_path):
        path = tmp_path / "not-a-journal.bin"
        path.write_bytes(b"definitely not a journal")
        with pytest.raises(JournalCorruptError, match="magic"):
            list(read_journal(path))
        # Opening a corrupt file for append fails at open, not at restore.
        with pytest.raises(JournalCorruptError):
            LearnJournal(path)

    def test_reopen_appends_and_preserves_records(self, tmp_path):
        path = tmp_path / "learn.journal"
        write_journal(path, num_classes=2)
        with LearnJournal(path) as journal:
            journal.append(7, journal_features(7), 3)
        assert [record.class_id for record in read_journal(path)] \
            == [0, 1, 7]

    def test_fsync_policies_and_closed_writes(self, tmp_path):
        for policy in ("always", "interval", "never"):
            path = tmp_path / f"{policy}.journal"
            with LearnJournal(path, fsync=policy) as journal:
                journal.append(0, journal_features(0), 1)
            assert len(list(read_journal(path))) == 1
        with pytest.raises(ValueError, match="fsync"):
            LearnJournal(tmp_path / "x.journal", fsync="sometimes")
        journal = LearnJournal(tmp_path / "closed.journal")
        journal.close()
        journal.close()                     # idempotent
        with pytest.raises(JournalError, match="closed"):
            journal.append(0, journal_features(0), 1)


# ---------------------------------------------------------------------------
# Live recovery (spawned workers)
# ---------------------------------------------------------------------------
class TestSupervisedRespawn:
    def test_sigkill_respawns_resyncs_and_rejoins(self):
        model, shots = make_learned_model(seed=10)
        expected = model.runtime_predictor().predict(shots)
        with Server(model, num_workers=2, max_latency_s=0.05,
                    watchdog_interval_s=0.05,
                    respawn_backoff=fast_backoff()) as server:
            server.predict(shots[:8])              # warm both replicas
            engine = server.engine
            old_pid = engine.worker_pids[1]
            os.kill(old_pid, signal.SIGKILL)
            await_recovery(engine, 1, old_pid)
            assert sorted(engine.live_workers) == [0, 1]
            assert engine.restart_counts == [0, 1]
            assert engine.gave_up_workers == []
            # Targeted work proves the replacement resynced its prototype
            # replica (routing parity alone could hide an empty replica).
            labels = engine.submit("predict", (shots[:6], None),
                                   worker=1).result(timeout=60.0)
            np.testing.assert_array_equal(labels, expected[:6])
            report = server.stats_dict(timeout=10.0)
            assert report["dead_workers"] == []
            assert report["worker_failures"] == 1
            assert report["worker_restarts"] == 1
            assert report["restart_counts"] == [0, 1]
            latency = report["last_recovery_latency_s"]
            assert latency is not None and 0.0 < latency < 60.0

    def test_crash_loop_budget_gives_up_with_typed_errors(self):
        # The crash-loop regression pin: kill every incarnation of worker 0
        # and the supervisor must stop at max_respawns, leave the shard
        # terminally dead with coherent stats, and keep the survivor exact.
        model, shots = make_learned_model(seed=10)
        expected = model.runtime_predictor().predict(shots)
        with Server(model, num_workers=2, max_latency_s=0.05,
                    watchdog_interval_s=0.05, max_respawns=1,
                    respawn_backoff=fast_backoff()) as server:
            engine = server.engine
            server.predict(shots[:8])
            deadline = time.monotonic() + RECOVERY_DEADLINE_S
            while 0 not in engine.gave_up_workers:
                assert time.monotonic() < deadline, \
                    f"budget never exhausted: {engine.restart_counts}"
                if 0 in engine.live_workers:
                    try:
                        os.kill(engine.worker_pids[0], signal.SIGKILL)
                    except ProcessLookupError:
                        pass
                time.sleep(0.02)
            assert engine.gave_up_workers == [0]
            assert engine.restart_counts[0] <= 1
            with pytest.raises(WorkerDiedError, match="dead"):
                engine.submit("ping", None, worker=0)
            np.testing.assert_array_equal(server.predict(shots), expected)
            report = server.stats_dict(timeout=10.0)
            assert report["gave_up_workers"] == [0]
            assert report["dead_workers"] == [0]
            assert report["live_workers"] == [1]
            assert report["respawns_abandoned"] == 1
            assert report["worker_failures"] >= 2

    def test_hang_escalation_replaces_sigstopped_worker(self):
        model, shots = make_learned_model(seed=10)
        expected = model.runtime_predictor().predict(shots)
        with Server(model, num_workers=2, max_latency_s=0.05,
                    watchdog_interval_s=0.05, hang_silence_s=0.5,
                    respawn_backoff=fast_backoff()) as server:
            engine = server.engine
            server.predict(shots[:8])
            old_pid = engine.worker_pids[0]
            os.kill(old_pid, signal.SIGSTOP)
            try:
                elapsed = await_recovery(engine, 0, old_pid)
            finally:
                # The corpse was SIGKILLed by escalation; a stray SIGCONT
                # to a recycled pid is harmless, an un-CONTed survivor on a
                # failed test would wedge close().
                for pid in engine.worker_pids:
                    try:
                        os.kill(pid, signal.SIGCONT)
                    except (ProcessLookupError, PermissionError):
                        pass
            assert elapsed > 0.4            # waited out the silence window
            labels = engine.submit("predict", (shots[:6], None),
                                   worker=0).result(timeout=60.0)
            np.testing.assert_array_equal(labels, expected[:6])
            report = server.stats_dict(timeout=10.0)
            assert report["hang_escalations"] == 1
            assert report["worker_restarts"] == 1
            assert report["dead_workers"] == []

    def test_max_respawns_zero_preserves_degraded_mode(self):
        # The pre-supervisor contract, now opt-in: a killed shard stays
        # dead, nothing respawns, survivors serve around the corpse.
        model, shots = make_learned_model(seed=10)
        expected = model.runtime_predictor().predict(shots)
        with Server(model, num_workers=2, max_latency_s=0.05,
                    watchdog_interval_s=0.05,
                    max_respawns=0) as server:
            engine = server.engine
            server.predict(shots[:8])
            os.kill(engine.worker_pids[0], signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while 0 in engine.live_workers:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            time.sleep(0.5)                 # a respawn would land in here
            assert engine.live_workers == [1]
            assert engine.restart_counts == [0, 0]
            assert engine.gave_up_workers == [0]
            with pytest.raises(RemoteWorkerError, match="dead"):
                engine.submit("ping", None, worker=0)
            np.testing.assert_array_equal(server.predict(shots), expected)
            assert server.stats_dict(timeout=10.0)["worker_restarts"] == 0

    def test_recovery_events_reach_the_listener_in_order(self):
        # The engine's recovery lifecycle is observable: a listener sees
        # failure -> scheduled -> respawned for a single clean recovery.
        model, _ = make_learned_model(seed=10)
        events = []
        engine = ShardedEngine(snapshot_model(model), num_workers=1,
                               watchdog_interval_s=0.05,
                               respawn_backoff=fast_backoff(),
                               recovery_listener=events.append)
        try:
            engine.submit("ping", None).result(timeout=60.0)
            old_pid = engine.worker_pids[0]
            os.kill(old_pid, signal.SIGKILL)
            await_recovery(engine, 0, old_pid)
            kinds = [event["event"] for event in events]
            assert kinds == ["worker_failed", "respawn_scheduled",
                             "respawned"]
            assert events[0]["worker"] == 0
            assert events[-1]["recovery_latency_s"] > 0.0
            engine.submit("ping", None).result(timeout=60.0)
        finally:
            engine.close()


class TestJournalThroughServer:
    def test_learn_crash_restore_bit_parity(self, tmp_path):
        # End to end: journalled learns (one racing a worker crash), full
        # teardown, fresh server restored from the journal alone.
        journal_path = tmp_path / "server.journal"
        model, shots = make_learned_model(seed=10)
        rng = np.random.default_rng(23)
        queries = rng.standard_normal((20, *IMAGE_SHAPE)).astype(np.float32)
        novel = {6: rng.standard_normal((5, *IMAGE_SHAPE)).astype(np.float32),
                 7: rng.standard_normal((5, *IMAGE_SHAPE)).astype(np.float32)}
        with Server(model, num_workers=2, max_latency_s=0.05,
                    watchdog_interval_s=0.05,
                    respawn_backoff=fast_backoff(),
                    journal_path=journal_path) as server:
            server.predict(queries[:8])
            server.learn_class(novel[6], 6)
            old_pid = server.engine.worker_pids[0]
            os.kill(old_pid, signal.SIGKILL)
            server.learn_class(novel[7], 7)     # races the respawn
            await_recovery(server.engine, 0, old_pid)
            saved_matrix, saved_ids = model.memory.prototype_matrix()
            saved_matrix = saved_matrix.copy()
            saved_version = model.memory.version
            saved_counts = dict(model.memory._counts)
            saved_predictions = server.predict(queries)
        twin, _ = make_learned_model(seed=10)
        with Server(twin, num_workers=1, max_latency_s=0.05) as restored:
            assert restored.restore(journal_path) == 2
            matrix, ids = twin.memory.prototype_matrix()
            np.testing.assert_array_equal(ids, saved_ids)
            np.testing.assert_array_equal(matrix, saved_matrix)
            assert twin.memory.version == saved_version
            assert dict(twin.memory._counts) == saved_counts
            np.testing.assert_array_equal(restored.predict(queries),
                                          saved_predictions)
            # restore() resynced the workers: served answers above came
            # from replicas at the restored version.
            versions = [record["prototype_version"]
                        for record in restored.worker_stats()]
            assert versions == [twin.memory.version]
