"""Optional on-device FCR fine-tuning (Section V-B, "Mode 2"-style).

To squeeze out extra accuracy after learning new classes, the FCR alone can
be fine-tuned on device while the backbone stays frozen.  Training data is
*not* stored: the activation memory keeps one average backbone feature
``theta_a,i`` per class, and the FCR is updated to push ``FCR(theta_a,i)``
towards the bipolarized class prototype through batched gradient descent over
``B`` iterations.  A sub-batching mechanism groups N classes per batch so the
accumulated gradient reduces the number of memory accesses to ``B / N`` per
batch — the same trick is mirrored in the GAP9 cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..models.heads import FullyConnectedReductor
from ..nn import losses
from ..nn.optim import SGD
from ..nn.tensor import Tensor
from .explicit_memory import bipolarize
from .ofscil import OFSCIL


@dataclass
class FinetuneConfig:
    """Hyper-parameters of the on-device FCR fine-tuning."""

    iterations: int = 100          # B batched gradient-descent iterations
    sub_batch_size: int = 16       # N class-activation pairs per sub-batch
    learning_rate: float = 0.01
    momentum: float = 0.9
    loss: str = "cosine"           # "cosine" (maximize similarity) or "mse"
    update_prototypes: str = "recompute"  # "recompute" | "bipolar" | "none"
    seed: int = 0


@dataclass
class FinetuneResult:
    history: List[Dict[str, float]] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.history[-1]["loss"] if self.history else float("nan")


def finetune_fcr(model: OFSCIL, config: Optional[FinetuneConfig] = None
                 ) -> FinetuneResult:
    """Fine-tune the FCR of an O-FSCIL model against bipolarized prototypes.

    Requires the model to have learned at least one class (so the activation
    memory and the EM are populated).  Only FCR parameters are updated; the
    backbone and the stored activations stay frozen, exactly as on the MCU.
    """
    config = config or FinetuneConfig()
    if not model.activation_memory:
        raise RuntimeError("activation memory is empty; learn classes before fine-tuning")

    class_ids = sorted(model.activation_memory)
    activations = np.stack([model.activation_memory[c] for c in class_ids]).astype(np.float32)
    prototypes, _ = model.memory.prototype_matrix(class_ids)
    targets = bipolarize(prototypes)

    fcr: FullyConnectedReductor = model.fcr
    fcr.unfreeze()
    fcr.train()
    optimizer = SGD(fcr.parameters(), lr=config.learning_rate,
                    momentum=config.momentum)
    rng = np.random.default_rng(config.seed)

    result = FinetuneResult()
    num_classes = len(class_ids)
    for iteration in range(config.iterations):
        batch = rng.choice(num_classes, size=min(config.sub_batch_size, num_classes),
                           replace=False)
        outputs = fcr(Tensor(activations[batch]))
        if config.loss == "cosine":
            loss = losses.cosine_embedding_loss(outputs, targets[batch])
        elif config.loss == "mse":
            loss = losses.mse_loss(outputs, targets[batch])
        else:
            raise ValueError(f"unknown fine-tuning loss {config.loss!r}")
        fcr.zero_grad()
        loss.backward()
        optimizer.step()
        result.history.append({"iteration": iteration, "loss": float(loss.data)})

    fcr.eval()
    fcr.freeze()

    # Keep the EM consistent with the updated FCR.
    if config.update_prototypes == "recompute":
        refreshed = model.project(activations)
        for index, class_id in enumerate(class_ids):
            model.memory.set_prototype(class_id, refreshed[index])
    elif config.update_prototypes == "bipolar":
        for index, class_id in enumerate(class_ids):
            model.memory.set_prototype(class_id, targets[index])
    elif config.update_prototypes != "none":
        raise ValueError(f"unknown prototype update mode {config.update_prototypes!r}")
    return result
