"""Optimizers and learning-rate schedules for the NumPy NN substrate."""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from .modules import Parameter


class Optimizer:
    """Base optimizer operating on a list of :class:`Parameter` objects."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = [p for p in parameters]
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def trainable(self):
        """Iterate over parameters that require gradients and have one."""
        for param in self.parameters:
            if param.requires_grad and param.grad is not None:
                yield param


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, weight decay and Nesterov."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = {id(p): np.zeros_like(p.data) for p in self.parameters}

    def step(self) -> None:
        for param in self.trainable():
            grad = param.grad.astype(param.data.dtype)
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity[id(param)]
                velocity *= self.momentum
                velocity += grad
                if self.nesterov:
                    grad = grad + self.momentum * velocity
                else:
                    grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = {id(p): np.zeros_like(p.data) for p in self.parameters}
        self._v = {id(p): np.zeros_like(p.data) for p in self.parameters}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param in self.trainable():
            grad = param.grad.astype(param.data.dtype)
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m[id(param)]
            v = self._v[id(param)]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LRScheduler:
    """Base class for learning-rate schedules attached to an optimizer."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        self.optimizer.lr = lr
        return lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR down to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0,
                 warmup_epochs: int = 0):
        super().__init__(optimizer)
        self.t_max = max(t_max, 1)
        self.eta_min = eta_min
        self.warmup_epochs = warmup_epochs

    def get_lr(self, epoch: int) -> float:
        if self.warmup_epochs and epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / self.warmup_epochs
        progress = min(epoch - self.warmup_epochs, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a maximum global L2 norm; returns the norm."""
    params = [p for p in parameters if p.requires_grad and p.grad is not None]
    if not params:
        return 0.0
    total = math.sqrt(sum(float((p.grad.astype(np.float64) ** 2).sum()) for p in params))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad = param.grad * scale
    return total
