"""Module system: registration, traversal, state, hooks, containers, layers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


def small_net(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=rng),
        nn.BatchNorm2d(4),
        nn.ReLU6(),
        nn.GlobalAvgPool2d(),
        nn.Linear(4, 5, rng=rng),
    )


class TestModuleInfrastructure:
    def test_parameters_are_registered(self):
        layer = nn.Linear(3, 2)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert all(isinstance(p, nn.Parameter) for p in layer.parameters())

    def test_nested_parameter_names(self):
        net = small_net()
        names = [name for name, _ in net.named_parameters()]
        assert "0.weight" in names
        assert "1.weight" in names and "1.bias" in names
        assert "4.weight" in names

    def test_num_parameters(self):
        layer = nn.Linear(3, 2)
        assert layer.num_parameters() == 3 * 2 + 2

    def test_named_modules_traversal(self):
        net = small_net()
        types = [type(m).__name__ for _, m in net.named_modules()]
        assert "Sequential" in types and "Conv2d" in types and "Linear" in types

    def test_train_eval_propagates(self):
        net = small_net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad_clears_gradients(self):
        net = small_net()
        x = Tensor(np.random.default_rng(0).standard_normal((2, 3, 6, 6)).astype(np.float32))
        net(x).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_freeze_unfreeze(self):
        net = small_net()
        net.freeze()
        assert all(not p.requires_grad for p in net.parameters())
        net.unfreeze()
        assert all(p.requires_grad for p in net.parameters())

    def test_state_dict_roundtrip(self):
        net_a, net_b = small_net(seed=0), small_net(seed=99)
        state = net_a.state_dict()
        net_b.load_state_dict(state)
        x = Tensor(np.random.default_rng(1).standard_normal((2, 3, 6, 6)).astype(np.float32))
        net_a.eval()
        net_b.eval()
        np.testing.assert_allclose(net_a(x).data, net_b(x).data, rtol=1e-6)

    def test_state_dict_contains_buffers(self):
        net = small_net()
        assert any("running_mean" in key for key in net.state_dict())

    def test_load_state_dict_strict_missing_key(self):
        net = small_net()
        state = net.state_dict()
        state.pop("0.weight")
        with pytest.raises(KeyError):
            net.load_state_dict(state, strict=True)

    def test_forward_hook_observes_and_replaces(self):
        layer = nn.ReLU()
        calls = []

        def observe(module, output):
            calls.append(output.data.copy())
            return None

        def double(module, output):
            return output * 2.0

        layer.register_forward_hook(observe)
        layer.register_forward_hook(double)
        out = layer(Tensor(np.array([-1.0, 2.0])))
        assert len(calls) == 1
        np.testing.assert_allclose(out.data, [0.0, 4.0])
        layer.clear_forward_hooks()
        np.testing.assert_allclose(layer(Tensor(np.array([2.0]))).data, [2.0])

    def test_sequential_indexing_and_iteration(self):
        net = small_net()
        assert len(net) == 5
        assert isinstance(net[0], nn.Conv2d)
        assert len(list(iter(net))) == 5

    def test_module_list(self):
        blocks = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(blocks) == 2
        assert len(blocks.parameters()) == 4
        blocks.append(nn.Linear(2, 2))
        assert len(blocks) == 3
        with pytest.raises(RuntimeError):
            blocks(Tensor(np.zeros((1, 2))))

    def test_identity(self):
        x = Tensor(np.ones((2, 2)))
        assert nn.Identity()(x) is x


class TestLayers:
    def test_linear_shapes_and_values(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        x = rng.standard_normal((5, 4)).astype(np.float32)
        out = layer(Tensor(x))
        assert out.shape == (5, 3)
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_linear_without_bias(self, rng):
        layer = nn.Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_conv2d_shapes(self, rng):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_conv2d_groups_validation(self):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 4, 3, groups=2)

    def test_batchnorm_normalizes_in_training(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.standard_normal((16, 3, 5, 5)).astype(np.float32) * 3 + 2)
        out = bn(x).data
        assert abs(out.mean()) < 1e-4
        assert abs(out.std() - 1.0) < 1e-2

    def test_batchnorm_running_stats_converge(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        data = rng.standard_normal((32, 2, 4, 4)).astype(np.float32) * 2.0 + 1.0
        for _ in range(20):
            bn(Tensor(data))
        np.testing.assert_allclose(bn.running_mean, data.mean(axis=(0, 2, 3)), atol=0.05)
        np.testing.assert_allclose(bn.running_var, data.var(axis=(0, 2, 3)), rtol=0.15)

    def test_batchnorm_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        bn.eval()
        x = Tensor(rng.standard_normal((4, 2, 3, 3)).astype(np.float32))
        out = bn(x).data
        np.testing.assert_allclose(out, x.data, atol=1e-4)  # running stats are 0/1

    def test_batchnorm1d(self, rng):
        bn = nn.BatchNorm1d(4)
        x = Tensor(rng.standard_normal((32, 4)).astype(np.float32) * 5 + 3)
        out = bn(x).data
        assert abs(out.mean()) < 1e-4

    def test_relu6_clips(self):
        layer = nn.ReLU6()
        out = layer(Tensor(np.array([-2.0, 3.0, 9.0])))
        np.testing.assert_allclose(out.data, [0.0, 3.0, 6.0])

    def test_dropout_train_vs_eval(self, rng):
        layer = nn.Dropout(p=0.5, seed=0)
        x = Tensor(np.ones((100, 10), dtype=np.float32))
        train_out = layer(x)
        assert (train_out.data == 0).any()
        layer.eval()
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_flatten_module(self, rng):
        out = nn.Flatten()(Tensor(rng.standard_normal((2, 3, 4, 4)).astype(np.float32)))
        assert out.shape == (2, 48)

    def test_pool_modules(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 8, 8)).astype(np.float32))
        assert nn.MaxPool2d(2)(x).shape == (1, 2, 4, 4)
        assert nn.AvgPool2d(2)(x).shape == (1, 2, 4, 4)
        assert nn.GlobalAvgPool2d()(x).shape == (1, 2)

    def test_training_step_reduces_loss(self, rng):
        """A small end-to-end sanity check: a training loop must reduce loss."""
        net = small_net(seed=1)
        optimizer = nn.optim.SGD(net.parameters(), lr=0.1, momentum=0.9)
        x = Tensor(rng.standard_normal((16, 3, 6, 6)).astype(np.float32))
        labels = rng.integers(0, 5, 16)
        losses = []
        for _ in range(12):
            out = net(x)
            loss = nn.losses.cross_entropy(out, labels)
            net.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0]
